//! Recursive-descent item parser: the analyzer's IR.
//!
//! The v1 rules operated on a flat token stream per file; the v2 passes
//! (call-graph reachability, determinism taint) need to know *which
//! function* a token belongs to and *what that function calls*. This
//! module builds exactly that from the [`crate::lexer`] output — no
//! `syn`, the build stays offline: a module tree is tracked through
//! `mod name { … }` nesting, `impl` blocks contribute an owner type, and
//! every `fn` yields a [`FnDef`] with its body token range and the call
//! sites found inside it. Closures are *not* separate nodes: a call made
//! inside a closure is attributed to the enclosing named function, which
//! is what makes worker-pool job closures (`pool.for_each(n, c, |i| …)`)
//! participate in reachability from the function that spawns them.

use crate::lexer::{Token, TokenKind};

/// A call site inside a function body.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSite {
    /// Callee name (`step`, `apply`, …).
    pub name: String,
    /// Last path qualifier before the name for `Qual::name(…)` calls
    /// (`Simulation`, `checkpoint`, …); `Self` is resolved to the
    /// enclosing impl type by the parser. `None` for plain and method
    /// calls.
    pub qual: Option<String>,
    /// `true` for `.name(…)` method calls.
    pub method: bool,
    /// `true` for `self.name(…)` — the receiver is literally `self`, so
    /// the callee very likely lives on the enclosing impl type. The call
    /// graph uses this to prefer same-owner resolution.
    pub recv_self: bool,
    pub line: usize,
}

/// One `fn` item with its location, body extent and call sites.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Enclosing impl type (`Simulation`) when defined in an `impl`
    /// block, else `None` for free functions.
    pub owner: Option<String>,
    /// Enclosing module path inside the file (`["detail"]` for
    /// `mod detail { fn f … }`); empty at file scope.
    pub module: Vec<String>,
    /// Line of the `fn` keyword.
    pub decl_line: usize,
    /// First and last line of the body (inclusive).
    pub body_lines: (usize, usize),
    /// Half-open token range of the body (including the braces) in the
    /// file's production token stream.
    pub body_tokens: (usize, usize),
    pub calls: Vec<CallSite>,
}

impl FnDef {
    /// `Owner::name` when the fn lives in an impl block, else the bare
    /// name. This is the resolution key used by the call graph and the
    /// `[roots]` grammar.
    pub fn qual_name(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// `true` when `line` falls inside this fn (declaration or body).
    pub fn contains_line(&self, line: usize) -> bool {
        line >= self.decl_line && line <= self.body_lines.1
    }
}

/// Parsed view of one file: every function defined in it.
#[derive(Debug, Clone, Default)]
pub struct FileIr {
    pub fns: Vec<FnDef>,
}

impl FileIr {
    /// The fn whose extent covers `line`, preferring the innermost
    /// (latest-declared) match so nested fns win over their parent.
    pub fn fn_at_line(&self, line: usize) -> Option<&FnDef> {
        self.fns
            .iter()
            .filter(|f| f.contains_line(line))
            .max_by_key(|f| f.decl_line)
    }
}

/// Keywords that look like callees but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "ref", "move",
    "in", "as", "where", "impl", "dyn", "pub", "use", "mod", "struct", "enum", "trait", "type",
    "const", "static", "unsafe", "extern", "crate", "super", "self", "Self", "break", "continue",
    "await",
];

/// Build the IR for one file's production tokens.
pub fn parse(tokens: &[Token]) -> FileIr {
    let mut ir = FileIr::default();
    let mut ctx = Ctx {
        module: Vec::new(),
        owner: None,
    };
    parse_items(tokens, 0, tokens.len(), &mut ctx, &mut ir);
    ir
}

struct Ctx {
    module: Vec<String>,
    owner: Option<String>,
}

/// Index just past the brace-matched block starting at `open` (which
/// must point at `{`); saturates at `end` for unbalanced input.
fn skip_block(tokens: &[Token], open: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < end {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// First `{` at angle-bracket/paren depth zero in `[from, end)` — the
/// body opener for `fn`/`impl`/`mod` headers (skips `where` clauses,
/// generic defaults, `-> Foo<Bar>` returns). Stops early at `;`
/// (declarations without bodies: trait methods, extern fns).
fn find_body_open(tokens: &[Token], from: usize, end: usize) -> Option<usize> {
    let mut angle = 0i64;
    let mut paren = 0i64;
    let mut i = from;
    while i < end {
        match &tokens[i].kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle = (angle - 1).max(0),
            TokenKind::Punct('(') | TokenKind::Punct('[') => paren += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => paren -= 1,
            TokenKind::Punct(';') if angle == 0 && paren == 0 => return None,
            TokenKind::Punct('{') if angle == 0 && paren == 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// The impl target type: the first type ident after `for` if present
/// (`impl Trait for Type`), else the first ident following the `impl`
/// generics (`impl<T> Type<T>`).
fn impl_owner(tokens: &[Token], from: usize, body_open: usize) -> Option<String> {
    let mut i = from;
    // Skip the generic parameter list right after `impl`.
    if i < body_open && tokens[i].is_punct('<') {
        let mut depth = 0i64;
        while i < body_open {
            if tokens[i].is_punct('<') {
                depth += 1;
            } else if tokens[i].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    // `for` splits trait from type.
    let for_at = (i..body_open).rfind(|&j| tokens[j].is_ident("for"));
    let start = for_at.map(|j| j + 1).unwrap_or(i);
    // The owner is the *last* path segment before generics: `io::Engine`
    // → `Engine`.
    let mut owner = None;
    let mut j = start;
    while j < body_open {
        match &tokens[j].kind {
            TokenKind::Ident(id) if id != "dyn" && id != "where" => {
                owner = Some(id.clone());
                // A `<` right after ends the path.
                if tokens.get(j + 1).is_some_and(|t| t.is_punct('<'))
                    || tokens.get(j + 1).is_some_and(|t| t.is_punct('{'))
                {
                    break;
                }
            }
            TokenKind::Punct(':') => {}
            TokenKind::Punct('&') | TokenKind::Lifetime => {}
            TokenKind::Ident(_) => {}
            _ => break,
        }
        j += 1;
    }
    owner
}

fn parse_items(tokens: &[Token], start: usize, end: usize, ctx: &mut Ctx, ir: &mut FileIr) {
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.is_ident("mod") {
            if let Some(TokenKind::Ident(name)) = tokens.get(i + 1).map(|t| &t.kind) {
                if let Some(open) = find_body_open(tokens, i + 2, end) {
                    let close = skip_block(tokens, open, end);
                    ctx.module.push(name.clone());
                    parse_items(tokens, open + 1, close.saturating_sub(1), ctx, ir);
                    ctx.module.pop();
                    i = close;
                    continue;
                }
            }
            i += 1;
        } else if t.is_ident("impl") {
            if let Some(open) = find_body_open(tokens, i + 1, end) {
                let close = skip_block(tokens, open, end);
                let prev_owner = ctx.owner.take();
                ctx.owner = impl_owner(tokens, i + 1, open);
                parse_items(tokens, open + 1, close.saturating_sub(1), ctx, ir);
                ctx.owner = prev_owner;
                i = close;
                continue;
            }
            i += 1;
        } else if t.is_ident("fn") {
            let Some(TokenKind::Ident(name)) = tokens.get(i + 1).map(|t| &t.kind) else {
                i += 1;
                continue;
            };
            let name = name.clone();
            let decl_line = t.line;
            match find_body_open(tokens, i + 2, end) {
                Some(open) => {
                    let close = skip_block(tokens, open, end);
                    let body = &tokens[open..close];
                    let calls = collect_calls(body, ctx.owner.as_deref());
                    ir.fns.push(FnDef {
                        name,
                        owner: ctx.owner.clone(),
                        module: ctx.module.clone(),
                        decl_line,
                        body_lines: (
                            tokens[open].line,
                            tokens
                                .get(close.saturating_sub(1))
                                .map_or(t.line, |t| t.line),
                        ),
                        body_tokens: (open, close),
                        calls,
                    });
                    // Recurse for nested fns (they get their own defs and
                    // shadow the parent for line attribution).
                    parse_items(tokens, open + 1, close.saturating_sub(1), ctx, ir);
                    i = close;
                }
                None => i += 2, // bodyless declaration (trait method)
            }
        } else {
            i += 1;
        }
    }
}

/// Extract call sites from a body token slice. `owner` resolves `Self::`.
fn collect_calls(body: &[Token], owner: Option<&str>) -> Vec<CallSite> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let TokenKind::Ident(name) = &body[i].kind else {
            i += 1;
            continue;
        };
        // Skip nested `fn` headers — the nested def collects its own
        // calls, and double-attribution would fake an edge from the
        // parent. (The parent *defining* a nested fn does not call it.)
        if body[i].is_ident("fn") {
            if let Some(open) = find_body_open(body, i + 1, body.len()) {
                i = skip_block(body, open, body.len());
                continue;
            }
        }
        let next_paren = body.get(i + 1).is_some_and(|t| t.is_punct('('));
        if !next_paren || NON_CALL_KEYWORDS.contains(&name.as_str()) {
            i += 1;
            continue;
        }
        let prev = i.checked_sub(1).map(|j| &body[j]);
        let method = prev.is_some_and(|t| t.is_punct('.'));
        let recv_self = method && i >= 2 && body[i - 2].is_ident("self");
        // `Qual::name(` — walk back over `::`.
        let mut qual = None;
        if !method && i >= 3 && body[i - 1].is_punct(':') && body[i - 2].is_punct(':') {
            if let TokenKind::Ident(q) = &body[i - 3].kind {
                qual = if q == "Self" {
                    owner.map(str::to_string)
                } else {
                    Some(q.clone())
                };
            }
        }
        out.push(CallSite {
            name: name.clone(),
            qual,
            method,
            recv_self,
            line: body[i].line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ir(src: &str) -> FileIr {
        parse(&lex(src).tokens)
    }

    #[test]
    fn free_fns_and_impl_methods() {
        let src = concat!(
            "fn free() { helper(); }\n",
            "impl<'a> Simulation<'a> {\n",
            "  pub fn step(&mut self) { self.pressure_solve(); Self::assoc(); }\n",
            "  fn assoc() {}\n",
            "}\n",
        );
        let ir = ir(src);
        let names: Vec<String> = ir.fns.iter().map(|f| f.qual_name()).collect();
        assert_eq!(names, vec!["free", "Simulation::step", "Simulation::assoc"]);
        let step = &ir.fns[1];
        assert_eq!(step.calls.len(), 2);
        assert!(step.calls[0].method && step.calls[0].name == "pressure_solve");
        assert_eq!(step.calls[1].qual.as_deref(), Some("Simulation"));
    }

    #[test]
    fn trait_impls_use_the_target_type() {
        let src = "impl Communicator for HardenedComm<C> { fn recv(&self) { self.inner(); } }\n";
        let ir = ir(src);
        assert_eq!(ir.fns[0].qual_name(), "HardenedComm::recv");
    }

    #[test]
    fn modules_nest_and_close() {
        let src = concat!(
            "mod detail { pub fn inner() { leaf(); } }\n",
            "fn outer() { detail::inner(); }\n",
        );
        let ir = ir(src);
        assert_eq!(ir.fns[0].module, vec!["detail".to_string()]);
        assert!(ir.fns[1].module.is_empty());
        assert_eq!(ir.fns[1].calls[0].qual.as_deref(), Some("detail"));
    }

    #[test]
    fn closure_calls_attribute_to_enclosing_fn() {
        let src = "fn spawn(pool: &WorkerPool) { pool.for_each(8, 1, |i| kernel(i)); }\n";
        let ir = ir(src);
        let calls: Vec<&str> = ir.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert!(calls.contains(&"for_each"));
        assert!(calls.contains(&"kernel"));
    }

    #[test]
    fn nested_fn_calls_not_attributed_to_parent() {
        let src = "fn outer() { fn inner() { secret(); } inner(); }\n";
        let ir = ir(src);
        let outer = ir.fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer.calls.iter().all(|c| c.name != "secret"));
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
        let inner = ir.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(inner.calls.iter().any(|c| c.name == "secret"));
        // Line attribution prefers the innermost fn.
        assert_eq!(ir.fn_at_line(1).unwrap().name, "inner");
    }

    #[test]
    fn where_clauses_and_returns_do_not_confuse_the_body() {
        let src = concat!(
            "fn generic<T: Clone>(x: T) -> Vec<T> where T: Send { make(x) }\n",
            "trait T { fn decl(&self); }\n",
        );
        let ir = ir(src);
        assert_eq!(ir.fns.len(), 1);
        assert_eq!(ir.fns[0].calls[0].name, "make");
    }

    #[test]
    fn control_keywords_are_not_calls() {
        let src = "fn f(x: u8) { if (x > 0) { g(); } while (x > 0) { break; } match (x) { _ => h(), } }\n";
        let ir = ir(src);
        let calls: Vec<&str> = ir.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(calls, vec!["g", "h"]);
    }
}
