//! Minimal TOML subset used by `audit.toml`.
//!
//! The offline build has no `toml` crate, so this module implements
//! exactly the grammar the config needs and nothing more:
//!
//! * top-level and `[dotted.table]` sections
//! * bare and `"quoted"` keys
//! * values: `"string"`, integer, `[ array ]` of strings or integers
//!   (arrays may span lines)
//! * `#` comments
//!
//! Order is preserved so the serializer round-trips a parsed document.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    StrArray(Vec<String>),
}

/// One `[section]` with its key/value pairs in file order. The implicit
/// top-level section has an empty name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    pub name: String,
    pub entries: Vec<(String, Value)>,
}

impl Table {
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    pub tables: Vec<Table>,
}

impl Document {
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    pub fn get(&self, table: &str, key: &str) -> Option<&Value> {
        self.table(table).and_then(|t| t.get(key))
    }
}

#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "toml parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Strip a `#` comment that is outside any string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

pub fn parse(src: &str) -> Result<Document, ParseError> {
    let mut doc = Document::default();
    doc.tables.push(Table::default()); // implicit top-level
    let mut cur = 0usize;

    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return err(lineno, "unterminated table header");
            };
            doc.tables.push(Table {
                name: name.trim().to_string(),
                entries: Vec::new(),
            });
            cur = doc.tables.len() - 1;
            continue;
        }
        let Some(eq) = find_top_level_eq(line) else {
            return err(lineno, format!("expected `key = value`, got `{line}`"));
        };
        let key = parse_key(line[..eq].trim(), lineno)?;
        let mut vtext = line[eq + 1..].trim().to_string();
        // Multi-line array: accumulate until the closing bracket.
        if vtext.starts_with('[') {
            while !array_closed(&vtext) {
                let Some((_, next)) = lines.next() else {
                    return err(lineno, "unterminated array");
                };
                vtext.push(' ');
                vtext.push_str(strip_comment(next).trim());
            }
        }
        let value = parse_value(&vtext, lineno)?;
        doc.tables[cur].entries.push((key, value));
    }
    Ok(doc)
}

/// Position of the `=` separating key from value, skipping `=` inside a
/// quoted key.
fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_key(raw: &str, lineno: usize) -> Result<String, ParseError> {
    if let Some(q) = raw.strip_prefix('"') {
        match q.strip_suffix('"') {
            Some(inner) => Ok(inner.to_string()),
            None => err(lineno, "unterminated quoted key"),
        }
    } else if !raw.is_empty()
        && raw
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(raw.to_string())
    } else {
        err(lineno, format!("invalid key `{raw}`"))
    }
}

fn array_closed(text: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    for c in text.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_value(raw: &str, lineno: usize) -> Result<Value, ParseError> {
    if let Some(q) = raw.strip_prefix('"') {
        match q.strip_suffix('"') {
            Some(inner) => Ok(Value::Str(unescape(inner))),
            None => err(lineno, "unterminated string"),
        }
    } else if raw.starts_with('[') {
        let inner = raw
            .trim_start_matches('[')
            .trim_end_matches(']')
            .trim()
            .to_string();
        let mut items = Vec::new();
        for part in split_array_items(&inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, lineno)? {
                Value::Str(s) => items.push(s),
                _ => return err(lineno, "arrays may only contain strings"),
            }
        }
        Ok(Value::StrArray(items))
    } else if let Ok(n) = raw.parse::<i64>() {
        Ok(Value::Int(n))
    } else {
        err(lineno, format!("unsupported value `{raw}`"))
    }
}

fn split_array_items(inner: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        items.push(cur);
    }
    items
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

fn format_key(k: &str) -> String {
    if !k.is_empty()
        && k.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        k.to_string()
    } else {
        format!("\"{}\"", escape(k))
    }
}

/// Serialize a document in the same subset; `parse(serialize(doc)) == doc`.
pub fn serialize(doc: &Document) -> String {
    let mut out = String::new();
    for (i, table) in doc.tables.iter().enumerate() {
        if table.name.is_empty() && table.entries.is_empty() && i == 0 {
            continue;
        }
        if !table.name.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("[{}]\n", table.name));
        }
        for (k, v) in &table.entries {
            match v {
                Value::Str(s) => out.push_str(&format!("{} = \"{}\"\n", format_key(k), escape(s))),
                Value::Int(n) => out.push_str(&format!("{} = {}\n", format_key(k), n)),
                Value::StrArray(items) => {
                    if items.is_empty() {
                        out.push_str(&format!("{} = []\n", format_key(k)));
                    } else {
                        out.push_str(&format!("{} = [\n", format_key(k)));
                        for item in items {
                            out.push_str(&format!("    \"{}\",\n", escape(item)));
                        }
                        out.push_str("]\n");
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_values() {
        let doc = parse(concat!(
            "schema = \"rbx.audit.v1\" # comment\n",
            "\n",
            "[rules.hot_panic]\n",
            "paths = [\"a.rs\", \"b.rs\"]\n",
            "\n",
            "[rules.casts]\n",
            "\"crates/gs/src/lib.rs\" = 25\n",
        ))
        .unwrap();
        assert_eq!(
            doc.get("", "schema"),
            Some(&Value::Str("rbx.audit.v1".into()))
        );
        assert_eq!(
            doc.get("rules.hot_panic", "paths"),
            Some(&Value::StrArray(vec!["a.rs".into(), "b.rs".into()]))
        );
        assert_eq!(
            doc.get("rules.casts", "crates/gs/src/lib.rs"),
            Some(&Value::Int(25))
        );
    }

    #[test]
    fn multiline_arrays() {
        let doc = parse("x = [\n  \"one\", # c\n  \"two\",\n]\n").unwrap();
        assert_eq!(
            doc.get("", "x"),
            Some(&Value::StrArray(vec!["one".into(), "two".into()]))
        );
    }

    #[test]
    fn round_trip() {
        let src = concat!(
            "schema = \"v1\"\n",
            "[t]\n",
            "n = 3\n",
            "arr = [\"a\", \"b\"]\n",
            "\"quoted/key.rs\" = 7\n",
        );
        let doc = parse(src).unwrap();
        let doc2 = parse(&serialize(&doc)).unwrap();
        assert_eq!(doc, doc2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not a kv line\n").is_err());
        assert!(parse("[unterminated\n").is_err());
        assert!(parse("k = [1, 2]\n").is_err());
    }
}
