//! Inline waiver grammar: `// audit:allow(<rule>): <reason>`.
//!
//! A waiver suppresses findings of `<rule>` on the line it targets:
//!
//! * a trailing comment waives its own line;
//! * a standalone comment waives the next source line carrying code
//!   (consecutive standalone waiver/plain-comment lines stack onto the
//!   same target).
//!
//! A waiver without a reason is itself a finding — every suppression must
//! say why. Unused (stale) waivers are findings too, so suppressions are
//! cleaned up when the code they covered changes.

use crate::lexer::{Comment, Token};

#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule id the waiver applies to.
    pub rule: String,
    pub reason: String,
    /// Line the waiver comment sits on (for reporting).
    pub comment_line: usize,
    /// Source line whose findings it suppresses.
    pub target_line: usize,
}

/// A malformed waiver comment (reported as an error by the engine).
#[derive(Debug, Clone)]
pub struct WaiverError {
    pub line: usize,
    pub message: String,
}

/// Extract waivers from a file's comments. `tokens` supplies the "next
/// line with code" resolution for standalone waiver comments.
pub fn collect(comments: &[Comment], tokens: &[Token]) -> (Vec<Waiver>, Vec<WaiverError>) {
    let mut waivers = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        let Some(body) = c.text.trim().strip_prefix("audit:allow") else {
            continue;
        };
        let body = body.trim_start();
        let Some(rest) = body.strip_prefix('(') else {
            errors.push(WaiverError {
                line: c.line,
                message: "malformed waiver: expected `audit:allow(<rule>): <reason>`".into(),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            errors.push(WaiverError {
                line: c.line,
                message: "malformed waiver: missing `)`".into(),
            });
            continue;
        };
        // Reason either inside the parens after a comma —
        // `audit:allow(rule, reason)` — or after the closing paren,
        // introduced by `:`.
        let inner = &rest[..close];
        let (rule, inner_reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim().to_string(), why.trim()),
            None => (inner.trim().to_string(), ""),
        };
        if rule.is_empty() {
            errors.push(WaiverError {
                line: c.line,
                message: "malformed waiver: empty rule id".into(),
            });
            continue;
        }
        let mut reason = rest[close + 1..].trim();
        reason = reason.strip_prefix(':').unwrap_or(reason).trim();
        if reason.is_empty() {
            reason = inner_reason;
        }
        if reason.is_empty() {
            errors.push(WaiverError {
                line: c.line,
                message: format!("waiver for `{rule}` has no reason — every waiver must say why"),
            });
            continue;
        }
        let target_line = if c.trailing {
            c.line
        } else {
            next_code_line(tokens, c.line).unwrap_or(c.line)
        };
        waivers.push(Waiver {
            rule,
            reason: reason.to_string(),
            comment_line: c.line,
            target_line,
        });
    }
    (waivers, errors)
}

fn next_code_line(tokens: &[Token], after: usize) -> Option<usize> {
    tokens.iter().map(|t| t.line).find(|&l| l > after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_and_standalone_targets() {
        let src = concat!(
            "let a = x.unwrap(); // audit:allow(hot-panic): setup-time only\n",
            "// audit:allow(hot-alloc): amortized by caller\n",
            "let b = Vec::new();\n",
        );
        let l = lex(src);
        let (ws, errs) = collect(&l.comments, &l.tokens);
        assert!(errs.is_empty(), "{errs:?}");
        assert_eq!(ws.len(), 2);
        assert_eq!((ws[0].rule.as_str(), ws[0].target_line), ("hot-panic", 1));
        assert_eq!((ws[1].rule.as_str(), ws[1].target_line), ("hot-alloc", 3));
        assert_eq!(ws[1].reason, "amortized by caller");
    }

    #[test]
    fn missing_reason_is_an_error() {
        let l = lex("// audit:allow(hot-panic)\nlet a = 1;\n");
        let (ws, errs) = collect(&l.comments, &l.tokens);
        assert!(ws.is_empty());
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("no reason"));
    }

    #[test]
    fn malformed_waivers_are_errors() {
        let l = lex("// audit:allow hot-panic: reason\n// audit:allow(: r\n");
        let (ws, errs) = collect(&l.comments, &l.tokens);
        assert!(ws.is_empty());
        assert_eq!(errs.len(), 2);
    }

    #[test]
    fn comma_separator_accepted() {
        let l = lex("x(); // audit:allow(casts, index arithmetic bounded by ctor)\n");
        let (ws, errs) = collect(&l.comments, &l.tokens);
        assert!(errs.is_empty());
        assert_eq!(ws[0].rule, "casts");
        assert_eq!(ws[0].reason, "index arithmetic bounded by ctor");
    }
}
