//! `rbx-audit` CLI.
//!
//! ```text
//! rbx-audit check      [--root DIR]   run the audit; exit 1 on errors
//! rbx-audit inventory  [--root DIR]   print audit.toml with regenerated
//!                                     cast/index budgets
//! rbx-audit waivers    [--root DIR]   list active waivers with reasons
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn parse_root(args: &[String]) -> PathBuf {
    let mut root = PathBuf::from(".");
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--root" {
            if let Some(dir) = args.get(i + 1) {
                root = PathBuf::from(dir);
                i += 1;
            }
        }
        i += 1;
    }
    root
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let root = parse_root(&args);
    match cmd {
        "check" => match rbx_audit::run_check(&root) {
            Ok(report) => {
                print!("{}", report.render());
                if report.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("rbx-audit: {e}");
                ExitCode::FAILURE
            }
        },
        "inventory" => match rbx_audit::run_inventory(&root) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rbx-audit: {e}");
                ExitCode::FAILURE
            }
        },
        "waivers" => match list_waivers(&root) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rbx-audit: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!(
                "usage: rbx-audit <check|inventory|waivers> [--root DIR]\n\
                 see DESIGN.md §9 for the rule catalogue"
            );
            ExitCode::FAILURE
        }
    }
}

fn list_waivers(root: &std::path::Path) -> Result<String, String> {
    let mut out = String::new();
    let files = rbx_audit::workspace::discover(root).map_err(|e| e.to_string())?;
    for path in files {
        let src = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let (file, _) = rbx_audit::workspace::SourceFile::from_source(&rel, &src);
        for w in &file.waivers {
            out.push_str(&format!(
                "{rel}:{} [{}] {}\n",
                w.target_line, w.rule, w.reason
            ));
        }
    }
    Ok(out)
}
