//! `rbx-audit` CLI.
//!
//! ```text
//! rbx-audit check      [--root DIR] [--deny-drift]
//!                                    run the audit; exit 1 on errors
//!                                    (--deny-drift: notes fail too — CI
//!                                    keeps budgets/registries tight)
//! rbx-audit inventory  [--root DIR]  print audit.toml with regenerated
//!                                    cast/index budgets
//! rbx-audit hotset     [--root DIR]  print the inferred reach sets with
//!                                    provenance chains
//! rbx-audit waivers    [--root DIR]  list active waivers with reasons
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn parse_root(args: &[String]) -> PathBuf {
    let mut root = PathBuf::from(".");
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--root" {
            if let Some(dir) = args.get(i + 1) {
                root = PathBuf::from(dir);
                i += 1;
            }
        }
        i += 1;
    }
    root
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let root = parse_root(&args);
    let deny_drift = args.iter().any(|a| a == "--deny-drift");
    match cmd {
        "check" => match rbx_audit::run_check(&root) {
            Ok(report) => {
                print!("{}", report.render());
                let clean = report.is_clean() && (!deny_drift || report.notes() == 0);
                if clean {
                    ExitCode::SUCCESS
                } else {
                    if deny_drift && report.is_clean() {
                        eprintln!(
                            "rbx-audit: notes present and --deny-drift set — tighten the budgets/registries"
                        );
                    }
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("rbx-audit: {e}");
                ExitCode::FAILURE
            }
        },
        "inventory" => match rbx_audit::run_inventory(&root) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rbx-audit: {e}");
                ExitCode::FAILURE
            }
        },
        "hotset" => match rbx_audit::run_hotset(&root) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rbx-audit: {e}");
                ExitCode::FAILURE
            }
        },
        "waivers" => match list_waivers(&root) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rbx-audit: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!(
                "usage: rbx-audit <check|inventory|hotset|waivers> [--root DIR] [--deny-drift]\n\
                 see DESIGN.md §14 for the analyzer architecture and §9 for the rule catalogue"
            );
            ExitCode::FAILURE
        }
    }
}

fn list_waivers(root: &std::path::Path) -> Result<String, String> {
    let mut out = String::new();
    let files = rbx_audit::workspace::load(root).map_err(|e| e.to_string())?;
    for (file, _) in &files {
        for w in &file.waivers {
            out.push_str(&format!(
                "{}:{} [{}] {}\n",
                file.path, w.target_line, w.rule, w.reason
            ));
        }
    }
    Ok(out)
}
