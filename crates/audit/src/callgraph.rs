//! Workspace call graph and transitive hot-set inference.
//!
//! Nodes are every [`crate::parse::FnDef`] in the workspace; edges come
//! from syntactic call sites with name-based resolution:
//!
//! * `Qual::name(…)` resolves against `Owner::name` qualified keys
//!   (module qualifiers fall back to the bare name). A qualified call
//!   that matches nothing — `Vec::new`, `f64::max` — produces no edge,
//!   which keeps std calls from polluting the graph.
//! * `.name(…)` and `name(…)` resolve by bare name against every
//!   workspace definition, **unless** the name is ambiguous beyond
//!   `[callgraph] ambiguous_cap` (think `new`, `len`): such promiscuous
//!   names only resolve through a qualified path. This is the
//!   over-approximation/precision dial: reachability must never silently
//!   lose a hot helper, but `.clone()` must not drag the whole workspace
//!   into the hot set.
//!
//! The hot set is the transitive closure from the `[roots]` declarations
//! in `audit.toml`. Root/stop specs use the grammar
//! `Owner::fn`, `fn`, `path/to/file.rs::fn` or `path/to/file.rs::*`;
//! stops are subtracted before traversal (a stop function is neither
//! analyzed nor expanded — telemetry recording is the canonical stop),
//! and `stop_crates` prunes whole path prefixes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parse::FileIr;

/// Method names that collide with ubiquitous std/foreign-type methods
/// (`scope.spawn`, `file.write`, `tx.send`, `iter.for_each`, …). A
/// method call on a **non-`self` receiver** with one of these names
/// produces no edge — without receiver types, linking `up.write(…)` to
/// `CheckpointSet::write` would drag unrelated subsystems into the hot
/// set. Functions behind such dispatch boundaries are declared as
/// `[roots]` instead (comm send/recv paths, checkpoint write/restore,
/// the WorkerPool fan-out methods), which is the v2 contract: inference
/// never *silently* loses them because the unmatched-root check fails
/// loudly when a declared root disappears.
const STD_METHOD_COLLISIONS: &[&str] = &[
    "clone",
    "close",
    "contains",
    "create",
    "drain",
    "elapsed",
    "extend",
    "finish",
    "flush",
    "for_each",
    "get",
    "insert",
    "join",
    "len",
    "load",
    "lock",
    "next",
    "open",
    "push",
    "rank",
    "read",
    "record",
    "recv",
    "run",
    "send",
    "size",
    "spawn",
    "start",
    "stop",
    "store",
    "sum",
    "take",
    "update",
    "wait",
    "write",
    "write_all",
];

/// One function node: `(file, index into that file's IR)` plus the
/// resolution keys, flattened for the whole workspace.
#[derive(Debug, Clone)]
pub struct Node {
    pub file: String,
    /// Index into the owning file's `FileIr::fns`.
    pub fn_idx: usize,
    pub name: String,
    pub qual: String,
    pub decl_line: usize,
}

impl Node {
    /// Stable display id: `file::Owner::fn`.
    pub fn id(&self) -> String {
        format!("{}::{}", self.file, self.qual)
    }
}

#[derive(Debug, Default)]
pub struct CallGraph {
    pub nodes: Vec<Node>,
    /// Bare name → node indices.
    by_name: BTreeMap<String, Vec<usize>>,
    /// `Owner::name` → node indices.
    by_qual: BTreeMap<String, Vec<usize>>,
    /// Resolved adjacency (deduplicated, sorted).
    pub edges: Vec<Vec<usize>>,
}

/// A reach set with provenance: for every member, the node it was first
/// reached from (`None` for roots) — the audit report uses this to print
/// *why* a function is hot.
#[derive(Debug, Default)]
pub struct ReachSet {
    pub member: BTreeMap<usize, Option<usize>>,
}

impl ReachSet {
    pub fn contains(&self, node: usize) -> bool {
        self.member.contains_key(&node)
    }

    pub fn is_empty(&self) -> bool {
        self.member.is_empty()
    }

    pub fn len(&self) -> usize {
        self.member.len()
    }

    /// Root-ward chain `node ← parent ← … ← root` as display ids.
    pub fn chain(&self, graph: &CallGraph, node: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            out.push(graph.nodes[n].id());
            cur = self.member.get(&n).copied().flatten();
            if out.len() > graph.nodes.len() {
                break; // defensive: provenance cannot cycle, but never loop
            }
        }
        out
    }
}

impl CallGraph {
    /// Build the graph over `files`: `(path, ir)` pairs, with edge
    /// resolution capped at `ambiguous_cap` candidates for unqualified
    /// names.
    pub fn build(files: &[(String, &FileIr)], ambiguous_cap: usize) -> Self {
        let mut g = CallGraph::default();
        for (path, ir) in files {
            for (fi, f) in ir.fns.iter().enumerate() {
                let idx = g.nodes.len();
                g.nodes.push(Node {
                    file: path.clone(),
                    fn_idx: fi,
                    name: f.name.clone(),
                    qual: f.qual_name(),
                    decl_line: f.decl_line,
                });
                g.by_name.entry(f.name.clone()).or_default().push(idx);
                g.by_qual.entry(f.qual_name()).or_default().push(idx);
            }
        }
        let mut edges = vec![Vec::new(); g.nodes.len()];
        let mut node_iter = 0usize;
        for (_, ir) in files {
            for f in &ir.fns {
                let me = node_iter;
                node_iter += 1;
                let mut targets = BTreeSet::new();
                for c in &f.calls {
                    match &c.qual {
                        Some(q) => {
                            let key = format!("{q}::{}", c.name);
                            if let Some(hits) = g.by_qual.get(&key) {
                                targets.extend(hits.iter().copied());
                            } else if let Some(hits) = g.by_name.get(&c.name) {
                                // Module-qualified free fn (`detail::inner`):
                                // the qualifier is not an impl owner, so
                                // fall back to the bare name under the cap.
                                if hits.len() <= ambiguous_cap {
                                    targets.extend(hits.iter().copied());
                                }
                            }
                        }
                        None if c.method => {
                            // `self.name(…)`: prefer a same-owner method —
                            // the overwhelmingly likely target.
                            let mut resolved = false;
                            if c.recv_self {
                                if let Some(owner) = &f.owner {
                                    if let Some(hits) =
                                        g.by_qual.get(&format!("{owner}::{}", c.name))
                                    {
                                        targets.extend(hits.iter().copied());
                                        resolved = true;
                                    }
                                }
                            }
                            if !resolved && !STD_METHOD_COLLISIONS.contains(&c.name.as_str()) {
                                if let Some(hits) = g.by_name.get(&c.name) {
                                    if hits.len() <= ambiguous_cap {
                                        targets.extend(hits.iter().copied());
                                    }
                                }
                            }
                        }
                        None => {
                            if let Some(hits) = g.by_name.get(&c.name) {
                                if hits.len() <= ambiguous_cap {
                                    targets.extend(hits.iter().copied());
                                }
                            }
                        }
                    }
                }
                targets.remove(&me); // self-recursion adds nothing
                edges[me] = targets.into_iter().collect();
            }
        }
        g.edges = edges;
        g
    }

    /// Node indices matching a root/stop spec:
    /// `file.rs::*`, `file.rs::fn`, `Owner::fn`, or bare `fn`.
    pub fn resolve_spec(&self, spec: &str) -> Vec<usize> {
        if let Some((file, rest)) = spec.split_once(".rs::") {
            let file = format!("{file}.rs");
            return self
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| {
                    n.file == file && (rest == "*" || n.qual == rest || n.name == rest)
                })
                .map(|(i, _)| i)
                .collect();
        }
        if spec.contains("::") {
            return self.by_qual.get(spec).cloned().unwrap_or_default();
        }
        // Bare name: union qualified and bare hits. A trait default
        // method parses with no owner, so its qual name *is* the bare
        // name — qual-first-with-early-return would shadow every impl
        // of the method and silently shrink the spec's match set.
        let mut hits: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        if let Some(h) = self.by_qual.get(spec) {
            hits.extend(h.iter().copied());
        }
        if let Some(h) = self.by_name.get(spec) {
            hits.extend(h.iter().copied());
        }
        hits.into_iter().collect()
    }

    /// BFS closure from `roots`, never entering `stops` or any node whose
    /// file starts with one of `stop_crates` — except that an explicit
    /// root of *this* traversal overrides any stop (explicit beats
    /// inferred: declaring `recv_deadline` a no-panic root while also
    /// stopping it keeps the comm subgraph out of the *hot* closure but
    /// fully covered by the soft tier). Returns the reach set with
    /// provenance and the list of root specs that matched nothing (a
    /// config-drift error for the caller to report).
    pub fn reach(
        &self,
        roots: &[String],
        stops: &[String],
        stop_crates: &[String],
    ) -> (ReachSet, Vec<String>) {
        let mut stopped: BTreeSet<usize> = BTreeSet::new();
        for s in stops {
            stopped.extend(self.resolve_spec(s));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if stop_crates.iter().any(|p| n.file.starts_with(p.as_str())) {
                stopped.insert(i);
            }
        }
        let mut set = ReachSet::default();
        let mut queue = VecDeque::new();
        let mut unmatched = Vec::new();
        for spec in roots {
            let hits = self.resolve_spec(spec);
            if hits.is_empty() {
                unmatched.push(spec.clone());
            }
            for h in hits {
                stopped.remove(&h);
                if !set.contains(h) {
                    set.member.insert(h, None);
                    queue.push_back(h);
                }
            }
        }
        while let Some(n) = queue.pop_front() {
            for &t in &self.edges[n] {
                if !stopped.contains(&t) && !set.contains(t) {
                    set.member.insert(t, Some(n));
                    queue.push_back(t);
                }
            }
        }
        (set, unmatched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse;

    fn graph(files: &[(&str, &str)]) -> (CallGraph, Vec<(String, FileIr)>) {
        let irs: Vec<(String, FileIr)> = files
            .iter()
            .map(|(p, src)| (p.to_string(), parse::parse(&lex(src).tokens)))
            .collect();
        let refs: Vec<(String, &FileIr)> = irs.iter().map(|(p, ir)| (p.clone(), ir)).collect();
        (CallGraph::build(&refs, 8), irs)
    }

    #[test]
    fn cross_module_calls_resolve() {
        let (g, _) = graph(&[
            ("a.rs", "pub fn root() { crate::b::helper(); }\n"),
            ("b.rs", "pub fn helper() { leaf(); }\npub fn leaf() {}\n"),
        ]);
        let (set, unmatched) = g.reach(&["root".into()], &[], &[]);
        assert!(unmatched.is_empty());
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn method_calls_resolve_by_name() {
        let (g, _) = graph(&[
            (
                "sim.rs",
                "impl Sim { pub fn step(&mut self) { self.solve(); } }\n",
            ),
            (
                "la.rs",
                "impl Solver { pub fn solve(&self) { kernel(); } }\nfn kernel() {}\n",
            ),
        ]);
        let (set, _) = g.reach(&["Sim::step".into()], &[], &[]);
        let ids: Vec<String> = set.member.keys().map(|&i| g.nodes[i].id()).collect();
        assert!(ids.contains(&"la.rs::Solver::solve".to_string()), "{ids:?}");
        assert!(ids.contains(&"la.rs::kernel".to_string()));
    }

    #[test]
    fn closures_as_jobs_are_reached() {
        let (g, _) = graph(&[
            (
                "hot.rs",
                "pub fn dispatch(pool: &Pool) { pool.for_each(4, 1, |i| job_kernel(i)); }\n",
            ),
            (
                "k.rs",
                "pub fn job_kernel(i: usize) { inner(i); }\nfn inner(_i: usize) {}\n",
            ),
        ]);
        let (set, _) = g.reach(&["dispatch".into()], &[], &[]);
        let ids: Vec<String> = set.member.keys().map(|&i| g.nodes[i].id()).collect();
        assert!(ids.contains(&"k.rs::job_kernel".to_string()));
        assert!(ids.contains(&"k.rs::inner".to_string()));
    }

    #[test]
    fn ambiguous_names_need_qualification() {
        let files: Vec<(String, String)> = (0..10)
            .map(|i| {
                (
                    format!("f{i}.rs"),
                    format!("impl T{i} {{ pub fn new() {{ panic!(); }} }}\n"),
                )
            })
            .collect();
        let mut all: Vec<(&str, &str)> = files
            .iter()
            .map(|(p, s)| (p.as_str(), s.as_str()))
            .collect();
        let root_src = "pub fn root() { let a = T3::new(); let b = helper(); }\nfn helper() {}\n";
        all.push(("root.rs", root_src));
        let (g, _) = graph(&all);
        let (set, _) = g.reach(&["root".into()], &[], &[]);
        let ids: Vec<String> = set.member.keys().map(|&i| g.nodes[i].id()).collect();
        // `new` has 10 candidates — over the cap — so only the qualified
        // `T3::new` edge resolves.
        assert!(ids.contains(&"f3.rs::T3::new".to_string()), "{ids:?}");
        assert_eq!(ids.iter().filter(|s| s.ends_with("::new")).count(), 1);
        assert!(ids.contains(&"root.rs::helper".to_string()));
    }

    #[test]
    fn std_colliding_method_names_do_not_link_on_foreign_receivers() {
        let (g, _) = graph(&[
            (
                "la.rs",
                "impl SchwarzMg { pub fn apply(&self) { scope.spawn(|| {}); up.write(1, 2.0); } }\n",
            ),
            ("insitu.rs", "impl PodConsumer { pub fn spawn() { heavy(); } }\nfn heavy() {}\n"),
            ("ckpt.rs", "impl CheckpointSet { pub fn write(&self) { disk(); } }\nfn disk() {}\n"),
        ]);
        let (set, _) = g.reach(&["SchwarzMg::apply".into()], &[], &[]);
        assert_eq!(set.len(), 1, "scope.spawn / up.write must not link");
    }

    #[test]
    fn self_receiver_prefers_same_owner_method() {
        let (g, _) = graph(&[
            (
                "a.rs",
                "impl Sim { pub fn step(&mut self) { self.solve(); } pub fn solve(&self) {} }\n",
            ),
            (
                "b.rs",
                "impl Other { pub fn solve(&self) { bad(); } }\nfn bad() {}\n",
            ),
        ]);
        let (set, _) = g.reach(&["Sim::step".into()], &[], &[]);
        let ids: Vec<String> = set.member.keys().map(|&i| g.nodes[i].id()).collect();
        assert!(ids.contains(&"a.rs::Sim::solve".to_string()));
        assert!(!ids.contains(&"b.rs::Other::solve".to_string()), "{ids:?}");
    }

    #[test]
    fn stops_prune_traversal() {
        let (g, _) = graph(&[(
            "a.rs",
            "pub fn root() { record(); solve(); }\npub fn record() { fmt(); }\npub fn fmt() {}\npub fn solve() {}\n",
        )]);
        let (set, _) = g.reach(&["root".into()], &["record".into()], &[]);
        let ids: Vec<String> = set.member.keys().map(|&i| g.nodes[i].id()).collect();
        assert!(!ids.contains(&"a.rs::record".to_string()));
        assert!(!ids.contains(&"a.rs::fmt".to_string()));
        assert!(ids.contains(&"a.rs::solve".to_string()));
    }

    #[test]
    fn roots_override_stops() {
        // `recv_deadline` is stopped for every traversal, but declaring
        // it a root of this one re-enables it *and* its expansion.
        let (g, _) = graph(&[(
            "comm.rs",
            "pub fn recv_deadline() { recv_attempt(); }\nfn recv_attempt() {}\npub fn hot_root() { recv_deadline(); }\n",
        )]);
        let (hot, _) = g.reach(&["hot_root".into()], &["recv_deadline".into()], &[]);
        assert_eq!(hot.len(), 1, "stop prunes the inferred closure");
        let (np, _) = g.reach(&["recv_deadline".into()], &["recv_deadline".into()], &[]);
        assert_eq!(np.len(), 2, "explicit root beats the stop and expands");
    }

    #[test]
    fn bare_spec_matches_trait_default_and_impls() {
        // A trait default method named `recv_deadline` has no owner, so
        // its qual name is the bare name. The bare spec must still match
        // *every* impl method too, or a stop on `recv_deadline` leaves
        // the impls wide open to hot-closure expansion.
        let (g, _) = graph(&[(
            "comm.rs",
            "pub trait Comm { fn recv_deadline(&self) {} }\n\
             impl ChaosComm { pub fn recv_deadline(&self) { self.flush_held(); } fn flush_held(&self) {} }\n\
             impl GatherScatter { pub fn try_apply(&self, c: &dyn Comm) { c.recv_deadline(); } }\n",
        )]);
        assert_eq!(g.resolve_spec("recv_deadline").len(), 2);
        let (hot, _) = g.reach(
            &["GatherScatter::try_apply".into()],
            &["recv_deadline".into()],
            &[],
        );
        assert_eq!(
            hot.len(),
            1,
            "both defs stopped, hot closure is the root alone"
        );
    }

    #[test]
    fn stop_crates_prune_by_prefix() {
        let (g, _) = graph(&[
            ("crates/core/src/sim.rs", "pub fn root() { emit(); }\n"),
            (
                "crates/telemetry/src/lib.rs",
                "pub fn emit() { fanout(); }\nfn fanout() {}\n",
            ),
        ]);
        let (set, _) = g.reach(&["root".into()], &[], &["crates/telemetry".into()]);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn unmatched_roots_are_reported() {
        let (g, _) = graph(&[("a.rs", "pub fn root() {}\n")]);
        let (_, unmatched) = g.reach(&["no_such_fn".into()], &[], &[]);
        assert_eq!(unmatched, vec!["no_such_fn".to_string()]);
    }

    #[test]
    fn file_star_spec_roots_every_fn() {
        let (g, _) = graph(&[(
            "io.rs",
            "pub fn write() {}\npub fn read() { helper(); }\nfn helper() {}\n",
        )]);
        let (set, _) = g.reach(&["io.rs::*".into()], &[], &[]);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn provenance_chain_reaches_a_root() {
        let (g, _) = graph(&[(
            "a.rs",
            "pub fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        )]);
        let (set, _) = g.reach(&["root".into()], &[], &[]);
        let leaf = g.nodes.iter().position(|n| n.name == "leaf").unwrap();
        let chain = set.chain(&g, leaf);
        assert_eq!(chain, vec!["a.rs::leaf", "a.rs::mid", "a.rs::root"]);
    }
}
