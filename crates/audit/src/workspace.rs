//! Workspace scanning and the rule engine: file discovery, test-section
//! stripping, the two-pass v2 run (parse everything → build the call
//! graph and reach sets → apply rules), waiver application, and finding
//! aggregation.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::callgraph::{CallGraph, ReachSet};
use crate::config::AuditConfig;
use crate::lexer::{self, Lexed, Token};
use crate::parse::{self, FileIr};
use crate::report::{Finding, Report, Severity};
use crate::rules;
use crate::waiver::{self, Waiver};

/// A waiver placed on a `fn` declaration (within this many lines above
/// it, to allow attributes in between) covers every finding of its rule
/// inside that function's body — the v2 per-function waiver grammar.
const FN_WAIVER_REACH: usize = 2;

/// One lexed source file with its production cut, parsed IR and waivers.
pub struct SourceFile {
    /// Repo-relative path with `/` separators (the key used by
    /// `audit.toml`).
    pub path: String,
    pub lexed: Lexed,
    /// First line of the `#[cfg(test)]` section (`usize::MAX` if none);
    /// rules ignore tokens at or past this line.
    pub test_line: usize,
    /// Item/fn/call-site IR over the production tokens (test sections
    /// contribute no nodes to the call graph).
    pub ir: FileIr,
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    pub fn from_source(path: &str, src: &str) -> (Self, Vec<Finding>) {
        let lexed = lexer::lex(src);
        let test_line = lexer::test_section_line(&lexed.tokens);
        let (waivers, werrs) = waiver::collect(&lexed.comments, &lexed.tokens);
        let mut findings = Vec::new();
        for e in werrs {
            findings.push(Finding::error(rules::WAIVER, path, e.line, e.message));
        }
        // Waivers naming unknown rules are configuration typos.
        for w in &waivers {
            if !rules::ALL_RULES.contains(&w.rule.as_str()) {
                findings.push(Finding::error(
                    rules::WAIVER,
                    path,
                    w.comment_line,
                    format!("waiver names unknown rule `{}`", w.rule),
                ));
            }
        }
        let prod_end = lexed
            .tokens
            .iter()
            .position(|t| t.line >= test_line)
            .unwrap_or(lexed.tokens.len());
        let ir = parse::parse(&lexed.tokens[..prod_end]);
        (
            Self {
                path: path.to_string(),
                lexed,
                test_line,
                ir,
                waivers: waivers
                    .into_iter()
                    .filter(|w| w.target_line < test_line)
                    .collect(),
            },
            findings,
        )
    }

    /// Production tokens: everything before the test section. The IR's
    /// `body_tokens` ranges index into this slice.
    pub fn prod_tokens(&self) -> &[Token] {
        let end = self
            .lexed
            .tokens
            .iter()
            .position(|t| t.line >= self.test_line)
            .unwrap_or(self.lexed.tokens.len());
        &self.lexed.tokens[..end]
    }
}

/// Recursively collect `crates/*/src/**/*.rs` under `root`, sorted for
/// deterministic reports. `vendor/`, integration `tests/`, benches and
/// build scripts are intentionally out of scope.
pub fn discover(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Load and parse every workspace source file, with the waiver-grammar
/// findings collected during parsing.
pub fn load(root: &Path) -> io::Result<Vec<(SourceFile, Vec<Finding>)>> {
    let mut out = Vec::new();
    for path in discover(root)? {
        let src = fs::read_to_string(&path)?;
        let rel = rel_path(root, &path);
        out.push(SourceFile::from_source(&rel, &src));
    }
    Ok(out)
}

/// Run the full v2 audit over the workspace at `root`.
///
/// Pass 1 parses every file into IR; pass 2 builds the workspace call
/// graph, infers the reach sets from `[roots]`, and runs every rule with
/// that context. Waivers are applied per file at the end.
pub fn run(root: &Path, cfg: &AuditConfig) -> io::Result<Report> {
    let files = load(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };

    let refs: Vec<(String, &FileIr)> = files.iter().map(|(f, _)| (f.path.clone(), &f.ir)).collect();
    let graph = CallGraph::build(&refs, cfg.ambiguous_cap);
    let (hot, un_hot) = graph.reach(&cfg.roots_hot, &cfg.roots_stop, &cfg.stop_crates);
    let (no_panic, un_np) = graph.reach(&cfg.roots_no_panic, &cfg.roots_stop, &cfg.stop_crates);
    let (det_extra, un_det) =
        graph.reach(&cfg.roots_determinism, &cfg.roots_stop, &cfg.stop_crates);

    // Determinism domain: everything hot or no-panic, plus the extra
    // determinism roots (setup-time topology/manifest construction).
    let mut det_domain = ReachSet::default();
    for set in [&hot, &no_panic, &det_extra] {
        for (k, v) in &set.member {
            det_domain.member.entry(*k).or_insert(*v);
        }
    }
    report.hot_fns = hot.len();
    report.no_panic_fns = no_panic.len();
    report.det_fns = det_domain.len();

    // A `[roots]` entry matching no function is config drift: the code
    // moved and the audit silently lost its anchor. Not waivable.
    for (kind, specs) in [
        ("hot", un_hot),
        ("no_panic", un_np),
        ("determinism", un_det),
    ] {
        for spec in specs {
            report.findings.push(Finding::error(
                rules::ROOTS,
                "audit.toml",
                0,
                format!("[roots] {kind} spec `{spec}` matches no function — update it to the new location"),
            ));
        }
    }

    let mut telemetry_seen: BTreeSet<String> = BTreeSet::new();
    let mut index_counts: BTreeMap<String, usize> = BTreeMap::new();
    for (file, waiver_findings) in &files {
        report.findings.extend(waiver_findings.iter().cloned());
        let mut raw: Vec<Finding> = Vec::new();
        rules::reach::check_file(file, &graph, &hot, &no_panic, &mut index_counts, &mut raw);
        rules::determinism::check_file(file, cfg, &graph, &det_domain, &mut raw);
        rules::unsafe_safety::check(file, &mut raw);
        rules::atomics::check(file, &mut raw);
        rules::casts::check(file, cfg, &mut raw);
        rules::pool::check(file, cfg, &mut raw);
        rules::recv::check(file, cfg, &mut raw);
        rules::rank_offset::check(file, cfg, &mut raw);
        rules::telemetry_names::check(file, cfg, &mut raw, &mut telemetry_seen);
        apply_waivers(file, raw, &mut report);
    }
    rules::reach::index_budget(cfg, &index_counts, &mut report.findings);
    rules::telemetry_names::coverage(cfg, &telemetry_seen, &mut report.findings);
    Ok(report)
}

/// Does waiver `w` cover finding `f`? Same-line waivers work as in v1;
/// a waiver targeting a `fn` declaration (within [`FN_WAIVER_REACH`]
/// lines above it) covers the whole body for that rule.
fn waiver_covers(file: &SourceFile, w: &Waiver, f: &Finding) -> bool {
    if w.rule != f.rule {
        return false;
    }
    if w.target_line == f.line {
        return true;
    }
    // Fn-level: the waiver heads the *nearest* following fn declaration
    // (attributes may sit in between); it covers that body and no other.
    file.ir
        .fns
        .iter()
        .filter(|d| d.decl_line >= w.target_line && d.decl_line - w.target_line <= FN_WAIVER_REACH)
        .min_by_key(|d| d.decl_line)
        .is_some_and(|d| f.line >= d.decl_line && f.line <= d.body_lines.1)
}

/// Suppress findings covered by a waiver for the same rule; report stale
/// waivers that suppressed nothing.
fn apply_waivers(file: &SourceFile, raw: Vec<Finding>, report: &mut Report) {
    let mut used = vec![false; file.waivers.len()];
    for f in raw {
        let mut waived = false;
        if f.severity == Severity::Error {
            for (i, w) in file.waivers.iter().enumerate() {
                if waiver_covers(file, w, &f) {
                    used[i] = true;
                    waived = true;
                }
            }
        }
        if !waived {
            report.findings.push(f);
        }
    }
    for (i, w) in file.waivers.iter().enumerate() {
        if used[i] {
            report.waivers_used += 1;
        } else if rules::ALL_RULES.contains(&w.rule.as_str()) {
            report.findings.push(Finding::error(
                rules::WAIVER,
                &file.path,
                w.comment_line,
                format!(
                    "stale waiver: no `{}` finding on line {} (or in the fn it heads) — remove it",
                    w.rule, w.target_line
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_section_is_stripped() {
        let src = "fn a() {}\n#[cfg(test)]\nmod t { fn b() { x.unwrap(); } }\n";
        let (f, _) = SourceFile::from_source("x.rs", src);
        assert!(f.prod_tokens().iter().all(|t| !t.is_ident("unwrap")));
        assert_eq!(f.ir.fns.len(), 1, "test fns contribute no IR nodes");
    }

    #[test]
    fn unknown_rule_waiver_is_flagged() {
        let src = "// audit:allow(no-such-rule): because\nlet a = 1;\n";
        let (_, findings) = SourceFile::from_source("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unknown rule"));
    }

    fn file_with(src: &str) -> SourceFile {
        SourceFile::from_source("x.rs", src).0
    }

    #[test]
    fn fn_level_waiver_covers_body_findings() {
        let file = file_with(concat!(
            "// audit:allow(hot-panic): scaffolding, see #42\n",
            "#[inline]\n",
            "fn hot() {\n",
            "  let x: Option<u8> = None;\n",
            "  x.unwrap();\n",
            "}\n",
        ));
        let raw = vec![Finding::error(rules::HOT_PANIC, "x.rs", 5, "boom")];
        let mut report = Report::default();
        apply_waivers(&file, raw, &mut report);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.waivers_used, 1);
    }

    #[test]
    fn fn_level_waiver_does_not_leak_past_the_fn() {
        let file = file_with(concat!(
            "// audit:allow(hot-panic): only covers hot\n",
            "fn hot() {}\n",
            "fn other() { let x: Option<u8> = None; x.unwrap(); }\n",
        ));
        let raw = vec![Finding::error(rules::HOT_PANIC, "x.rs", 3, "boom")];
        let mut report = Report::default();
        apply_waivers(&file, raw, &mut report);
        // The finding in `other` survives, and the waiver is stale.
        assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == rules::WAIVER && f.message.contains("stale")));
    }

    #[test]
    fn stale_waiver_is_an_error() {
        let file = file_with("// audit:allow(hot-panic): nothing here\nfn fine() {}\n");
        let mut report = Report::default();
        apply_waivers(&file, Vec::new(), &mut report);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, rules::WAIVER);
        assert_eq!(report.findings[0].severity, Severity::Error);
    }
}
