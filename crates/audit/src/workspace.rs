//! Workspace scanning and the rule engine: file discovery, test-section
//! stripping, waiver application, and finding aggregation.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::AuditConfig;
use crate::lexer::{self, Lexed, Token};
use crate::report::{Finding, Report, Severity};
use crate::rules;
use crate::waiver::{self, Waiver};

/// One lexed source file with its production cut and waivers.
pub struct SourceFile {
    /// Repo-relative path with `/` separators (the key used by
    /// `audit.toml`).
    pub path: String,
    pub lexed: Lexed,
    /// First line of the `#[cfg(test)]` section (`usize::MAX` if none);
    /// rules ignore tokens at or past this line.
    pub test_line: usize,
    pub waivers: Vec<Waiver>,
}

impl SourceFile {
    pub fn from_source(path: &str, src: &str) -> (Self, Vec<Finding>) {
        let lexed = lexer::lex(src);
        let test_line = lexer::test_section_line(&lexed.tokens);
        let (waivers, werrs) = waiver::collect(&lexed.comments, &lexed.tokens);
        let mut findings = Vec::new();
        for e in werrs {
            findings.push(Finding::error(rules::WAIVER, path, e.line, e.message));
        }
        // Waivers naming unknown rules are configuration typos.
        for w in &waivers {
            if !rules::ALL_RULES.contains(&w.rule.as_str()) {
                findings.push(Finding::error(
                    rules::WAIVER,
                    path,
                    w.comment_line,
                    format!("waiver names unknown rule `{}`", w.rule),
                ));
            }
        }
        (
            Self {
                path: path.to_string(),
                lexed,
                test_line: if test_line == usize::MAX {
                    usize::MAX
                } else {
                    test_line
                },
                waivers: waivers
                    .into_iter()
                    .filter(|w| w.target_line < test_line)
                    .collect(),
            },
            findings,
        )
    }

    /// Production tokens: everything before the test section.
    pub fn prod_tokens(&self) -> &[Token] {
        let end = self
            .lexed
            .tokens
            .iter()
            .position(|t| t.line >= self.test_line)
            .unwrap_or(self.lexed.tokens.len());
        &self.lexed.tokens[..end]
    }
}

/// Recursively collect `crates/*/src/**/*.rs` under `root`, sorted for
/// deterministic reports. `vendor/`, integration `tests/`, benches and
/// build scripts are intentionally out of scope.
pub fn discover(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            walk(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Run every rule over the workspace at `root` with `cfg`, applying
/// waivers and flagging stale ones.
pub fn run(root: &Path, cfg: &AuditConfig) -> io::Result<Report> {
    let mut report = Report::default();
    let mut telemetry_seen: BTreeSet<String> = BTreeSet::new();
    for path in discover(root)? {
        let src = fs::read_to_string(&path)?;
        let rel = rel_path(root, &path);
        report.files_scanned += 1;
        let (file, waiver_findings) = SourceFile::from_source(&rel, &src);
        report.findings.extend(waiver_findings);

        let mut raw: Vec<Finding> = Vec::new();
        rules::panics::check(&file, cfg, &mut raw);
        rules::index::check(&file, cfg, &mut raw);
        rules::alloc::check(&file, cfg, &mut raw);
        rules::atomics::check(&file, &mut raw);
        rules::casts::check(&file, cfg, &mut raw);
        rules::pool::check(&file, cfg, &mut raw);
        rules::recv::check(&file, cfg, &mut raw);
        rules::rank_offset::check(&file, cfg, &mut raw);
        rules::telemetry_names::check(&file, cfg, &mut raw, &mut telemetry_seen);

        apply_waivers(&file, raw, &mut report);
    }
    rules::telemetry_names::coverage(cfg, &telemetry_seen, &mut report.findings);
    Ok(report)
}

/// Suppress findings covered by a same-line waiver for the same rule;
/// report stale waivers that suppressed nothing.
fn apply_waivers(file: &SourceFile, raw: Vec<Finding>, report: &mut Report) {
    let mut used = vec![false; file.waivers.len()];
    for f in raw {
        let mut waived = false;
        if f.severity == Severity::Error {
            for (i, w) in file.waivers.iter().enumerate() {
                if w.rule == f.rule && w.target_line == f.line {
                    used[i] = true;
                    waived = true;
                }
            }
        }
        if !waived {
            report.findings.push(f);
        }
    }
    for (i, w) in file.waivers.iter().enumerate() {
        if used[i] {
            report.waivers_used += 1;
        } else if rules::ALL_RULES.contains(&w.rule.as_str()) {
            report.findings.push(Finding::error(
                rules::WAIVER,
                &file.path,
                w.comment_line,
                format!(
                    "stale waiver: no `{}` finding on line {} — remove it",
                    w.rule, w.target_line
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_section_is_stripped() {
        let src = "fn a() {}\n#[cfg(test)]\nmod t { fn b() { x.unwrap(); } }\n";
        let (f, _) = SourceFile::from_source("x.rs", src);
        assert!(f.prod_tokens().iter().all(|t| !t.is_ident("unwrap")));
    }

    #[test]
    fn unknown_rule_waiver_is_flagged() {
        let src = "// audit:allow(no-such-rule): because\nlet a = 1;\n";
        let (_, findings) = SourceFile::from_source("x.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("unknown rule"));
    }
}
