//! Determinism taint helpers: what the `det-*` rules consider tainted.
//!
//! The solver's bitwise-determinism contract (checkpoints byte-identical
//! across thread counts and N→M restarts) survives only if three taint
//! sources never reach solver state, checkpoint bytes or comm payloads:
//!
//! * **wall clock** — `Instant::now`/`SystemTime::now` values differ per
//!   run; fine for telemetry, fatal in state;
//! * **unordered iteration** — `HashMap`/`HashSet` iteration order is
//!   randomized per process (`RandomState`), so any iteration feeding
//!   state, a manifest or message ordering varies run to run;
//! * **unordered float reduction** — summing parallel-chunk partials in
//!   arrival order changes the rounding; only the chunk-index-ordered
//!   reducers in `device::pool` / `la::ops` are blessed.
//!
//! True data-flow tracking is out of reach for a lexer-level analyzer;
//! this module provides the conservative approximations the rules share:
//! per-file identification of hash-typed bindings and backwards
//! statement scans for reduction receivers. Findings are waivable like
//! everything else, so the over-approximation costs a reasoned waiver,
//! never a lie.

use std::collections::BTreeSet;

use crate::lexer::{Token, TokenKind};

/// Unordered container type names.
pub const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Iteration-order-visible methods on hash containers.
pub const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Reduction methods whose result depends on operand order for floats.
pub const REDUCE_METHODS: &[&str] = &["sum", "fold", "reduce"];

/// Identifiers bound or typed to a hash container anywhere in the token
/// stream: `x: HashMap<…>` (let ascriptions, fn params, struct fields)
/// and `x = HashMap::new()` / `let mut x = HashSet::with_capacity(…)`.
/// File-granular on purpose: a struct field declared `HashMap` in the
/// type definition taints `self.field` uses in every method of the file.
pub fn hash_idents(toks: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        let TokenKind::Ident(name) = &toks[i].kind else {
            continue;
        };
        if !HASH_TYPES.contains(&name.as_str()) {
            continue;
        }
        // Walk back over a `std :: collections ::` path prefix.
        let mut k = i;
        while k >= 3 {
            if toks[k - 1].is_punct(':') && toks[k - 2].is_punct(':') {
                if let TokenKind::Ident(_) = toks[k - 3].kind {
                    k -= 3;
                    continue;
                }
            }
            break;
        }
        // `ident = HashMap…` (binding) — the ident left of `=`.
        if k >= 2 && toks[k - 1].is_punct('=') {
            if let TokenKind::Ident(id) = &toks[k - 2].kind {
                out.insert(id.clone());
            }
        }
        // `ident : HashMap…` / `ident : &mut HashMap…` (ascription,
        // param, field) — scan back over type sigils to the `:`.
        let mut j = k;
        while j >= 1 {
            match &toks[j - 1].kind {
                TokenKind::Punct('&') | TokenKind::Punct('\'') | TokenKind::Lifetime => j -= 1,
                TokenKind::Ident(id) if id == "mut" => j -= 1,
                _ => break,
            }
        }
        if j >= 2
            && toks[j - 1].is_punct(':')
            && !toks.get(j.wrapping_sub(2)).is_some_and(|t| t.is_punct(':'))
        {
            if let TokenKind::Ident(id) = &toks[j - 2].kind {
                out.insert(id.clone());
            }
        }
    }
    out
}

/// Idents appearing in the receiver expression of the method call at
/// token index `dot` (the `.` before the method name): walks backwards
/// to the statement boundary (`;`, `{`, `}`, `=`, `,` at bracket depth
/// zero), collecting identifiers. Used to decide what a `.sum()` sums.
pub fn receiver_idents(toks: &[Token], dot: usize) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut depth = 0i64;
    let mut j = dot;
    while j > 0 {
        j -= 1;
        match &toks[j].kind {
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth += 1,
            TokenKind::Punct('(') | TokenKind::Punct('[') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokenKind::Punct(';')
            | TokenKind::Punct('{')
            | TokenKind::Punct('}')
            | TokenKind::Punct('=')
            | TokenKind::Punct(',')
                if depth == 0 =>
            {
                break;
            }
            TokenKind::Ident(id) => {
                out.insert(id.clone());
            }
            _ => {}
        }
        if dot - j > 64 {
            break; // bounded scan — statements this long are their own bug
        }
    }
    out
}

/// `true` when the token at `i` starts a `Type::now` path for a wall
/// clock type (`Instant::now`, `SystemTime::now`).
pub fn is_wallclock_now(toks: &[Token], i: usize) -> bool {
    let TokenKind::Ident(name) = &toks[i].kind else {
        return false;
    };
    (name == "Instant" || name == "SystemTime")
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn bindings_ascriptions_and_fields_are_found() {
        let src = concat!(
            "struct S { stash: HashMap<(usize, u64), Payload>, n: usize }\n",
            "fn f(map: &mut std::collections::HashMap<u32, f64>) {\n",
            "  let mut seen = HashSet::new();\n",
            "  let ordered: BTreeMap<u32, f64> = BTreeMap::new();\n",
            "}\n",
        );
        let ids = hash_idents(&lex(src).tokens);
        assert!(ids.contains("stash"));
        assert!(ids.contains("map"));
        assert!(ids.contains("seen"));
        assert!(!ids.contains("ordered"));
        assert!(!ids.contains("n"));
    }

    #[test]
    fn receiver_scan_stops_at_statement_boundary() {
        let src = "let a = parts.iter().map(|x| x * 2.0).sum();";
        let toks = lex(src).tokens;
        let dot = toks.iter().position(|t| t.is_ident("sum")).unwrap() - 1;
        let ids = receiver_idents(&toks, dot);
        assert!(ids.contains("parts"));
        assert!(!ids.contains("a"), "{ids:?}");
    }

    #[test]
    fn wallclock_paths_detected() {
        let toks = lex("let t = Instant::now(); let s = SystemTime::now();").tokens;
        let hits = (0..toks.len())
            .filter(|&i| is_wallclock_now(&toks, i))
            .count();
        assert_eq!(hits, 2);
    }
}
