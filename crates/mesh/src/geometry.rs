//! Element node coordinates and metric (geometric) factors.
//!
//! Every matrix-free SEM operator needs, at each GLL node of each element:
//! the physical coordinates, the Jacobian of the reference→physical map,
//! the inverse-map derivatives `∂rᵢ/∂xⱼ`, the diagonal mass `B = w³·J` and
//! the six symmetric stiffness metrics
//! `G_ij = w³·J·Σ_k (∂rᵢ/∂x_k)(∂rⱼ/∂x_k)`.
//!
//! Straight-sided elements use the trilinear map from their 8 corners;
//! elements carrying a [`Curve::CylinderSide`] descriptor get their
//! cross-section corrected by a 2-D Gordon-Hall (transfinite) map with an
//! exact circular-arc edge, which is what makes the cylindrical RBC cell's
//! side wall geometrically exact.

use crate::topology::vertex_lattice;
use crate::{Curve, HexMesh};
use rbx_basis::{deriv_matrix, deriv_x, deriv_y, deriv_z, gll, DMat};

/// Physical coordinates of all `(p+1)³` GLL nodes of element `e`.
///
/// Returns `[x, y, z]` arrays in the standard `i + n(j + nk)` layout.
pub fn element_nodes(mesh: &HexMesh, e: usize, p: usize) -> [Vec<f64>; 3] {
    let q = gll(p + 1);
    let n = p + 1;
    let corners = mesh.corners(e);
    let mut coords = [
        vec![0.0; n * n * n],
        vec![0.0; n * n * n],
        vec![0.0; n * n * n],
    ];

    // Trilinear base map.
    for k in 0..n {
        let t = q.points[k];
        for j in 0..n {
            let s = q.points[j];
            for i in 0..n {
                let r = q.points[i];
                let idx = i + n * (j + n * k);
                let mut pt = [0.0; 3];
                for v in 0..8 {
                    let (vi, vj, vk) = vertex_lattice(v, 1);
                    let shape = half(r, vi) * half(s, vj) * half(t, vk);
                    for d in 0..3 {
                        pt[d] += shape * corners[v][d];
                    }
                }
                coords[0][idx] = pt[0];
                coords[1][idx] = pt[1];
                coords[2][idx] = pt[2];
            }
        }
    }

    // Curved side-wall correction (generator convention: face 3 = +y ≙ s=+1
    // is the radially outward face).
    if let Some(Curve::CylinderSide { radius }) = mesh.curves.get(&(e, 3)).copied() {
        apply_cylinder_side(&mut coords, &corners, &q.points, radius);
    }
    coords
}

/// 1-D linear shape: `(1∓r)/2`.
#[inline]
fn half(r: f64, hi: usize) -> f64 {
    if hi == 0 {
        0.5 * (1.0 - r)
    } else {
        0.5 * (1.0 + r)
    }
}

/// Replace the (x, y) cross-section by a Gordon-Hall map whose s=+1 edge is
/// the exact circular arc of the given radius; z stays trilinear.
fn apply_cylinder_side(
    coords: &mut [Vec<f64>; 3],
    corners: &[[f64; 3]; 8],
    pts: &[f64],
    radius: f64,
) {
    let n = pts.len();
    for k in 0..n {
        let t = pts[k];
        // Corners of this t-layer's quad, interpolated linearly in z between
        // the bottom (v0..v3) and top (v4..v7) corner rings.
        let layer = |v_bot: usize, v_top: usize| -> [f64; 2] {
            let wb = 0.5 * (1.0 - t);
            let wt = 0.5 * (1.0 + t);
            [
                wb * corners[v_bot][0] + wt * corners[v_top][0],
                wb * corners[v_bot][1] + wt * corners[v_top][1],
            ]
        };
        // (r, s) corner convention: A(-1,-1), B(+1,-1), C(+1,+1), D(-1,+1).
        let a = layer(0, 4);
        let b = layer(1, 5);
        let c = layer(3, 7);
        let d = layer(2, 6);
        debug_assert!(
            ((c[0] * c[0] + c[1] * c[1]).sqrt() - radius).abs() < 1e-9 * radius.max(1.0),
            "curved-face corner is not on the cylinder"
        );
        let phi_d = d[1].atan2(d[0]);
        let mut dphi = c[1].atan2(c[0]) - phi_d;
        // Shortest arc.
        if dphi > std::f64::consts::PI {
            dphi -= 2.0 * std::f64::consts::PI;
        } else if dphi < -std::f64::consts::PI {
            dphi += 2.0 * std::f64::consts::PI;
        }
        let arc = |r: f64| -> [f64; 2] {
            let phi = phi_d + 0.5 * (r + 1.0) * dphi;
            [radius * phi.cos(), radius * phi.sin()]
        };
        let lerp2 = |p0: [f64; 2], p1: [f64; 2], u: f64| -> [f64; 2] {
            let w0 = 0.5 * (1.0 - u);
            let w1 = 0.5 * (1.0 + u);
            [w0 * p0[0] + w1 * p1[0], w0 * p0[1] + w1 * p1[1]]
        };
        for j in 0..n {
            let s = pts[j];
            for i in 0..n {
                let r = pts[i];
                // Edge terms.
                let eb = lerp2(a, b, r); // s = -1, straight
                let et = arc(r); // s = +1, circular
                let el = lerp2(a, d, s); // r = -1, straight
                let er = lerp2(b, c, s); // r = +1, straight
                let mut x = [0.0; 2];
                for dim in 0..2 {
                    let edges = 0.5 * (1.0 - s) * eb[dim]
                        + 0.5 * (1.0 + s) * et[dim]
                        + 0.5 * (1.0 - r) * el[dim]
                        + 0.5 * (1.0 + r) * er[dim];
                    let bilinear = 0.25 * (1.0 - r) * (1.0 - s) * a[dim]
                        + 0.25 * (1.0 + r) * (1.0 - s) * b[dim]
                        + 0.25 * (1.0 + r) * (1.0 + s) * c[dim]
                        + 0.25 * (1.0 - r) * (1.0 + s) * d[dim];
                    x[dim] = edges - bilinear;
                }
                let idx = i + n * (j + n * k);
                coords[0][idx] = x[0];
                coords[1][idx] = x[1];
            }
        }
    }
}

/// All metric factors for a mesh at polynomial degree `p`, flattened as
/// `[element-major][node]` arrays of length `nelv · (p+1)³`.
#[derive(Debug, Clone)]
pub struct GeomFactors {
    /// Polynomial degree.
    pub p: usize,
    /// Nodes per direction, `p + 1`.
    pub nx1: usize,
    /// Number of local elements.
    pub nelv: usize,
    /// GLL points on the reference interval.
    pub points: Vec<f64>,
    /// GLL weights on the reference interval.
    pub weights: Vec<f64>,
    /// 1-D collocation derivative matrix.
    pub d: DMat,
    /// Physical node coordinates `[x, y, z]`.
    pub coords: [Vec<f64>; 3],
    /// Jacobian determinant at each node.
    pub jac: Vec<f64>,
    /// Diagonal mass `B = w_i w_j w_k · J`.
    pub mass: Vec<f64>,
    /// Stiffness metrics `[G11, G12, G13, G22, G23, G33]` (weights included).
    pub g: [Vec<f64>; 6],
    /// Inverse-map derivatives `[rx, ry, rz, sx, sy, sz, tx, ty, tz]`
    /// (no quadrature weights).
    pub dr: [Vec<f64>; 9],
    /// Minimum Jacobian across all nodes (must be positive).
    pub min_jac: f64,
}

impl GeomFactors {
    /// Compute coordinates and metrics for every element of `mesh` at
    /// degree `p`.
    ///
    /// # Panics
    /// Panics if any element has a non-positive Jacobian (inverted or
    /// degenerate geometry).
    pub fn new(mesh: &HexMesh, p: usize) -> Self {
        let q = gll(p + 1);
        let d = deriv_matrix(&q.points);
        let n = p + 1;
        let nn = n * n * n;
        let nelv = mesh.num_elements();
        let total = nelv * nn;

        let mut coords = [vec![0.0; total], vec![0.0; total], vec![0.0; total]];
        for e in 0..nelv {
            let c = element_nodes(mesh, e, p);
            for dim in 0..3 {
                coords[dim][e * nn..(e + 1) * nn].copy_from_slice(&c[dim]);
            }
        }

        let mut jac = vec![0.0; total];
        let mut mass = vec![0.0; total];
        let mut g: [Vec<f64>; 6] = std::array::from_fn(|_| vec![0.0; total]);
        let mut dr: [Vec<f64>; 9] = std::array::from_fn(|_| vec![0.0; total]);
        let mut min_jac = f64::MAX;

        // Per-element derivative buffers.
        let mut dx = [vec![0.0; nn], vec![0.0; nn], vec![0.0; nn]]; // x_r, x_s, x_t
        let mut dy = [vec![0.0; nn], vec![0.0; nn], vec![0.0; nn]];
        let mut dz = [vec![0.0; nn], vec![0.0; nn], vec![0.0; nn]];

        for e in 0..nelv {
            let xs = &coords[0][e * nn..(e + 1) * nn];
            let ys = &coords[1][e * nn..(e + 1) * nn];
            let zs = &coords[2][e * nn..(e + 1) * nn];
            deriv_x(&d, xs, &mut dx[0], n);
            deriv_y(&d, xs, &mut dx[1], n);
            deriv_z(&d, xs, &mut dx[2], n);
            deriv_x(&d, ys, &mut dy[0], n);
            deriv_y(&d, ys, &mut dy[1], n);
            deriv_z(&d, ys, &mut dy[2], n);
            deriv_x(&d, zs, &mut dz[0], n);
            deriv_y(&d, zs, &mut dz[1], n);
            deriv_z(&d, zs, &mut dz[2], n);

            for idx in 0..nn {
                let (i, jj, k) = (idx % n, (idx / n) % n, idx / (n * n));
                let w3 = q.weights[i] * q.weights[jj] * q.weights[k];
                // Forward Jacobian matrix rows: ∂(x,y,z)/∂(r,s,t).
                let xr = dx[0][idx];
                let xs_ = dx[1][idx];
                let xt = dx[2][idx];
                let yr = dy[0][idx];
                let ys_ = dy[1][idx];
                let yt = dy[2][idx];
                let zr = dz[0][idx];
                let zs_ = dz[1][idx];
                let zt = dz[2][idx];
                let j_det = xr * (ys_ * zt - yt * zs_) - xs_ * (yr * zt - yt * zr)
                    + xt * (yr * zs_ - ys_ * zr);
                assert!(
                    j_det > 0.0,
                    "non-positive Jacobian {j_det} in element {e} node {idx}"
                );
                min_jac = min_jac.min(j_det);
                let gi = e * nn + idx;
                jac[gi] = j_det;
                mass[gi] = w3 * j_det;
                // Inverse map (cofactor formula): ∂(r,s,t)/∂(x,y,z).
                let inv = 1.0 / j_det;
                let rx = (ys_ * zt - yt * zs_) * inv;
                let ry = (xt * zs_ - xs_ * zt) * inv;
                let rz = (xs_ * yt - xt * ys_) * inv;
                let sx = (yt * zr - yr * zt) * inv;
                let sy = (xr * zt - xt * zr) * inv;
                let sz = (xt * yr - xr * yt) * inv;
                let tx = (yr * zs_ - ys_ * zr) * inv;
                let ty = (xs_ * zr - xr * zs_) * inv;
                let tz = (xr * ys_ - xs_ * yr) * inv;
                dr[0][gi] = rx;
                dr[1][gi] = ry;
                dr[2][gi] = rz;
                dr[3][gi] = sx;
                dr[4][gi] = sy;
                dr[5][gi] = sz;
                dr[6][gi] = tx;
                dr[7][gi] = ty;
                dr[8][gi] = tz;
                let wj = w3 * j_det;
                g[0][gi] = wj * (rx * rx + ry * ry + rz * rz);
                g[1][gi] = wj * (rx * sx + ry * sy + rz * sz);
                g[2][gi] = wj * (rx * tx + ry * ty + rz * tz);
                g[3][gi] = wj * (sx * sx + sy * sy + sz * sz);
                g[4][gi] = wj * (sx * tx + sy * ty + sz * tz);
                g[5][gi] = wj * (tx * tx + ty * ty + tz * tz);
            }
        }

        Self {
            p,
            nx1: n,
            nelv,
            points: q.points,
            weights: q.weights,
            d,
            coords,
            jac,
            mass,
            g,
            dr,
            min_jac,
        }
    }

    /// Nodes per element, `(p+1)³`.
    pub fn nodes_per_element(&self) -> usize {
        self.nx1 * self.nx1 * self.nx1
    }

    /// Total local nodes, `nelv · (p+1)³`.
    pub fn total_nodes(&self) -> usize {
        self.nelv * self.nodes_per_element()
    }

    /// Total volume: `Σ B`.
    pub fn volume(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Surface quadrature weights (area element × GLL weights) for face `f`
    /// of element `e`, as an `nx1 × nx1` array in face-local `(a, b)` order.
    pub fn face_area_weights(&self, e: usize, f: usize) -> Vec<f64> {
        use crate::topology::face_to_volume;
        let n = self.nx1;
        let nn = n * n * n;
        let base = e * nn;
        // Tangent vectors along the two face-local directions from the
        // reference derivatives of the coordinate fields.
        let mut out = vec![0.0; n * n];
        // Reference derivative arrays for this element.
        let mut dxa = vec![0.0; nn];
        let mut dxb = vec![0.0; nn];
        let mut ta = [vec![0.0; n * n], vec![0.0; n * n], vec![0.0; n * n]];
        let mut tb = [vec![0.0; n * n], vec![0.0; n * n], vec![0.0; n * n]];
        for dim in 0..3 {
            let c = &self.coords[dim][base..base + nn];
            // Face-local direction "a" and "b" map to reference directions
            // depending on the face (see `face_to_volume`).
            match f {
                0 | 1 => {
                    deriv_y(&self.d, c, &mut dxa, n);
                    deriv_z(&self.d, c, &mut dxb, n);
                }
                2 | 3 => {
                    deriv_x(&self.d, c, &mut dxa, n);
                    deriv_z(&self.d, c, &mut dxb, n);
                }
                4 | 5 => {
                    deriv_x(&self.d, c, &mut dxa, n);
                    deriv_y(&self.d, c, &mut dxb, n);
                }
                _ => panic!("face index {f} out of range"),
            }
            for a in 0..n {
                for b in 0..n {
                    let (i, j, k) = face_to_volume(f, a, b, self.p);
                    let idx = i + n * (j + n * k);
                    ta[dim][a + n * b] = dxa[idx];
                    tb[dim][a + n * b] = dxb[idx];
                }
            }
        }
        for a in 0..n {
            for b in 0..n {
                let q = a + n * b;
                let cx = ta[1][q] * tb[2][q] - ta[2][q] * tb[1][q];
                let cy = ta[2][q] * tb[0][q] - ta[0][q] * tb[2][q];
                let cz = ta[0][q] * tb[1][q] - ta[1][q] * tb[0][q];
                let area = (cx * cx + cy * cy + cz * cz).sqrt();
                out[q] = area * self.weights[a] * self.weights[b];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::box_mesh;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn box_volume_exact() {
        let m = box_mesh(3, 2, 2, [0., 3.], [0., 4.], [0., 5.], false, false);
        let geom = GeomFactors::new(&m, 4);
        assert_close(geom.volume(), 60.0, 1e-10);
        assert!(geom.min_jac > 0.0);
    }

    #[test]
    fn box_jacobian_constant_per_element() {
        // Affine elements have constant Jacobian = product of half-extents.
        let m = box_mesh(2, 2, 2, [0., 2.], [0., 2.], [0., 2.], false, false);
        let geom = GeomFactors::new(&m, 3);
        // Each element is 1×1×1 → J = (1/2)³.
        for &j in &geom.jac {
            assert_close(j, 0.125, 1e-12);
        }
    }

    #[test]
    fn node_coordinates_cover_range() {
        let m = box_mesh(2, 1, 1, [0., 2.], [0., 1.], [0., 1.], false, false);
        let geom = GeomFactors::new(&m, 5);
        let xmin = geom.coords[0].iter().cloned().fold(f64::MAX, f64::min);
        let xmax = geom.coords[0].iter().cloned().fold(f64::MIN, f64::max);
        assert_close(xmin, 0.0, 1e-13);
        assert_close(xmax, 2.0, 1e-13);
    }

    #[test]
    fn inverse_metrics_of_affine_box() {
        // For a box element of extent h the inverse metric is 2/h on the
        // diagonal and 0 off-diagonal.
        let m = box_mesh(1, 1, 1, [0., 2.], [0., 4.], [0., 8.], false, false);
        let geom = GeomFactors::new(&m, 3);
        for idx in 0..geom.total_nodes() {
            assert_close(geom.dr[0][idx], 1.0, 1e-12); // rx = 2/2
            assert_close(geom.dr[4][idx], 0.5, 1e-12); // sy = 2/4
            assert_close(geom.dr[8][idx], 0.25, 1e-12); // tz = 2/8
            assert_close(geom.dr[1][idx], 0.0, 1e-12);
            assert_close(geom.dr[3][idx], 0.0, 1e-12);
        }
    }

    #[test]
    fn face_area_weights_sum_to_face_area() {
        let m = box_mesh(1, 1, 1, [0., 2.], [0., 3.], [0., 5.], false, false);
        let geom = GeomFactors::new(&m, 6);
        let areas = [15.0, 15.0, 10.0, 10.0, 6.0, 6.0]; // yz, yz, xz, xz, xy, xy
        for f in 0..6 {
            let w = geom.face_area_weights(0, f);
            let total: f64 = w.iter().sum();
            assert_close(total, areas[f], 1e-10);
        }
    }

    #[test]
    fn mass_matches_weights_times_jacobian() {
        let m = box_mesh(1, 1, 1, [0., 1.], [0., 1.], [0., 1.], false, false);
        let geom = GeomFactors::new(&m, 4);
        let n = geom.nx1;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let idx = i + n * (j + n * k);
                    let expect =
                        geom.weights[i] * geom.weights[j] * geom.weights[k] * geom.jac[idx];
                    assert_close(geom.mass[idx], expect, 1e-14);
                }
            }
        }
    }
}
