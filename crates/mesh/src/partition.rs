//! Element partitioning across ranks.
//!
//! The production code distributes elements over MPI ranks; we provide the
//! same two strategies Nek-family codes commonly use at setup: a trivial
//! linear (block) split, and recursive coordinate bisection (RCB) on the
//! element centroids, which keeps partitions spatially compact and thereby
//! minimizes gather-scatter surface traffic.

use crate::HexMesh;

/// Assign `nelem` elements to `nparts` contiguous blocks of near-equal
/// size. Returns the part id per element.
pub fn partition_linear(nelem: usize, nparts: usize) -> Vec<usize> {
    assert!(nparts >= 1);
    let mut out = vec![0; nelem];
    let base = nelem / nparts;
    let rem = nelem % nparts;
    let mut e = 0;
    for part in 0..nparts {
        let count = base + usize::from(part < rem);
        for _ in 0..count {
            if e < nelem {
                out[e] = part;
                e += 1;
            }
        }
    }
    out
}

/// Recursive coordinate bisection on element centroids. `nparts` may be
/// any positive integer (not just a power of two); the recursion splits
/// proportionally. Returns the part id per element.
pub fn partition_rcb(mesh: &HexMesh, nparts: usize) -> Vec<usize> {
    assert!(nparts >= 1);
    let centroids: Vec<[f64; 3]> = (0..mesh.num_elements()).map(|e| mesh.centroid(e)).collect();
    let mut part = vec![0usize; centroids.len()];
    let mut order: Vec<usize> = (0..centroids.len()).collect();
    rcb_recurse(&centroids, &mut order, 0, nparts, &mut part);
    part
}

fn rcb_recurse(
    centroids: &[[f64; 3]],
    elems: &mut [usize],
    part_base: usize,
    nparts: usize,
    out: &mut [usize],
) {
    if nparts == 1 || elems.is_empty() {
        for &e in elems.iter() {
            out[e] = part_base;
        }
        return;
    }
    // Split along the direction of largest centroid extent.
    let mut lo = [f64::MAX; 3];
    let mut hi = [f64::MIN; 3];
    for &e in elems.iter() {
        for d in 0..3 {
            lo[d] = lo[d].min(centroids[e][d]);
            hi[d] = hi[d].max(centroids[e][d]);
        }
    }
    let dir = (0..3)
        .max_by(|&a, &b| {
            (hi[a] - lo[a])
                .partial_cmp(&(hi[b] - lo[b]))
                .expect("non-finite centroid")
        })
        .expect("3 directions");
    elems.sort_by(|&a, &b| {
        centroids[a][dir]
            .partial_cmp(&centroids[b][dir])
            .expect("non-finite centroid")
    });
    let left_parts = nparts / 2;
    let right_parts = nparts - left_parts;
    // Proportional element split so any nparts is balanced.
    let cut = elems.len() * left_parts / nparts;
    let (left, right) = elems.split_at_mut(cut);
    rcb_recurse(centroids, left, part_base, left_parts, out);
    rcb_recurse(centroids, right, part_base + left_parts, right_parts, out);
}

/// Per-part element lists from a part-id vector.
pub fn part_elements(part: &[usize], nparts: usize) -> Vec<Vec<usize>> {
    let mut lists = vec![Vec::new(); nparts];
    for (e, &p) in part.iter().enumerate() {
        lists[p].push(e);
    }
    lists
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::box_mesh;

    #[test]
    fn linear_partition_balanced() {
        let p = partition_linear(10, 3);
        let counts: Vec<usize> = (0..3)
            .map(|k| p.iter().filter(|&&x| x == k).count())
            .collect();
        assert_eq!(counts, vec![4, 3, 3]);
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn linear_partition_single_part() {
        let p = partition_linear(5, 1);
        assert!(p.iter().all(|&x| x == 0));
    }

    #[test]
    fn rcb_balanced_and_complete() {
        let mesh = box_mesh(4, 4, 4, [0., 1.], [0., 1.], [0., 1.], false, false);
        for nparts in [2usize, 3, 4, 7, 8] {
            let p = partition_rcb(&mesh, nparts);
            assert_eq!(p.len(), 64);
            let lists = part_elements(&p, nparts);
            let total: usize = lists.iter().map(|l| l.len()).sum();
            assert_eq!(total, 64);
            let min = lists.iter().map(|l| l.len()).min().unwrap();
            let max = lists.iter().map(|l| l.len()).max().unwrap();
            assert!(
                max - min <= 64 / nparts,
                "imbalance {min}..{max} for {nparts} parts"
            );
            assert!(min > 0, "empty part with {nparts} parts");
        }
    }

    #[test]
    fn rcb_partitions_spatially_compact() {
        // With 2 parts on an elongated box the cut must be the long axis:
        // all part-0 centroids left of all part-1 centroids in x.
        let mesh = box_mesh(8, 2, 2, [0., 8.], [0., 1.], [0., 1.], false, false);
        let p = partition_rcb(&mesh, 2);
        let max0 = (0..mesh.num_elements())
            .filter(|&e| p[e] == 0)
            .map(|e| mesh.centroid(e)[0])
            .fold(f64::MIN, f64::max);
        let min1 = (0..mesh.num_elements())
            .filter(|&e| p[e] == 1)
            .map(|e| mesh.centroid(e)[0])
            .fold(f64::MAX, f64::min);
        assert!(max0 < min1, "parts overlap in x: {max0} vs {min1}");
    }
}
