//! Structured box mesh generator.
//!
//! Boxes serve the validation and unit-test cases (Poisson convergence,
//! advected scalars, small RBC boxes). Periodicity in x and/or y is
//! realized by vertex identification, so downstream gather-scatter and
//! operators handle periodic problems with no special cases.

use crate::{BoundaryTag, HexMesh};

/// Generate an `nx × ny × nz` element box on `[x0,x1]×[y0,y1]×[z0,z1]`.
///
/// Boundary tags: bottom (`-z`) is [`BoundaryTag::HotWall`], top is
/// [`BoundaryTag::ColdWall`], side walls are [`BoundaryTag::Wall`] unless
/// that direction is periodic. Callers with different physics overwrite
/// `face_tags` after generation.
///
/// # Panics
/// Panics if any count is zero, if a periodic direction has fewer than two
/// elements, or if a range is degenerate.
#[allow(clippy::too_many_arguments)]
pub fn box_mesh(
    nx: usize,
    ny: usize,
    nz: usize,
    x_range: [f64; 2],
    y_range: [f64; 2],
    z_range: [f64; 2],
    periodic_x: bool,
    periodic_y: bool,
) -> HexMesh {
    box_mesh_graded(
        nx, ny, nz, x_range, y_range, z_range, periodic_x, periodic_y, 0.0,
    )
}

/// Like [`box_mesh`] but with tanh grading of the z spacing toward both
/// walls; `beta = 0` gives uniform spacing, larger `beta` clusters more
/// points near `z0` and `z1` (boundary-layer refinement, paper §6).
#[allow(clippy::too_many_arguments)]
pub fn box_mesh_graded(
    nx: usize,
    ny: usize,
    nz: usize,
    x_range: [f64; 2],
    y_range: [f64; 2],
    z_range: [f64; 2],
    periodic_x: bool,
    periodic_y: bool,
    beta: f64,
) -> HexMesh {
    assert!(
        nx > 0 && ny > 0 && nz > 0,
        "element counts must be positive"
    );
    assert!(
        !periodic_x || nx >= 2,
        "periodic x needs at least 2 elements"
    );
    assert!(
        !periodic_y || ny >= 2,
        "periodic y needs at least 2 elements"
    );
    assert!(x_range[1] > x_range[0] && y_range[1] > y_range[0] && z_range[1] > z_range[0]);

    // Number of distinct vertex planes per direction.
    let nvx = if periodic_x { nx } else { nx + 1 };
    let nvy = if periodic_y { ny } else { ny + 1 };
    let nvz = nz + 1;

    let xs: Vec<f64> = (0..nvx)
        .map(|i| lerp(x_range, i as f64 / nx as f64))
        .collect();
    let ys: Vec<f64> = (0..nvy)
        .map(|j| lerp(y_range, j as f64 / ny as f64))
        .collect();
    let zs: Vec<f64> = (0..nvz)
        .map(|k| lerp(z_range, grade(k as f64 / nz as f64, beta)))
        .collect();

    let vid = |i: usize, j: usize, k: usize| -> usize {
        let iw = i % nvx;
        let jw = j % nvy;
        iw + nvx * (jw + nvy * k)
    };

    let mut vertices = vec![[0.0; 3]; nvx * nvy * nvz];
    for k in 0..nvz {
        for j in 0..nvy {
            for i in 0..nvx {
                vertices[vid(i, j, k)] = [xs[i], ys[j], zs[k]];
            }
        }
    }

    let mut elems = Vec::with_capacity(nx * ny * nz);
    let mut face_tags = Vec::with_capacity(nx * ny * nz);
    for k in 0..nz {
        for j in 0..ny {
            for i in 0..nx {
                elems.push([
                    vid(i, j, k),
                    vid(i + 1, j, k),
                    vid(i, j + 1, k),
                    vid(i + 1, j + 1, k),
                    vid(i, j, k + 1),
                    vid(i + 1, j, k + 1),
                    vid(i, j + 1, k + 1),
                    vid(i + 1, j + 1, k + 1),
                ]);
                let mut tags = [BoundaryTag::None; 6];
                if !periodic_x {
                    if i == 0 {
                        tags[0] = BoundaryTag::Wall;
                    }
                    if i == nx - 1 {
                        tags[1] = BoundaryTag::Wall;
                    }
                }
                if !periodic_y {
                    if j == 0 {
                        tags[2] = BoundaryTag::Wall;
                    }
                    if j == ny - 1 {
                        tags[3] = BoundaryTag::Wall;
                    }
                }
                if k == 0 {
                    tags[4] = BoundaryTag::HotWall;
                }
                if k == nz - 1 {
                    tags[5] = BoundaryTag::ColdWall;
                }
                face_tags.push(tags);
            }
        }
    }

    HexMesh {
        vertices,
        elems,
        face_tags,
        curves: Default::default(),
    }
}

fn lerp(range: [f64; 2], t: f64) -> f64 {
    range[0] + (range[1] - range[0]) * t
}

/// Symmetric tanh grading of `t ∈ [0, 1]`: clusters toward both endpoints.
fn grade(t: f64, beta: f64) -> f64 {
    if beta <= 0.0 {
        return t;
    }
    // Map through tanh stretched about the midpoint.
    let s = (beta * (2.0 * t - 1.0)).tanh() / beta.tanh();
    0.5 * (1.0 + s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoundaryTag;

    #[test]
    fn counts_and_validity() {
        let m = box_mesh(3, 2, 4, [0., 3.], [0., 2.], [0., 1.], false, false);
        assert_eq!(m.num_elements(), 24);
        assert_eq!(m.num_vertices(), 4 * 3 * 5);
        assert!(m.validate().is_empty());
    }

    #[test]
    fn boundary_tags_on_outer_faces_only() {
        let m = box_mesh(2, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let mut wall = 0;
        let mut hot = 0;
        let mut cold = 0;
        let mut none = 0;
        for tags in &m.face_tags {
            for t in tags {
                match t {
                    BoundaryTag::Wall => wall += 1,
                    BoundaryTag::HotWall => hot += 1,
                    BoundaryTag::ColdWall => cold += 1,
                    BoundaryTag::None => none += 1,
                }
            }
        }
        // 8 elements × 6 faces = 48; outer surface 6 sides × 4 faces = 24.
        assert_eq!(wall, 16);
        assert_eq!(hot, 4);
        assert_eq!(cold, 4);
        assert_eq!(none, 24);
    }

    #[test]
    fn periodic_x_identifies_vertices() {
        let np = box_mesh(4, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let p = box_mesh(4, 2, 2, [0., 1.], [0., 1.], [0., 1.], true, false);
        assert_eq!(p.num_elements(), np.num_elements());
        // One vertex plane fewer in x.
        assert_eq!(p.num_vertices(), np.num_vertices() - 3 * 3);
        assert!(p.validate().is_empty());
        // Last element column wraps to the first vertex plane.
        let last_col_elem = 3; // i = 3, j = 0, k = 0
        let first_col_elem = 0;
        assert_eq!(p.elems[last_col_elem][1], p.elems[first_col_elem][0]);
        // No x-wall tags anywhere.
        for tags in &p.face_tags {
            assert_eq!(tags[0], BoundaryTag::None);
            assert_eq!(tags[1], BoundaryTag::None);
        }
    }

    #[test]
    fn grading_clusters_near_walls() {
        let uniform = box_mesh_graded(1, 1, 8, [0., 1.], [0., 1.], [0., 1.], false, false, 0.0);
        let graded = box_mesh_graded(1, 1, 8, [0., 1.], [0., 1.], [0., 1.], false, false, 2.0);
        // First element height must shrink under grading.
        let h_uniform = uniform.vertices[uniform.elems[0][4]][2];
        let h_graded = graded.vertices[graded.elems[0][4]][2];
        assert!(h_graded < h_uniform);
        // Endpoints preserved.
        let zmax = graded
            .vertices
            .iter()
            .map(|v| v[2])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((zmax - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grading_symmetric() {
        let m = box_mesh_graded(1, 1, 6, [0., 1.], [0., 1.], [0., 1.], false, false, 1.5);
        let mut zs: Vec<f64> = m.vertices.iter().map(|v| v[2]).collect();
        zs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        zs.dedup_by(|a, b| (*a - *b).abs() < 1e-13);
        for (lo, hi) in zs.iter().zip(zs.iter().rev()) {
            assert!((lo + hi - 1.0).abs() < 1e-12, "asymmetric grading");
        }
    }

    #[test]
    #[should_panic(expected = "periodic x needs")]
    fn periodic_single_element_rejected() {
        let _ = box_mesh(1, 1, 1, [0., 1.], [0., 1.], [0., 1.], true, false);
    }
}
