// Index-style loops mirror the tensor/lattice math throughout; the
// iterator forms clippy suggests would obscure the stencil structure.
#![allow(clippy::needless_range_loop)]

//! # rbx-mesh — hexahedral spectral-element meshes
//!
//! Mesh data model and generators for the geometries the paper simulates:
//! boxes (validation cases, optionally periodic) and the cylindrical
//! Rayleigh-Bénard cell with curved side walls and boundary-layer-refined
//! wall spacing (paper §6: "the mesh is designed carefully to get an
//! adequate refinement in the near-wall regions").
//!
//! The mesh is pure topology + geometry: element→vertex connectivity,
//! boundary tags per element face, and curvature descriptors. Node
//! coordinates for a given polynomial degree and all metric factors needed
//! by the matrix-free operators are computed in [`geometry`].

pub mod cylinder;
pub mod generators;
pub mod geometry;
pub mod partition;
pub mod quality;
pub mod topology;

pub use cylinder::cylinder_mesh;
pub use generators::box_mesh;
pub use geometry::{element_nodes, GeomFactors};
pub use partition::{partition_linear, partition_rcb};
pub use quality::{element_quality, quality_summary, ElementQuality};
pub use topology::{HEX_EDGES, HEX_FACES};

/// Boundary condition tag attached to an element face.
///
/// Interpretation is up to the solver; for the RBC cases: `Wall` is no-slip
/// adiabatic, `HotWall`/`ColdWall` are no-slip isothermal (T = ±0.5 in the
/// paper's non-dimensionalization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BoundaryTag {
    /// Interior face (shared with a neighbouring element) — no condition.
    #[default]
    None,
    /// No-slip, adiabatic wall.
    Wall,
    /// No-slip wall held at the hot temperature (bottom plate).
    HotWall,
    /// No-slip wall held at the cold temperature (top plate).
    ColdWall,
}

/// Curvature descriptor for an element face.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Curve {
    /// Face lies on the side wall of a z-axis cylinder of this radius
    /// centred on the origin. By generator convention this is always local
    /// face 3 (+y in reference coordinates, the radially outward face).
    CylinderSide {
        /// Cylinder radius.
        radius: f64,
    },
}

/// A conforming, unstructured hexahedral mesh.
///
/// Local vertex ordering follows the unit-cube convention
/// `v(i,j,k) = i + 2j + 4k` with `i, j, k ∈ {0, 1}`:
///
/// ```text
///     6-------7            z  y
///    /|      /|            | /
///   4-------5 |            |/
///   | 2-----|-3            +--- x
///   |/      |/
///   0-------1
/// ```
#[derive(Debug, Clone)]
pub struct HexMesh {
    /// Vertex coordinates.
    pub vertices: Vec<[f64; 3]>,
    /// Eight vertex ids per element in unit-cube order.
    pub elems: Vec<[usize; 8]>,
    /// Boundary tag per element face (face order: -x, +x, -y, +y, -z, +z).
    pub face_tags: Vec<[BoundaryTag; 6]>,
    /// Curvature descriptors, keyed by `(element, face)`.
    // BTreeMap, not HashMap: curve entries feed the mesh content hash
    // and restart manifests, so iteration order must be deterministic.
    pub curves: std::collections::BTreeMap<(usize, usize), Curve>,
}

impl HexMesh {
    /// Number of elements.
    pub fn num_elements(&self) -> usize {
        self.elems.len()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Coordinates of the 8 corners of element `e` in local order.
    pub fn corners(&self, e: usize) -> [[f64; 3]; 8] {
        let mut c = [[0.0; 3]; 8];
        for (slot, &v) in self.elems[e].iter().enumerate() {
            c[slot] = self.vertices[v];
        }
        c
    }

    /// Centroid of element `e` (mean of corners).
    pub fn centroid(&self, e: usize) -> [f64; 3] {
        let c = self.corners(e);
        let mut out = [0.0; 3];
        for corner in &c {
            for d in 0..3 {
                out[d] += corner[d] / 8.0;
            }
        }
        out
    }

    /// Global vertex ids of face `f` of element `e`, in cyclic order.
    pub fn face_vertices(&self, e: usize, f: usize) -> [usize; 4] {
        let mut out = [0; 4];
        for (slot, &local) in topology::HEX_FACES[f].iter().enumerate() {
            out[slot] = self.elems[e][local];
        }
        out
    }

    /// Validate basic invariants: vertex indices in range, no degenerate
    /// elements, curvature only on the conventional face. Returns a list of
    /// human-readable problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.face_tags.len() != self.elems.len() {
            problems.push(format!(
                "face_tags length {} != element count {}",
                self.face_tags.len(),
                self.elems.len()
            ));
        }
        for (e, verts) in self.elems.iter().enumerate() {
            for &v in verts {
                if v >= self.vertices.len() {
                    problems.push(format!("element {e}: vertex id {v} out of range"));
                }
            }
            let mut sorted = *verts;
            sorted.sort_unstable();
            if sorted.windows(2).any(|w| w[0] == w[1]) {
                problems.push(format!("element {e}: repeated vertex"));
            }
        }
        for &(e, f) in self.curves.keys() {
            if e >= self.elems.len() || f >= 6 {
                problems.push(format!("curve on invalid (elem, face) = ({e}, {f})"));
            } else if f != 3 {
                problems.push(format!(
                    "element {e}: curved face {f}, generators only curve face 3"
                ));
            }
        }
        problems
    }

    /// Extract the sub-mesh containing only `elems_keep` (sorted global
    /// element ids), remapping vertices to a compact local numbering.
    pub fn extract(&self, elems_keep: &[usize]) -> HexMesh {
        let mut vert_map = std::collections::HashMap::new();
        let mut vertices = Vec::new();
        let mut elems = Vec::new();
        let mut face_tags = Vec::new();
        let mut curves = std::collections::BTreeMap::new();
        for (local_e, &ge) in elems_keep.iter().enumerate() {
            let mut new_elem = [0usize; 8];
            for (slot, &gv) in self.elems[ge].iter().enumerate() {
                let nv = *vert_map.entry(gv).or_insert_with(|| {
                    vertices.push(self.vertices[gv]);
                    vertices.len() - 1
                });
                new_elem[slot] = nv;
            }
            elems.push(new_elem);
            face_tags.push(self.face_tags[ge]);
            for f in 0..6 {
                if let Some(&c) = self.curves.get(&(ge, f)) {
                    curves.insert((local_e, f), c);
                }
            }
        }
        HexMesh {
            vertices,
            elems,
            face_tags,
            curves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_cube() -> HexMesh {
        let vertices = vec![
            [0., 0., 0.],
            [1., 0., 0.],
            [0., 1., 0.],
            [1., 1., 0.],
            [0., 0., 1.],
            [1., 0., 1.],
            [0., 1., 1.],
            [1., 1., 1.],
        ];
        HexMesh {
            vertices,
            elems: vec![[0, 1, 2, 3, 4, 5, 6, 7]],
            face_tags: vec![[BoundaryTag::Wall; 6]],
            curves: Default::default(),
        }
    }

    #[test]
    fn unit_cube_valid() {
        let m = unit_cube();
        assert!(m.validate().is_empty());
        assert_eq!(m.num_elements(), 1);
        assert_eq!(m.num_vertices(), 8);
        assert_eq!(m.centroid(0), [0.5, 0.5, 0.5]);
    }

    #[test]
    fn degenerate_element_detected() {
        let mut m = unit_cube();
        m.elems[0][1] = 0; // repeated vertex
        assert!(!m.validate().is_empty());
    }

    #[test]
    fn out_of_range_vertex_detected() {
        let mut m = unit_cube();
        m.elems[0][7] = 99;
        assert!(!m.validate().is_empty());
    }

    #[test]
    fn face_vertices_cyclic() {
        let m = unit_cube();
        // Face 4 is -z: the bottom quad {0, 1, 3, 2}.
        let mut fv = m.face_vertices(0, 4);
        fv.sort_unstable();
        assert_eq!(fv, [0, 1, 2, 3]);
    }

    #[test]
    fn extract_remaps_vertices() {
        let m = generators::box_mesh(2, 1, 1, [0.0, 2.0], [0.0, 1.0], [0.0, 1.0], false, false);
        let sub = m.extract(&[1]);
        assert_eq!(sub.num_elements(), 1);
        assert_eq!(sub.num_vertices(), 8);
        assert!(sub.validate().is_empty());
        let c = sub.centroid(0);
        assert!((c[0] - 1.5).abs() < 1e-12);
    }
}
