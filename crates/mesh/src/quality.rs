//! Element quality metrics.
//!
//! Production meshes (the paper's carefully graded 108 M-element cylinder)
//! are validated before burning machine time: anisotropy affects the FDM
//! preconditioner's separable approximation, and Jacobian variation
//! measures element distortion from curvature. These diagnostics are
//! computed from the same metric factors the operators use.

use crate::geometry::GeomFactors;

/// Quality numbers for one element.
#[derive(Debug, Clone, Copy)]
pub struct ElementQuality {
    /// Max/min mean extent across the three reference directions (1 =
    /// perfectly isotropic).
    pub aspect_ratio: f64,
    /// Max/min Jacobian within the element (1 = affine).
    pub jacobian_ratio: f64,
    /// Mean extents per reference direction.
    pub extents: [f64; 3],
}

/// Compute quality metrics for all elements.
pub fn element_quality(geom: &GeomFactors) -> Vec<ElementQuality> {
    let n = geom.nx1;
    let nn = n * n * n;
    let mut out = Vec::with_capacity(geom.nelv);
    for e in 0..geom.nelv {
        let base = e * nn;
        let idx = |i: usize, j: usize, k: usize| base + i + n * (j + n * k);
        let dist = |a: usize, b: usize| -> f64 {
            let dx = geom.coords[0][a] - geom.coords[0][b];
            let dy = geom.coords[1][a] - geom.coords[1][b];
            let dz = geom.coords[2][a] - geom.coords[2][b];
            (dx * dx + dy * dy + dz * dz).sqrt()
        };
        let mut extents = [0.0f64; 3];
        let mut count = 0.0;
        for a in 0..n {
            for b in 0..n {
                extents[0] += dist(idx(0, a, b), idx(n - 1, a, b));
                extents[1] += dist(idx(a, 0, b), idx(a, n - 1, b));
                extents[2] += dist(idx(a, b, 0), idx(a, b, n - 1));
                count += 1.0;
            }
        }
        for v in &mut extents {
            *v /= count;
        }
        let emax = extents.iter().cloned().fold(f64::MIN, f64::max);
        let emin = extents.iter().cloned().fold(f64::MAX, f64::min);
        let jmax = geom.jac[base..base + nn]
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        let jmin = geom.jac[base..base + nn]
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min);
        out.push(ElementQuality {
            aspect_ratio: emax / emin.max(1e-300),
            jacobian_ratio: jmax / jmin.max(1e-300),
            extents,
        });
    }
    out
}

/// Worst-case summary over a rank's elements: `(max aspect ratio, max
/// Jacobian ratio)`.
pub fn quality_summary(geom: &GeomFactors) -> (f64, f64) {
    element_quality(geom).iter().fold((0.0, 0.0), |(a, j), q| {
        (a.max(q.aspect_ratio), j.max(q.jacobian_ratio))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cylinder::{cylinder_mesh, CylinderParams};
    use crate::generators::{box_mesh, box_mesh_graded};

    #[test]
    fn unit_cubes_are_perfect() {
        let mesh = box_mesh(2, 2, 2, [0., 2.], [0., 2.], [0., 2.], false, false);
        let geom = GeomFactors::new(&mesh, 4);
        for q in element_quality(&geom) {
            assert!((q.aspect_ratio - 1.0).abs() < 1e-12, "{q:?}");
            assert!((q.jacobian_ratio - 1.0).abs() < 1e-12, "{q:?}");
            for ext in q.extents {
                assert!((ext - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn stretched_box_reports_its_anisotropy() {
        // 4:1:1 element shape.
        let mesh = box_mesh(1, 1, 1, [0., 4.], [0., 1.], [0., 1.], false, false);
        let geom = GeomFactors::new(&mesh, 3);
        let q = &element_quality(&geom)[0];
        assert!((q.aspect_ratio - 4.0).abs() < 1e-10, "{q:?}");
        assert!((q.jacobian_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn graded_mesh_quality_tracks_grading() {
        let uniform = box_mesh_graded(1, 1, 6, [0., 1.], [0., 1.], [0., 1.], false, false, 0.0);
        let graded = box_mesh_graded(1, 1, 6, [0., 1.], [0., 1.], [0., 1.], false, false, 2.0);
        let (a_u, _) = quality_summary(&GeomFactors::new(&uniform, 3));
        let (a_g, _) = quality_summary(&GeomFactors::new(&graded, 3));
        // Wall clustering thins the first layer → higher anisotropy.
        assert!(a_g > a_u, "graded {a_g} !> uniform {a_u}");
    }

    #[test]
    fn cylinder_mesh_quality_is_bounded() {
        let mesh = cylinder_mesh(CylinderParams::default());
        let geom = GeomFactors::new(&mesh, 4);
        let (aspect, jac) = quality_summary(&geom);
        // The o-grid with default parameters is a reasonable mesh: no
        // pathological elements.
        assert!(aspect < 6.0, "aspect {aspect}");
        assert!(jac < 10.0, "jacobian ratio {jac}");
        assert!(aspect >= 1.0 && jac >= 1.0);
    }
}
