//! Cylindrical Rayleigh-Bénard cell mesh (o-grid cross-section, extruded).
//!
//! The paper's production case is a cylinder of aspect ratio Γ = D/H = 1:10
//! heated from below. The cross-section uses the classic o-grid topology: a
//! central square block surrounded by rings of quads that blend from the
//! square contour to the exact circle, with the outermost ring carrying a
//! [`Curve::CylinderSide`] descriptor so the wall is geometrically exact at
//! any polynomial degree. The z direction is extruded with optional tanh
//! grading for boundary-layer refinement at the plates.

use crate::{BoundaryTag, Curve, HexMesh};

/// Parameters of the cylindrical RBC cell mesh.
#[derive(Debug, Clone, Copy)]
pub struct CylinderParams {
    /// Cylinder radius (the paper's Γ = 1:10 cell of unit height has
    /// radius 0.05).
    pub radius: f64,
    /// Cell height; z spans `[0, height]`.
    pub height: f64,
    /// Cells per side of the central square block (≥ 1).
    pub n_square: usize,
    /// Number of o-grid rings between the square and the wall (≥ 1).
    pub n_rings: usize,
    /// Element layers in z (≥ 1).
    pub n_z: usize,
    /// tanh grading strength toward the plates; 0 = uniform.
    pub beta_z: f64,
}

impl Default for CylinderParams {
    fn default() -> Self {
        Self {
            radius: 0.5,
            height: 1.0,
            n_square: 2,
            n_rings: 2,
            n_z: 4,
            beta_z: 0.0,
        }
    }
}

/// Generate the cylinder mesh. Element count is
/// `(n_square² + 4·n_square·n_rings) · n_z`.
pub fn cylinder_mesh(params: CylinderParams) -> HexMesh {
    let CylinderParams {
        radius,
        height,
        n_square: n0,
        n_rings: nr,
        n_z: nz,
        beta_z,
    } = params;
    assert!(radius > 0.0 && height > 0.0);
    assert!(n0 >= 1 && nr >= 1 && nz >= 1);

    // Central square half-width: half the radius is the standard o-grid
    // choice, keeping ring elements reasonably isotropic.
    let a = 0.5 * radius;
    let perim = 4 * n0;

    // ---- 2-D disk vertices -------------------------------------------------
    // Plane layout: (n0+1)² square vertices, then nr contours of `perim`
    // ring vertices (contour level 1..=nr; level 0 is the square boundary).
    let square_verts = (n0 + 1) * (n0 + 1);
    let plane_verts = square_verts + nr * perim;

    let sq_id = |i: usize, j: usize| -> usize { i + (n0 + 1) * j };

    // Square-boundary vertex id for perimeter index m (counter-clockwise
    // from the corner (-a, -a)).
    let boundary_id = |m: usize| -> usize {
        let side = m / n0;
        let i = m % n0;
        match side {
            0 => sq_id(i, 0),       // bottom, (-a,-a) → (a,-a)
            1 => sq_id(n0, i),      // right
            2 => sq_id(n0 - i, n0), // top
            3 => sq_id(0, n0 - i),  // left
            _ => unreachable!(),
        }
    };

    let contour_id = |level: usize, m: usize| -> usize {
        let m = m % perim;
        if level == 0 {
            boundary_id(m)
        } else {
            square_verts + (level - 1) * perim + m
        }
    };

    // Square-perimeter point for index m (uniform arclength per side).
    let square_pt = |m: usize| -> [f64; 2] {
        let side = m / n0;
        let f = (m % n0) as f64 / n0 as f64;
        match side {
            0 => [-a + 2.0 * a * f, -a],
            1 => [a, -a + 2.0 * a * f],
            2 => [a - 2.0 * a * f, a],
            3 => [-a, a - 2.0 * a * f],
            _ => unreachable!(),
        }
    };

    // Circle point: uniform angle, anchored so corners map to diagonals.
    let circle_pt = |m: usize| -> [f64; 2] {
        let phi =
            -0.75 * std::f64::consts::PI + 0.5 * std::f64::consts::PI * (m as f64 / n0 as f64);
        [radius * phi.cos(), radius * phi.sin()]
    };

    let mut plane = vec![[0.0f64; 2]; plane_verts];
    for j in 0..=n0 {
        for i in 0..=n0 {
            plane[sq_id(i, j)] = [
                -a + 2.0 * a * i as f64 / n0 as f64,
                -a + 2.0 * a * j as f64 / n0 as f64,
            ];
        }
    }
    for level in 1..=nr {
        let b = level as f64 / nr as f64;
        for m in 0..perim {
            let s = square_pt(m);
            let c = circle_pt(m);
            plane[contour_id(level, m)] =
                [(1.0 - b) * s[0] + b * c[0], (1.0 - b) * s[1] + b * c[1]];
        }
    }

    // ---- z levels ----------------------------------------------------------
    let zs: Vec<f64> = (0..=nz)
        .map(|k| {
            let t = k as f64 / nz as f64;
            height * grade(t, beta_z)
        })
        .collect();

    // ---- 3-D vertices ------------------------------------------------------
    let mut vertices = Vec::with_capacity(plane_verts * (nz + 1));
    for z in &zs {
        for p in &plane {
            vertices.push([p[0], p[1], *z]);
        }
    }
    let vid = |plane_id: usize, k: usize| -> usize { plane_id + k * plane_verts };

    // ---- elements ----------------------------------------------------------
    let mut elems = Vec::new();
    let mut face_tags = Vec::new();
    let mut curves = std::collections::BTreeMap::new();

    for k in 0..nz {
        let bot_tag = if k == 0 {
            BoundaryTag::HotWall
        } else {
            BoundaryTag::None
        };
        let top_tag = if k == nz - 1 {
            BoundaryTag::ColdWall
        } else {
            BoundaryTag::None
        };

        // Central square block.
        for j in 0..n0 {
            for i in 0..n0 {
                elems.push([
                    vid(sq_id(i, j), k),
                    vid(sq_id(i + 1, j), k),
                    vid(sq_id(i, j + 1), k),
                    vid(sq_id(i + 1, j + 1), k),
                    vid(sq_id(i, j), k + 1),
                    vid(sq_id(i + 1, j), k + 1),
                    vid(sq_id(i, j + 1), k + 1),
                    vid(sq_id(i + 1, j + 1), k + 1),
                ]);
                let mut tags = [BoundaryTag::None; 6];
                tags[4] = bot_tag;
                tags[5] = top_tag;
                face_tags.push(tags);
            }
        }

        // Rings. Local r runs clockwise (decreasing perimeter index) and s
        // radially outward so that the Jacobian is positive and the curved
        // wall is always local face 3 (+y).
        for level in 1..=nr {
            for m in 0..perim {
                let inner_lo = contour_id(level - 1, m + 1);
                let inner_hi = contour_id(level - 1, m);
                let outer_lo = contour_id(level, m + 1);
                let outer_hi = contour_id(level, m);
                let e = elems.len();
                elems.push([
                    vid(inner_lo, k),
                    vid(inner_hi, k),
                    vid(outer_lo, k),
                    vid(outer_hi, k),
                    vid(inner_lo, k + 1),
                    vid(inner_hi, k + 1),
                    vid(outer_lo, k + 1),
                    vid(outer_hi, k + 1),
                ]);
                let mut tags = [BoundaryTag::None; 6];
                tags[4] = bot_tag;
                tags[5] = top_tag;
                if level == nr {
                    tags[3] = BoundaryTag::Wall;
                    curves.insert((e, 3), Curve::CylinderSide { radius });
                }
                face_tags.push(tags);
            }
        }
    }

    HexMesh {
        vertices,
        elems,
        face_tags,
        curves,
    }
}

/// Symmetric tanh grading of `t ∈ [0, 1]` toward both endpoints.
fn grade(t: f64, beta: f64) -> f64 {
    if beta <= 0.0 {
        return t;
    }
    let s = (beta * (2.0 * t - 1.0)).tanh() / beta.tanh();
    0.5 * (1.0 + s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::GeomFactors;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn element_and_vertex_counts() {
        let p = CylinderParams {
            n_square: 2,
            n_rings: 2,
            n_z: 3,
            ..Default::default()
        };
        let m = cylinder_mesh(p);
        assert_eq!(m.num_elements(), (4 + 16) * 3);
        assert!(m.validate().is_empty());
    }

    #[test]
    fn all_jacobians_positive() {
        let m = cylinder_mesh(CylinderParams::default());
        let geom = GeomFactors::new(&m, 4);
        assert!(geom.min_jac > 0.0);
    }

    #[test]
    fn volume_converges_to_cylinder() {
        // With the curved outer ring the volume should be very close to
        // π R² H already at moderate degree.
        let params = CylinderParams {
            radius: 0.5,
            height: 1.0,
            n_square: 2,
            n_rings: 2,
            n_z: 2,
            beta_z: 0.0,
        };
        let m = cylinder_mesh(params);
        let geom = GeomFactors::new(&m, 7);
        let exact = std::f64::consts::PI * 0.25;
        let vol = geom.volume();
        assert!(
            (vol - exact).abs() / exact < 1e-4,
            "volume {vol} vs exact {exact}"
        );
    }

    #[test]
    fn wall_nodes_on_exact_circle() {
        let params = CylinderParams {
            radius: 0.3,
            ..Default::default()
        };
        let m = cylinder_mesh(params);
        let geom = GeomFactors::new(&m, 5);
        let n = geom.nx1;
        let nn = n * n * n;
        let mut on_wall = 0;
        for &(e, f) in m.curves.keys() {
            assert_eq!(f, 3);
            // Face 3 is s = +1 → j = n-1.
            for k in 0..n {
                for i in 0..n {
                    let idx = e * nn + i + n * ((n - 1) + n * k);
                    let x = geom.coords[0][idx];
                    let y = geom.coords[1][idx];
                    let r = (x * x + y * y).sqrt();
                    assert_close(r, 0.3, 1e-12);
                    on_wall += 1;
                }
            }
        }
        assert!(on_wall > 0);
    }

    #[test]
    fn boundary_tags_cover_plates_and_wall() {
        let params = CylinderParams {
            n_square: 2,
            n_rings: 1,
            n_z: 2,
            ..Default::default()
        };
        let m = cylinder_mesh(params);
        let per_layer = 4 + 8;
        let hot = m
            .face_tags
            .iter()
            .flatten()
            .filter(|t| **t == BoundaryTag::HotWall)
            .count();
        let cold = m
            .face_tags
            .iter()
            .flatten()
            .filter(|t| **t == BoundaryTag::ColdWall)
            .count();
        let wall = m
            .face_tags
            .iter()
            .flatten()
            .filter(|t| **t == BoundaryTag::Wall)
            .count();
        assert_eq!(hot, per_layer);
        assert_eq!(cold, per_layer);
        assert_eq!(wall, 8 * 2); // outer ring faces × layers
    }

    #[test]
    fn side_wall_area_converges() {
        // Lateral area = 2π R H.
        let params = CylinderParams {
            radius: 0.4,
            height: 2.0,
            n_square: 2,
            n_rings: 2,
            n_z: 2,
            beta_z: 0.0,
        };
        let m = cylinder_mesh(params);
        let geom = GeomFactors::new(&m, 7);
        let mut area = 0.0;
        for &(e, f) in m.curves.keys() {
            area += geom.face_area_weights(e, f).iter().sum::<f64>();
        }
        let exact = 2.0 * std::f64::consts::PI * 0.4 * 2.0;
        assert!(
            (area - exact).abs() / exact < 1e-6,
            "area {area} vs {exact}"
        );
    }

    #[test]
    fn graded_layers_thinner_at_plates() {
        let params = CylinderParams {
            n_square: 1,
            n_rings: 1,
            n_z: 6,
            beta_z: 2.0,
            ..Default::default()
        };
        let m = cylinder_mesh(params);
        let mut zs: Vec<f64> = m.vertices.iter().map(|v| v[2]).collect();
        zs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        zs.dedup_by(|x, y| (*x - *y).abs() < 1e-12);
        let first = zs[1] - zs[0];
        let mid = zs[zs.len() / 2] - zs[zs.len() / 2 - 1];
        assert!(
            first < mid,
            "first layer {first} not thinner than mid {mid}"
        );
    }
}
