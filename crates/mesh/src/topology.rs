//! Reference-hex topology tables.
//!
//! Local vertex numbering is the unit-cube convention documented on
//! [`crate::HexMesh`]: `v(i,j,k) = i + 2j + 4k`.

/// The 12 edges of the reference hex as local vertex index pairs.
///
/// Order: the 4 x-directed edges (varying i), then y-directed, then
/// z-directed.
pub const HEX_EDGES: [(usize, usize); 12] = [
    // x-directed
    (0, 1),
    (2, 3),
    (4, 5),
    (6, 7),
    // y-directed
    (0, 2),
    (1, 3),
    (4, 6),
    (5, 7),
    // z-directed
    (0, 4),
    (1, 5),
    (2, 6),
    (3, 7),
];

/// The 6 faces of the reference hex as cyclic corner loops, in the face
/// order used throughout RBX: `0:-x, 1:+x, 2:-y, 3:+y, 4:-z, 5:+z`.
///
/// Each loop starts at the face corner with the smallest (j,k)/(i,k)/(i,j)
/// and proceeds so that consecutive corners share an edge.
pub const HEX_FACES: [[usize; 4]; 6] = [
    [0, 2, 6, 4], // -x
    [1, 3, 7, 5], // +x
    [0, 1, 5, 4], // -y
    [2, 3, 7, 6], // +y
    [0, 1, 3, 2], // -z
    [4, 5, 7, 6], // +z
];

/// For face `f` and a face-local lattice coordinate `(a, b) ∈ [0, p]²`,
/// return the volume lattice coordinate `(i, j, k)`.
///
/// The face parameterization is chosen so that `(a, b) = (0, 0)` is the
/// first corner in [`HEX_FACES`]'s loop, `a` increases toward the second
/// corner and `b` toward the fourth.
pub fn face_to_volume(f: usize, a: usize, b: usize, p: usize) -> (usize, usize, usize) {
    match f {
        0 => (0, a, b), // -x: corners 0,2,6,4 → a along +y, b along +z
        1 => (p, a, b), // +x: corners 1,3,7,5
        2 => (a, 0, b), // -y: corners 0,1,5,4 → a along +x, b along +z
        3 => (a, p, b), // +y: corners 2,3,7,6
        4 => (a, b, 0), // -z: corners 0,1,3,2 → a along +x, b along +y
        5 => (a, b, p), // +z: corners 4,5,7,6
        _ => panic!("face index {f} out of range"),
    }
}

/// For edge `e` and a 1-D lattice coordinate `t ∈ [0, p]` measured from the
/// first vertex in [`HEX_EDGES`], return the volume lattice coordinate.
pub fn edge_to_volume(e: usize, t: usize, p: usize) -> (usize, usize, usize) {
    let (lo, _) = HEX_EDGES[e];
    let (i0, j0, k0) = vertex_lattice(lo, p);
    match e {
        0..=3 => (t, j0, k0),
        4..=7 => (i0, t, k0),
        8..=11 => (i0, j0, t),
        _ => panic!("edge index {e} out of range"),
    }
}

/// Volume lattice coordinate of local vertex `v` for degree `p`.
pub fn vertex_lattice(v: usize, p: usize) -> (usize, usize, usize) {
    let i = if v & 1 != 0 { p } else { 0 };
    let j = if v & 2 != 0 { p } else { 0 };
    let k = if v & 4 != 0 { p } else { 0 };
    (i, j, k)
}

/// Classification of a node within the reference element lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeClass {
    /// Coincides with local vertex `v`.
    Vertex(usize),
    /// Interior of local edge `e` at parameter `t ∈ 1..p` from the edge's
    /// first vertex.
    Edge {
        /// Local edge index into [`HEX_EDGES`].
        edge: usize,
        /// Offset from the edge's first vertex.
        t: usize,
    },
    /// Interior of local face `f` at face-local `(a, b) ∈ (1..p)²`.
    Face {
        /// Local face index into [`HEX_FACES`].
        face: usize,
        /// First face-local coordinate.
        a: usize,
        /// Second face-local coordinate.
        b: usize,
    },
    /// Strictly interior node.
    Interior,
}

/// Classify lattice node `(i, j, k)` of a degree-`p` element.
pub fn classify_node(i: usize, j: usize, k: usize, p: usize) -> NodeClass {
    let on_i = i == 0 || i == p;
    let on_j = j == 0 || j == p;
    let on_k = k == 0 || k == p;
    let count = on_i as usize + on_j as usize + on_k as usize;
    match count {
        3 => {
            let v = (i == p) as usize + 2 * ((j == p) as usize) + 4 * ((k == p) as usize);
            NodeClass::Vertex(v)
        }
        2 => {
            // The free direction determines the edge family.
            if !on_i {
                let base = ((j == p) as usize) + 2 * ((k == p) as usize);
                NodeClass::Edge { edge: base, t: i }
            } else if !on_j {
                let base = 4 + ((i == p) as usize) + 2 * ((k == p) as usize);
                NodeClass::Edge { edge: base, t: j }
            } else {
                let base = 8 + ((i == p) as usize) + 2 * ((j == p) as usize);
                NodeClass::Edge { edge: base, t: k }
            }
        }
        1 => {
            if on_i {
                let f = if i == p { 1 } else { 0 };
                NodeClass::Face {
                    face: f,
                    a: j,
                    b: k,
                }
            } else if on_j {
                let f = if j == p { 3 } else { 2 };
                NodeClass::Face {
                    face: f,
                    a: i,
                    b: k,
                }
            } else {
                let f = if k == p { 5 } else { 4 };
                NodeClass::Face {
                    face: f,
                    a: i,
                    b: j,
                }
            }
        }
        _ => NodeClass::Interior,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_table_consistent_with_lattice() {
        let p = 4;
        for (e, &(lo, hi)) in HEX_EDGES.iter().enumerate() {
            // t = 0 lands on the first vertex, t = p on the second.
            assert_eq!(
                edge_to_volume(e, 0, p),
                vertex_lattice(lo, p),
                "edge {e} start"
            );
            assert_eq!(
                edge_to_volume(e, p, p),
                vertex_lattice(hi, p),
                "edge {e} end"
            );
        }
    }

    #[test]
    fn face_table_consistent_with_lattice() {
        let p = 3;
        for (f, loop_) in HEX_FACES.iter().enumerate() {
            assert_eq!(face_to_volume(f, 0, 0, p), vertex_lattice(loop_[0], p));
            assert_eq!(face_to_volume(f, p, 0, p), vertex_lattice(loop_[1], p));
            assert_eq!(face_to_volume(f, p, p, p), vertex_lattice(loop_[2], p));
            assert_eq!(face_to_volume(f, 0, p, p), vertex_lattice(loop_[3], p));
        }
    }

    #[test]
    fn classify_counts_match_lattice_partition() {
        // For a degree-p element the lattice must partition into exactly
        // 8 vertices, 12(p-1) edge nodes, 6(p-1)² face nodes and (p-1)³
        // interior nodes.
        let p = 5;
        let (mut nv, mut ne, mut nf, mut ni) = (0, 0, 0, 0);
        for k in 0..=p {
            for j in 0..=p {
                for i in 0..=p {
                    match classify_node(i, j, k, p) {
                        NodeClass::Vertex(_) => nv += 1,
                        NodeClass::Edge { .. } => ne += 1,
                        NodeClass::Face { .. } => nf += 1,
                        NodeClass::Interior => ni += 1,
                    }
                }
            }
        }
        assert_eq!(nv, 8);
        assert_eq!(ne, 12 * (p - 1));
        assert_eq!(nf, 6 * (p - 1) * (p - 1));
        assert_eq!(ni, (p - 1) * (p - 1) * (p - 1));
    }

    #[test]
    fn classify_agrees_with_tables() {
        let p = 4;
        // Every edge node must classify onto the edge whose endpoints it
        // sits between, with the correct parameter.
        for e in 0..12 {
            for t in 1..p {
                let (i, j, k) = edge_to_volume(e, t, p);
                assert_eq!(classify_node(i, j, k, p), NodeClass::Edge { edge: e, t });
            }
        }
        for f in 0..6 {
            for a in 1..p {
                for b in 1..p {
                    let (i, j, k) = face_to_volume(f, a, b, p);
                    assert_eq!(classify_node(i, j, k, p), NodeClass::Face { face: f, a, b });
                }
            }
        }
    }

    #[test]
    fn faces_are_planar_loops() {
        // Consecutive corners in each face loop must differ in exactly one
        // lattice coordinate (they share an edge of the cube).
        let p = 1;
        for loop_ in &HEX_FACES {
            for w in 0..4 {
                let a = vertex_lattice(loop_[w], p);
                let b = vertex_lattice(loop_[(w + 1) % 4], p);
                let diff = (a.0 != b.0) as usize + (a.1 != b.1) as usize + (a.2 != b.2) as usize;
                assert_eq!(diff, 1, "face loop {loop_:?} corner {w}");
            }
        }
    }
}
