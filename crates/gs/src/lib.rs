// Index-style loops mirror the tensor/lattice math throughout; the
// iterator forms clippy suggests would obscure the stencil structure.
#![allow(clippy::needless_range_loop)]

//! # rbx-gs — gather-scatter for inter-element continuity
//!
//! The spectral-element method stores fields element-locally; continuity
//! across element boundaries is enforced by *gather-scatter* (direct
//! stiffness summation): nodes that coincide geometrically share a global
//! id, and `gs(u)` reduces (sum/min/max/mul) over each id's members and
//! writes the result back to all of them.
//!
//! The paper (§6) highlights that Neko's gather-scatter is "fully aware of
//! the topology of the mesh" and runs in **two phases** — one for purely
//! rank-local groups and one for groups shared between MPI ranks. This
//! module implements exactly that structure on top of
//! [`rbx_comm::Communicator`]:
//!
//! 1. a **local phase** reducing all locally-resident members, and
//! 2. a **shared phase** exchanging per-key partial reductions with
//!    neighbouring ranks that touch the same mesh entity.
//!
//! Global ids are derived *topologically* (vertex / edge / face keys built
//! from mesh vertex ids, with canonical orientation), never from floating-
//! point coordinates, so curved and periodic meshes need no tolerances.

use rbx_comm::{CommError, Communicator, Payload};
use rbx_device::{loop_chunk, tuning, RangePtr, WorkerPool};
use rbx_mesh::topology::{classify_node, NodeClass, HEX_EDGES, HEX_FACES};
use rbx_mesh::HexMesh;
use rbx_telemetry::Telemetry;
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;

/// Reduction operator applied across nodes sharing a global id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GsOp {
    /// Sum (direct stiffness summation — the default for assembly).
    Add,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Product.
    Mul,
}

impl GsOp {
    #[inline]
    fn identity(self) -> f64 {
        match self {
            GsOp::Add => 0.0,
            GsOp::Min => f64::INFINITY,
            GsOp::Max => f64::NEG_INFINITY,
            GsOp::Mul => 1.0,
        }
    }

    #[inline]
    fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            GsOp::Add => a + b,
            GsOp::Min => a.min(b),
            GsOp::Max => a.max(b),
            GsOp::Mul => a * b,
        }
    }
}

/// Topological key identifying a shared mesh entity node.
///
/// Ordering is derived so both sides of a rank boundary enumerate shared
/// keys identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Key {
    /// Mesh vertex.
    Vertex(u64),
    /// Interior node `t ∈ 1..p` of edge `(vmin, vmax)`, measured from vmin.
    Edge(u64, u64, u16),
    /// Interior node of a face identified by (corner-min, next, diagonal)
    /// at canonical face coordinates `(a, b)`.
    Face(u64, u64, u64, u16, u16),
}

/// Canonicalize a face-interior node: given the face's corner vertex ids in
/// cyclic order and the face-local lattice coordinate `(a, b)` (`a` toward
/// corner 1, `b` toward corner 3, each in `0..=p`), produce an
/// orientation-independent key.
fn face_key(cycle: [u64; 4], a: usize, b: usize, p: usize) -> Key {
    // Lattice positions of the four cyclic corners in the (a, b) plane.
    const POS: [(usize, usize); 4] = [(0, 0), (1, 0), (1, 1), (0, 1)];
    // Index of the smallest corner id; a manual fold over the fixed four
    // entries keeps this infallible (min_by_key on 0..4 returns Option).
    let mut m = 0;
    for i in 1..4 {
        if cycle[i] < cycle[m] {
            m = i;
        }
    }
    let cand = [(m + 1) % 4, (m + 3) % 4];
    let nxt = if cycle[cand[0]] < cycle[cand[1]] {
        cand[0]
    } else {
        cand[1]
    };
    let other = if nxt == (m + 1) % 4 {
        (m + 3) % 4
    } else {
        (m + 1) % 4
    };
    let diag = (m + 2) % 4;
    let node = (a, b);
    let corner = |c: usize| -> (usize, usize) { (POS[c].0 * p, POS[c].1 * p) };
    let pm = corner(m);
    let pn = corner(nxt);
    let po = corner(other);
    // Offset of `node` from the min corner measured along the (axis-aligned)
    // direction toward `to`.
    let coord_along = |from: (usize, usize), to: (usize, usize)| -> usize {
        if from.0 != to.0 {
            if to.0 > from.0 {
                node.0 - from.0
            } else {
                from.0 - node.0
            }
        } else if to.1 > from.1 {
            node.1 - from.1
        } else {
            from.1 - node.1
        }
    };
    let ca = coord_along(pm, pn);
    let cb = coord_along(pm, po);
    Key::Face(cycle[m], cycle[nxt], cycle[diag], ca as u16, cb as u16)
}

/// A built gather-scatter operator for one rank's elements.
pub struct GatherScatter {
    /// Local node count (`nelv_local · (p+1)³`).
    n_local: usize,
    /// Flattened member lists of all groups with more than one member or a
    /// remote counterpart.
    members: Vec<u32>,
    /// CSR offsets into `members`, one entry per group + 1.
    group_ptr: Vec<u32>,
    /// Per neighbour rank: `(rank, group indices in shared-key order)`.
    shared: Vec<(usize, Vec<u32>)>,
    /// Groups with remote members, in shared-key order.
    shared_groups: Vec<u32>,
    /// CSR offsets into `fold_kind`/`fold_idx`, one per shared group + 1.
    /// Each shared group's entries enumerate *all* member instances of the
    /// group — local and remote — in global `(element id, node)` order, so
    /// the reduction folds identically on every rank count (the canonical
    /// combine the elastic-restart contract requires).
    fold_ptr: Vec<u32>,
    /// Per fold entry: `u32::MAX` = local member, else neighbour slot.
    fold_kind: Vec<u32>,
    /// Per fold entry: local node index (local member) or offset into that
    /// neighbour's incoming value buffer (remote member).
    fold_idx: Vec<u32>,
    /// Expected incoming value count per neighbour slot.
    recv_counts: Vec<usize>,
    /// Total member values sent to neighbours per apply.
    send_values: usize,
    /// Communication tag for this operator's shared phase.
    tag: u64,
    /// Observability handle, settable once through a shared reference
    /// (the operator lives behind an `Arc` in the simulation).
    tel: OnceLock<Telemetry>,
    /// Persistent worker pool for the local gather and scatter phases,
    /// settable once through a shared reference (like `tel`). Unset means
    /// the phases run serially on the calling thread.
    pool: OnceLock<WorkerPool>,
}

impl GatherScatter {
    /// Build the operator for this rank.
    ///
    /// `mesh` is the full (replicated) mesh; `part` assigns every global
    /// element to a rank; `my_elems` lists this rank's global element ids in
    /// local order (must be consistent with `part` and `comm.rank()`).
    /// At production scale the mesh would be distributed, but the
    /// communication structure built here is identical.
    pub fn build(
        mesh: &HexMesh,
        p: usize,
        part: &[usize],
        my_elems: &[usize],
        comm: &dyn Communicator,
    ) -> Self {
        assert_eq!(part.len(), mesh.num_elements());
        let rank = comm.rank();
        for &e in my_elems {
            assert_eq!(part[e], rank, "my_elems inconsistent with partition");
        }
        // Canonical shared-phase combine relies on every rank's local
        // member lists ascending in global element id (build scan order is
        // element-major), which every production partitioner guarantees.
        debug_assert!(
            my_elems.windows(2).all(|w| w[0] < w[1]),
            "my_elems must be strictly ascending for the canonical combine"
        );
        let n = p + 1;
        let nn = n * n * n;
        let n_local = my_elems.len() * nn;

        // Key of every non-interior node of a (global) element.
        let node_key = |ge: usize, i: usize, j: usize, k: usize| -> Option<Key> {
            match classify_node(i, j, k, p) {
                NodeClass::Interior => None,
                NodeClass::Vertex(v) => Some(Key::Vertex(mesh.elems[ge][v] as u64)),
                NodeClass::Edge { edge, t } => {
                    let (a, b) = HEX_EDGES[edge];
                    let va = mesh.elems[ge][a] as u64;
                    let vb = mesh.elems[ge][b] as u64;
                    let (vmin, vmax, tt) = if va < vb {
                        (va, vb, t)
                    } else {
                        (vb, va, p - t)
                    };
                    Some(Key::Edge(vmin, vmax, tt as u16))
                }
                NodeClass::Face { face, a, b } => {
                    let mut cycle = [0u64; 4];
                    for (slot, &lv) in HEX_FACES[face].iter().enumerate() {
                        cycle[slot] = mesh.elems[ge][lv] as u64;
                    }
                    Some(face_key(cycle, a, b, p))
                }
            }
        };

        // 1. Group local boundary nodes by key.
        let mut local_groups: BTreeMap<Key, Vec<u32>> = BTreeMap::new();
        for (le, &ge) in my_elems.iter().enumerate() {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        if let Some(key) = node_key(ge, i, j, k) {
                            let idx = (le * nn + i + n * (j + n * k)) as u32;
                            local_groups.entry(key).or_default().push(idx);
                        }
                    }
                }
            }
        }

        // 2. Determine which other ranks touch each of *my* keys by scanning
        //    the remote elements' boundary nodes, recording every remote
        //    member instance `(owner, global element, node)` — the sweep is
        //    element-major and node-scan-ordered, so each key's instance
        //    list arrives already in canonical (element, node) order.
        let mut key_ranks: HashMap<Key, Vec<usize>> = HashMap::new();
        let mut remote_members: HashMap<Key, Vec<(usize, usize, usize)>> = HashMap::new();
        if comm.size() > 1 {
            for ge in 0..mesh.num_elements() {
                let owner = part[ge];
                if owner == rank {
                    continue;
                }
                for k in 0..n {
                    for j in 0..n {
                        for i in 0..n {
                            if let Some(key) = node_key(ge, i, j, k) {
                                if local_groups.contains_key(&key) {
                                    let ranks = key_ranks.entry(key).or_default();
                                    if !ranks.contains(&owner) {
                                        ranks.push(owner);
                                    }
                                    let scan = i + n * (j + n * k);
                                    remote_members
                                        .entry(key)
                                        .or_default()
                                        .push((owner, ge, scan));
                                }
                            }
                        }
                    }
                }
            }
        }

        // 3. Flatten groups (keeping only those that actually reduce) and
        //    build per-neighbour shared lists in deterministic key order.
        let mut members = Vec::new();
        let mut group_ptr = vec![0u32];
        let mut shared_map: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
        // Shared groups in key order, with their keys for the fold build.
        let mut shared_keys: Vec<(Key, u32)> = Vec::new();
        for (key, group) in &local_groups {
            let remote = key_ranks.get(key);
            if group.len() == 1 && remote.is_none() {
                continue;
            }
            let gi = (group_ptr.len() - 1) as u32;
            members.extend_from_slice(group);
            group_ptr.push(members.len() as u32);
            if let Some(ranks) = remote {
                for &r in ranks {
                    shared_map.entry(r).or_default().push(gi);
                }
                shared_keys.push((*key, gi));
            }
        }
        let shared: Vec<(usize, Vec<u32>)> = shared_map.into_iter().collect();

        // 4. Canonical fold metadata for the shared groups: merge each
        //    group's local and remote member instances into one list sorted
        //    by global (element, node), so every touching rank combines the
        //    same values in the same order. Remote entries index into the
        //    neighbour's incoming message, whose layout both sides derive
        //    identically: shared keys in key order, the sender's members of
        //    each key in the sender's (element, node) scan order.
        let mut gi_to_si: HashMap<u32, usize> = HashMap::new();
        for (si, &(_, gi)) in shared_keys.iter().enumerate() {
            gi_to_si.insert(gi, si);
        }
        // Entries: (global element, node scan, kind, idx).
        let mut fold_entries: Vec<Vec<(usize, usize, u32, u32)>> =
            vec![Vec::new(); shared_keys.len()];
        for (si, &(_, gi)) in shared_keys.iter().enumerate() {
            let lo = group_ptr[gi as usize] as usize;
            let hi = group_ptr[gi as usize + 1] as usize;
            for &m in &members[lo..hi] {
                let le = m as usize / nn;
                let scan = m as usize % nn;
                fold_entries[si].push((my_elems[le], scan, u32::MAX, m));
            }
        }
        let mut recv_counts = vec![0usize; shared.len()];
        let mut send_values = 0usize;
        for (slot, (r, gids)) in shared.iter().enumerate() {
            let mut off = 0u32;
            for &gi in gids {
                send_values += (group_ptr[gi as usize + 1] - group_ptr[gi as usize]) as usize;
                let si = gi_to_si[&gi];
                if let Some(insts) = remote_members.get(&shared_keys[si].0) {
                    for &(owner, ge, scan) in insts {
                        if owner == *r {
                            fold_entries[si].push((ge, scan, slot as u32, off));
                            off += 1;
                        }
                    }
                }
            }
            recv_counts[slot] = off as usize;
        }
        let mut fold_ptr = vec![0u32];
        let mut fold_kind = Vec::new();
        let mut fold_idx = Vec::new();
        for entries in &mut fold_entries {
            entries.sort_unstable_by_key(|&(ge, scan, _, _)| (ge, scan));
            for &(_, _, kind, idx) in entries.iter() {
                fold_kind.push(kind);
                fold_idx.push(idx);
            }
            fold_ptr.push(fold_kind.len() as u32);
        }
        let shared_groups: Vec<u32> = shared_keys.iter().map(|&(_, gi)| gi).collect();

        Self {
            n_local,
            members,
            group_ptr,
            shared,
            shared_groups,
            fold_ptr,
            fold_kind,
            fold_idx,
            recv_counts,
            send_values,
            tag: 0x6753,
            tel: OnceLock::new(),
            pool: OnceLock::new(),
        }
    }

    /// Route the rank-local gather and scatter phases through a persistent
    /// [`WorkerPool`]. Callable through `&self` (the operator is typically
    /// shared via `Arc`); only the first call takes effect. Each group's
    /// reduction still runs in member order on one thread, so the pooled
    /// phases are bitwise identical to the serial ones for every thread
    /// count. The shared (communication) phase is unaffected.
    pub fn set_pool(&self, pool: &WorkerPool) {
        let _ = self.pool.set(pool.clone());
    }

    #[inline]
    fn pool(&self) -> Option<&WorkerPool> {
        self.pool.get()
    }

    /// Attach a telemetry handle. Callable through `&self` (the operator
    /// is typically shared via `Arc`); only the first call takes effect.
    /// When the handle is enabled, each [`GatherScatter::apply`] records
    /// `gs/local`, `gs/shared` and `gs/scatter` spans plus exchange-volume
    /// counters (`rbx_gs_messages_total`, `rbx_gs_bytes_total`).
    pub fn set_telemetry(&self, tel: &Telemetry) {
        let _ = self.tel.set(tel.clone());
    }

    #[inline]
    fn tel(&self) -> Option<&Telemetry> {
        self.tel.get().filter(|t| t.is_enabled())
    }

    /// Number of local nodes this operator acts on.
    pub fn n_local(&self) -> usize {
        self.n_local
    }

    /// Number of local reduction groups.
    pub fn num_groups(&self) -> usize {
        self.group_ptr.len() - 1
    }

    /// Ranks this rank exchanges shared-node data with.
    pub fn neighbors(&self) -> Vec<usize> {
        self.shared.iter().map(|(r, _)| *r).collect()
    }

    /// Total number of values this rank sends to neighbours per apply
    /// (member values of every shared group, per touching neighbour) — the
    /// surface traffic the paper's two-phase design minimizes. Globally,
    /// sends and receives balance: Σ_ranks sent == Σ_ranks received.
    pub fn shared_values(&self) -> usize {
        self.send_values
    }

    /// Apply the gather-scatter: reduce over every global-id group with
    /// `op` (local phase, then shared phase over the communicator) and
    /// scatter the result back to all members.
    ///
    /// Infallible interface for solver hot paths: on a communication
    /// failure the field is NaN-filled (fail-stop poisoning — the Krylov
    /// residual checks and the per-step non-finite scan stop promptly
    /// instead of integrating garbage) and the typed error is latched on
    /// the communicator for the step-verdict layer.
    pub fn apply(&self, u: &mut [f64], op: GsOp, comm: &dyn Communicator) {
        if self.try_apply(u, op, comm).is_err() {
            for v in u.iter_mut() {
                *v = f64::NAN;
            }
        }
    }

    /// Fallible gather-scatter. On a communication failure the epoch is
    /// poisoned (so neighbour ranks unwind from the symmetric exchange
    /// too), the error is latched via [`Communicator::set_fault`], and the
    /// field is left partially updated — callers that keep going must use
    /// [`GatherScatter::apply`], which NaN-fills instead.
    pub fn try_apply(
        &self,
        u: &mut [f64],
        op: GsOp,
        comm: &dyn Communicator,
    ) -> Result<(), CommError> {
        debug_assert_eq!(u.len(), self.n_local, "field length mismatch");
        // A poisoned epoch means some exchange was already abandoned:
        // starting another round would only feed stale frames into the
        // neighbour streams. Fail fast; the recovery loop heals the epoch.
        if let Some(e) = comm.poisoned() {
            // audit:allow(hot-alloc): cold failure path — one clone per poisoned epoch, never per step.
            comm.set_fault(e.clone());
            return Err(e);
        }
        let tel = self.tel();
        let ngroups = self.num_groups();
        // audit:allow(hot-alloc): per-apply group buffer — hoisting it into self would need interior mutability on a handle shared across threads (Schwarz overlap); one ngroups vec amortizes over the whole reduce+scatter
        let mut gval = vec![0.0; ngroups];

        // Phase 1: local gather. Groups are independent (each node belongs
        // to at most one group), so chunks of the group range can gather in
        // parallel; each group still reduces in member order on a single
        // thread, keeping the result bitwise identical to the serial phase.
        match self.pool() {
            Some(pool) => {
                let _g = tel.map(|t| t.span_abs("pool/gs"));
                let gp = RangePtr::new(&mut gval);
                let chunk = loop_chunk(ngroups, pool.threads());
                pool.for_each_range_min(ngroups, chunk, tuning().gs_groups, |g0, g1| {
                    // SAFETY: chunk ranges of the group index are pairwise
                    // disjoint, so each gval slot has exactly one writer.
                    let gsub = unsafe { gp.range_mut(g0, g1) };
                    for (gi, slot) in (g0..g1).zip(gsub.iter_mut()) {
                        let lo = self.group_ptr[gi] as usize;
                        let hi = self.group_ptr[gi + 1] as usize;
                        let mut acc = op.identity();
                        for &m in &self.members[lo..hi] {
                            acc = op.combine(acc, u[m as usize]);
                        }
                        *slot = acc;
                    }
                });
            }
            None => {
                let _g = tel.map(|t| t.span_abs("gs/local"));
                for gi in 0..ngroups {
                    let lo = self.group_ptr[gi] as usize;
                    let hi = self.group_ptr[gi + 1] as usize;
                    let mut acc = op.identity();
                    for &m in &self.members[lo..hi] {
                        acc = op.combine(acc, u[m as usize]);
                    }
                    gval[gi] = acc;
                }
            }
        }

        // Phase 2: shared exchange. Each rank sends the raw *member values*
        // of every shared group; every touching rank then folds the full
        // member list — local and remote instances merged in global
        // (element, node) order — from the operator identity. The combine
        // order is therefore a property of the global mesh alone, so the
        // shared-group results are bitwise identical for every rank count
        // (and equal to the single-rank local fold).
        if !self.shared.is_empty() {
            let mut g = tel.map(|t| t.span_abs("gs/shared"));
            let sent: u64 = self.send_values as u64;
            let recvd: u64 = self.recv_counts.iter().sum::<usize>() as u64;
            let messages = self.shared.len() as u64;
            if let Some(g) = g.as_mut() {
                // Count both directions of the exchange.
                g.record("messages", 2 * messages);
                g.record("bytes", 8 * (sent + recvd));
            }
            if let Some(t) = tel {
                t.counter_add("rbx_gs_messages_total", 2 * messages);
                t.counter_add("rbx_gs_bytes_total", 8 * (sent + recvd));
            }
            for (nbr, gids) in &self.shared {
                // audit:allow(hot-alloc): message assembly — the communicator takes ownership of the payload, so a fresh buffer per neighbour is the send contract
                let mut payload: Vec<f64> = Vec::new();
                for &gi in gids {
                    let lo = self.group_ptr[gi as usize] as usize;
                    let hi = self.group_ptr[gi as usize + 1] as usize;
                    for &m in &self.members[lo..hi] {
                        payload.push(u[m as usize]);
                    }
                }
                comm.send(*nbr, self.tag, Payload::F64(payload));
            }
            let timeout = comm.tuning().recv_timeout;
            // audit:allow(hot-alloc): per-apply neighbour receive buffers — the canonical fold needs all neighbours' member values before combining
            let mut incoming: Vec<Vec<f64>> = Vec::with_capacity(self.shared.len());
            for (slot, (nbr, _)) in self.shared.iter().enumerate() {
                let vals = match comm
                    .recv_deadline(*nbr, self.tag, timeout)
                    .and_then(Payload::try_into_f64)
                    .and_then(|v| {
                        if v.len() == self.recv_counts[slot] {
                            Ok(v)
                        } else {
                            Err(CommError::Protocol {
                                // audit:allow(hot-alloc): error path only — allocates when a malformed exchange aborts the apply, never on the healthy fold
                                detail: format!(
                                    "gs exchange from rank {nbr}: {} values, expected {}",
                                    v.len(),
                                    self.recv_counts[slot]
                                ),
                            })
                        }
                    }) {
                    Ok(v) => v,
                    Err(e) => {
                        // The exchange is symmetric: peers are blocked on
                        // our member values too. Poison so they unwind
                        // instead of timing out one by one.
                        comm.poison(&e);
                        // audit:allow(hot-alloc): cold failure path — one
                        // clone per comm fault, never per step.
                        comm.set_fault(e.clone());
                        return Err(e);
                    }
                };
                incoming.push(vals);
            }
            for (si, &gi) in self.shared_groups.iter().enumerate() {
                let mut acc = op.identity();
                for t in self.fold_ptr[si] as usize..self.fold_ptr[si + 1] as usize {
                    let v = match self.fold_kind[t] {
                        u32::MAX => u[self.fold_idx[t] as usize],
                        slot => incoming[slot as usize][self.fold_idx[t] as usize],
                    };
                    acc = op.combine(acc, v);
                }
                gval[gi as usize] = acc;
            }
        }

        // Scatter back. Member sets of distinct groups are disjoint, so the
        // scatter writes of parallel group chunks never alias.
        match self.pool() {
            Some(pool) => {
                let _g = tel.map(|t| t.span_abs("pool/gs"));
                let up = RangePtr::new(u);
                let gv = &gval;
                let chunk = loop_chunk(ngroups, pool.threads());
                pool.for_each_range_min(ngroups, chunk, tuning().gs_groups, |g0, g1| {
                    for gi in g0..g1 {
                        let lo = self.group_ptr[gi] as usize;
                        let hi = self.group_ptr[gi + 1] as usize;
                        for &m in &self.members[lo..hi] {
                            // SAFETY: each node index appears in at most one
                            // group, so writes from different chunks are
                            // disjoint.
                            unsafe { up.write(m as usize, gv[gi]) };
                        }
                    }
                });
            }
            None => {
                let _g = tel.map(|t| t.span_abs("gs/scatter"));
                for gi in 0..ngroups {
                    let lo = self.group_ptr[gi] as usize;
                    let hi = self.group_ptr[gi + 1] as usize;
                    for &m in &self.members[lo..hi] {
                        u[m as usize] = gval[gi];
                    }
                }
            }
        }
        Ok(())
    }

    /// Node multiplicity: how many element-local copies each global node
    /// has across all ranks. `gs(1, Add)` by definition.
    pub fn multiplicity(&self, comm: &dyn Communicator) -> Vec<f64> {
        let mut ones = vec![1.0; self.n_local];
        self.apply(&mut ones, GsOp::Add, comm);
        ones
    }

    /// Averaging helper: `gs(u, Add)` followed by division by multiplicity,
    /// which projects a discontinuous field onto the continuous space.
    pub fn average(&self, u: &mut [f64], mult: &[f64], comm: &dyn Communicator) {
        self.apply(u, GsOp::Add, comm);
        for (v, m) in u.iter_mut().zip(mult) {
            *v /= m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbx_comm::{run_on_ranks, SingleComm};
    use rbx_mesh::cylinder::{cylinder_mesh, CylinderParams};
    use rbx_mesh::generators::box_mesh;
    use rbx_mesh::geometry::GeomFactors;
    use rbx_mesh::partition::{part_elements, partition_rcb};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    fn single_gs(mesh: &HexMesh, p: usize) -> (GatherScatter, SingleComm) {
        let comm = SingleComm::new();
        let part = vec![0usize; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        (GatherScatter::build(mesh, p, &part, &my, &comm), comm)
    }

    #[test]
    fn multiplicity_box_2x1x1() {
        // Two elements sharing one face: shared-face nodes have mult 2.
        let p = 3;
        let mesh = box_mesh(2, 1, 1, [0., 2.], [0., 1.], [0., 1.], false, false);
        let (gs, comm) = single_gs(&mesh, p);
        let mult = gs.multiplicity(&comm);
        let n = p + 1;
        let nn = n * n * n;
        let mut count2 = 0;
        for le in 0..2 {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let m = mult[le * nn + i + n * (j + n * k)];
                        let on_shared = (le == 0 && i == n - 1) || (le == 1 && i == 0);
                        if on_shared {
                            assert_close(m, 2.0, 0.0);
                            count2 += 1;
                        } else {
                            assert_close(m, 1.0, 0.0);
                        }
                    }
                }
            }
        }
        assert_eq!(count2, 2 * n * n);
    }

    #[test]
    fn coordinates_are_continuous_under_average() {
        // gs-average of nodal coordinates must reproduce them exactly —
        // this catches any mis-paired node (wrong orientation handling).
        let p = 4;
        let mesh = box_mesh(3, 3, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let geom = GeomFactors::new(&mesh, p);
        let (gs, comm) = single_gs(&mesh, p);
        let mult = gs.multiplicity(&comm);
        for dim in 0..3 {
            let mut c = geom.coords[dim].clone();
            gs.average(&mut c, &mult, &comm);
            for (a, b) in c.iter().zip(&geom.coords[dim]) {
                assert_close(*a, *b, 1e-12);
            }
        }
    }

    #[test]
    fn coordinates_continuous_on_cylinder() {
        // Same invariant on the curved o-grid mesh exercises face keys with
        // every orientation the generator produces.
        let p = 5;
        let mesh = cylinder_mesh(CylinderParams::default());
        let geom = GeomFactors::new(&mesh, p);
        let (gs, comm) = single_gs(&mesh, p);
        let mult = gs.multiplicity(&comm);
        for dim in 0..3 {
            let mut c = geom.coords[dim].clone();
            gs.average(&mut c, &mult, &comm);
            for (a, b) in c.iter().zip(&geom.coords[dim]) {
                assert_close(*a, *b, 1e-10);
            }
        }
    }

    #[test]
    fn interior_vertex_multiplicity_8() {
        let p = 2;
        let mesh = box_mesh(2, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let (gs, comm) = single_gs(&mesh, p);
        let mult = gs.multiplicity(&comm);
        let max = mult.iter().cloned().fold(0.0, f64::max);
        assert_close(max, 8.0, 0.0);
        // The single interior mesh vertex appears once in each of the 8
        // elements.
        let count = mult.iter().filter(|&&m| m == 8.0).count();
        assert_eq!(count, 8);
    }

    #[test]
    fn periodic_box_wraps_multiplicity() {
        let p = 3;
        let mesh = box_mesh(3, 1, 1, [0., 3.], [0., 1.], [0., 1.], true, false);
        let (gs, comm) = single_gs(&mesh, p);
        let mult = gs.multiplicity(&comm);
        let n = p + 1;
        let nn = n * n * n;
        for k in 0..n {
            for j in 0..n {
                let m_left = mult[n * j + n * n * k]; // element 0, i = 0
                let m_right = mult[2 * nn + (n - 1) + n * (j + n * k)]; // element 2, i = n-1
                assert!(m_left >= 2.0, "left face node mult {m_left}");
                assert!(m_right >= 2.0, "right face node mult {m_right}");
            }
        }
    }

    #[test]
    fn min_max_ops() {
        let p = 2;
        let mesh = box_mesh(2, 1, 1, [0., 2.], [0., 1.], [0., 1.], false, false);
        let (gs, comm) = single_gs(&mesh, p);
        let n = p + 1;
        let nn = n * n * n;
        let mut u = vec![0.0; 2 * nn];
        for (i, v) in u.iter_mut().enumerate() {
            *v = i as f64;
        }
        let mut umin = u.clone();
        gs.apply(&mut umin, GsOp::Min, &comm);
        let mut umax = u.clone();
        gs.apply(&mut umax, GsOp::Max, &comm);
        for k in 0..n {
            for j in 0..n {
                let a = (n - 1) + n * (j + n * k); // elem 0, +x face
                let b = nn + n * (j + n * k); // elem 1, -x face
                assert_close(umin[a], u[a].min(u[b]), 0.0);
                assert_close(umax[a], u[a].max(u[b]), 0.0);
                assert_close(umin[a], umin[b], 0.0);
                assert_close(umax[a], umax[b], 0.0);
            }
        }
    }

    #[test]
    fn multirank_matches_single_rank() {
        // A deterministic per-(global element, node) field gathered on 1
        // rank must equal the same field gathered on 4 ranks.
        let p = 3;
        let mesh = box_mesh(4, 2, 2, [0., 4.], [0., 2.], [0., 2.], false, false);
        let n = p + 1;
        let nn = n * n * n;
        let field =
            |ge: usize, node: usize| -> f64 { ((ge * 31 + node * 7) % 97) as f64 * 0.25 - 10.0 };

        let (gs1, comm1) = single_gs(&mesh, p);
        let mut ref_u: Vec<f64> = (0..mesh.num_elements() * nn)
            .map(|i| field(i / nn, i % nn))
            .collect();
        gs1.apply(&mut ref_u, GsOp::Add, &comm1);

        let part = partition_rcb(&mesh, 4);
        let lists = part_elements(&part, 4);
        let (mesh_ref, part_ref, lists_ref) = (&mesh, &part, &lists);
        let results = run_on_ranks(4, move |comm| {
            let my = &lists_ref[comm.rank()];
            let gs = GatherScatter::build(mesh_ref, p, part_ref, my, comm);
            let mut u: Vec<f64> = my
                .iter()
                .flat_map(|&ge| (0..nn).map(move |nd| field(ge, nd)))
                .collect();
            gs.apply(&mut u, GsOp::Add, comm);
            (my.clone(), u)
        });
        for (my, u) in results {
            for (le, &ge) in my.iter().enumerate() {
                for nd in 0..nn {
                    assert_close(u[le * nn + nd], ref_u[ge * nn + nd], 1e-12);
                }
            }
        }
    }

    #[test]
    fn multirank_combine_is_bitwise_canonical() {
        // The canonical shared-phase fold makes the gathered field
        // *bitwise* independent of the rank count — the foundation of the
        // elastic-restart determinism contract.
        let p = 3;
        let mesh = box_mesh(4, 2, 2, [0., 4.], [0., 2.], [0., 2.], false, false);
        let n = p + 1;
        let nn = n * n * n;
        let field = |ge: usize, node: usize| -> f64 {
            (((ge * 131 + node * 17) % 1009) as f64) * 1.37e-3 - 0.61
        };
        let (gs1, comm1) = single_gs(&mesh, p);
        let mut ref_u: Vec<f64> = (0..mesh.num_elements() * nn)
            .map(|i| field(i / nn, i % nn))
            .collect();
        gs1.apply(&mut ref_u, GsOp::Add, &comm1);

        for nranks in [2usize, 4] {
            let part = partition_rcb(&mesh, nranks);
            let lists = part_elements(&part, nranks);
            let (mesh_ref, part_ref, lists_ref) = (&mesh, &part, &lists);
            let results = run_on_ranks(nranks, move |comm| {
                let my = &lists_ref[comm.rank()];
                let gs = GatherScatter::build(mesh_ref, p, part_ref, my, comm);
                let mut u: Vec<f64> = my
                    .iter()
                    .flat_map(|&ge| (0..nn).map(move |nd| field(ge, nd)))
                    .collect();
                gs.apply(&mut u, GsOp::Add, comm);
                (my.clone(), u)
            });
            for (my, u) in results {
                for (le, &ge) in my.iter().enumerate() {
                    for nd in 0..nn {
                        assert_eq!(
                            u[le * nn + nd].to_bits(),
                            ref_u[ge * nn + nd].to_bits(),
                            "nranks={nranks} elem {ge} node {nd}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn multirank_multiplicity_matches_single() {
        let p = 2;
        let mesh = cylinder_mesh(CylinderParams {
            n_square: 2,
            n_rings: 1,
            n_z: 2,
            ..Default::default()
        });
        let n = p + 1;
        let nn = n * n * n;
        let (gs1, comm1) = single_gs(&mesh, p);
        let ref_mult = gs1.multiplicity(&comm1);

        let part = partition_rcb(&mesh, 3);
        let lists = part_elements(&part, 3);
        let (mesh_ref, part_ref, lists_ref) = (&mesh, &part, &lists);
        let results = run_on_ranks(3, move |comm| {
            let my = &lists_ref[comm.rank()];
            let gs = GatherScatter::build(mesh_ref, p, part_ref, my, comm);
            (my.clone(), gs.multiplicity(comm))
        });
        for (my, mult) in results {
            for (le, &ge) in my.iter().enumerate() {
                for nd in 0..nn {
                    assert_close(mult[le * nn + nd], ref_mult[ge * nn + nd], 0.0);
                }
            }
        }
    }

    #[test]
    fn gather_average_is_projection() {
        // average ∘ average = average (projection onto continuous space).
        let p = 4;
        let mesh = box_mesh(2, 2, 1, [0., 1.], [0., 1.], [0., 1.], false, false);
        let (gs, comm) = single_gs(&mesh, p);
        let mult = gs.multiplicity(&comm);
        let mut u: Vec<f64> = (0..gs.n_local()).map(|i| (i as f64 * 0.7).sin()).collect();
        gs.average(&mut u, &mult, &comm);
        let once = u.clone();
        gs.average(&mut u, &mult, &comm);
        for (a, b) in u.iter().zip(&once) {
            assert_close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn pooled_apply_matches_serial_bitwise_across_thread_counts() {
        let p = 4;
        let mesh = box_mesh(3, 2, 2, [0., 1.], [0., 1.], [0., 1.], true, false);
        let u0: Vec<f64> = {
            let (gs, _) = single_gs(&mesh, p);
            (0..gs.n_local())
                .map(|i| ((i * 37 % 113) as f64) * 0.03 - 1.5)
                .collect()
        };
        for op in [GsOp::Add, GsOp::Min, GsOp::Max, GsOp::Mul] {
            let (gs_ref, comm) = single_gs(&mesh, p);
            let mut u_ref = u0.clone();
            gs_ref.apply(&mut u_ref, op, &comm);
            for threads in [1usize, 4, 7] {
                let (gs, comm) = single_gs(&mesh, p);
                let pool = rbx_device::WorkerPool::new(threads);
                gs.set_pool(&pool);
                let mut u = u0.clone();
                gs.apply(&mut u, op, &comm);
                for i in 0..u.len() {
                    assert_eq!(
                        u_ref[i].to_bits(),
                        u[i].to_bits(),
                        "op={op:?} threads={threads} node {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_apply_records_pool_span() {
        let p = 2;
        let mesh = box_mesh(2, 1, 1, [0., 2.], [0., 1.], [0., 1.], false, false);
        let (gs, comm) = single_gs(&mesh, p);
        let tel = Telemetry::enabled();
        gs.set_telemetry(&tel);
        let pool = rbx_device::WorkerPool::new(2);
        gs.set_pool(&pool);
        let mut u = vec![1.0; gs.n_local()];
        gs.apply(&mut u, GsOp::Add, &comm);
        // Gather + scatter both run under the pooled span. A mesh this
        // small sits below the gs_groups dispatch-overhead crossover, so
        // both loops are grain-gated to the caller thread and counted in
        // `grained` rather than `dispatches`.
        assert_eq!(tel.tracer().calls("pool/gs"), 2);
        assert_eq!(tel.tracer().calls("gs/local"), 0);
        let stats = pool.stats();
        assert!(stats.dispatches + stats.grained >= 2);
    }

    #[test]
    fn telemetry_counts_local_but_no_shared_on_single_rank() {
        let p = 2;
        let mesh = box_mesh(2, 1, 1, [0., 2.], [0., 1.], [0., 1.], false, false);
        let (gs, comm) = single_gs(&mesh, p);
        let tel = Telemetry::enabled();
        gs.set_telemetry(&tel);
        let mut u = vec![1.0; gs.n_local()];
        gs.apply(&mut u, GsOp::Add, &comm);
        assert_eq!(tel.tracer().calls("gs/local"), 1);
        assert_eq!(tel.tracer().calls("gs/scatter"), 1);
        assert_eq!(tel.tracer().calls("gs/shared"), 0);
        assert_eq!(tel.metrics().counter("rbx_gs_bytes_total"), 0);
    }

    #[test]
    fn telemetry_counts_shared_traffic_across_ranks() {
        let p = 2;
        let mesh = box_mesh(2, 1, 1, [0., 2.], [0., 1.], [0., 1.], false, false);
        let part = partition_rcb(&mesh, 2);
        let lists = part_elements(&part, 2);
        let tel = Telemetry::enabled();
        let (mesh_ref, part_ref, lists_ref, tel_ref) = (&mesh, &part, &lists, &tel);
        let shared_vals = run_on_ranks(2, move |comm| {
            let my = &lists_ref[comm.rank()];
            let gs = GatherScatter::build(mesh_ref, p, part_ref, my, comm);
            gs.set_telemetry(tel_ref);
            let mut u = vec![1.0; gs.n_local()];
            gs.apply(&mut u, GsOp::Add, comm);
            gs.shared_values() as u64
        });
        let total_vals: u64 = shared_vals.iter().sum();
        assert!(total_vals > 0, "ranks must actually share nodes");
        assert_eq!(tel.tracer().calls("gs/shared"), 2);
        // Each rank counts both directions of its exchange.
        assert_eq!(
            tel.metrics().counter("rbx_gs_bytes_total"),
            2 * 8 * total_vals
        );
        assert_eq!(
            tel.tracer().counter("gs/shared", "bytes"),
            tel.metrics().counter("rbx_gs_bytes_total")
        );
        assert!(tel.metrics().counter("rbx_gs_messages_total") >= 4);
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let p = 2;
        let mesh = box_mesh(2, 1, 1, [0., 2.], [0., 1.], [0., 1.], false, false);
        let (gs, comm) = single_gs(&mesh, p);
        let tel = Telemetry::disabled();
        gs.set_telemetry(&tel);
        let mut u = vec![1.0; gs.n_local()];
        gs.apply(&mut u, GsOp::Add, &comm);
        assert!(tel.tracer().snapshot().is_empty());
    }

    #[test]
    fn neighbor_lists_are_symmetric() {
        let p = 2;
        let mesh = box_mesh(4, 1, 1, [0., 4.], [0., 1.], [0., 1.], false, false);
        let part = partition_rcb(&mesh, 4);
        let lists = part_elements(&part, 4);
        let (mesh_ref, part_ref, lists_ref) = (&mesh, &part, &lists);
        let neighbor_sets = run_on_ranks(4, move |comm| {
            let my = &lists_ref[comm.rank()];
            let gs = GatherScatter::build(mesh_ref, p, part_ref, my, comm);
            gs.neighbors()
        });
        for (r, nbrs) in neighbor_sets.iter().enumerate() {
            for &nbr in nbrs {
                assert!(
                    neighbor_sets[nbr].contains(&r),
                    "rank {nbr} missing back-edge to {r}"
                );
            }
        }
    }
}
