//! Instrumented proof of the pool's dispatch-cost contract: after
//! construction and one warm-up dispatch per job shape, a parallel region
//! performs **zero heap allocations** on the dispatching thread and spawns
//! **zero threads**. This is the property that makes the pool affordable
//! inside PCG/FGMRES, where thousands of operator applies run per step —
//! a per-dispatch allocation or spawn would dominate small solves.
//!
//! The allocation check uses a counting `#[global_allocator]` and must own
//! the whole test binary, so this file contains exactly one `#[test]`.

use rbx_device::{loop_chunk, reduce_chunk, WorkerPool};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with a global allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // ordering: relaxed — a monotonic event counter; the test reads it
        // from the same thread that increments it.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// `Threads:` line of /proc/self/status — OS threads in this process.
/// Linux-only; returns None elsewhere so the spawn check degrades to a
/// no-op instead of a false failure.
fn os_thread_count() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

#[test]
fn dispatch_is_allocation_free_and_spawns_no_threads() {
    let n = 20_000;
    let pool = WorkerPool::new(4);
    let threads_after_construction = os_thread_count();

    let data: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
    let mut out = vec![0.0f64; n];

    // Warm-up: first reduction grows the pool-owned partials buffer to
    // this job's chunk count; everything after reuses it.
    let lc = loop_chunk(n, pool.threads());
    let rc = reduce_chunk(n);
    let warm_sum = pool.sum(n, rc, |i| data[i]);
    {
        let op = rbx_device::RangePtr::new(&mut out);
        pool.for_each_range(n, lc, |s, e| {
            // SAFETY: chunk ranges are pairwise disjoint.
            let o = unsafe { op.range_mut(s, e) };
            for (k, v) in o.iter_mut().enumerate() {
                *v = data[s + k] * 2.0;
            }
        });
    }

    // Steady state: many dispatches of every job shape, zero allocations
    // observed by the dispatching thread's counter. (Workers allocate
    // nothing either, but the counter is global, so a worker allocation
    // would fail this assertion too — which is exactly the contract.)
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut bits_stable = true;
    for _ in 0..200 {
        let a = pool.sum(n, rc, |i| data[i]);
        let b = pool.sum_range(n, rc, |s, e| data[s..e].iter().sum());
        bits_stable &= a.to_bits() == warm_sum.to_bits() && b.to_bits() == warm_sum.to_bits();
        let op = rbx_device::RangePtr::new(&mut out);
        pool.for_each_range(n, lc, |s, e| {
            // SAFETY: chunk ranges are pairwise disjoint.
            let o = unsafe { op.range_mut(s, e) };
            for (k, v) in o.iter_mut().enumerate() {
                *v = data[s + k] + 1.0;
            }
        });
        pool.for_each(0, 1, |_| {});
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "steady-state pool dispatch must not allocate (saw {delta} allocations over 800 dispatches)"
    );
    assert!(
        bits_stable,
        "every steady-state reduction must reproduce the warm-up bits"
    );

    // No thread is spawned after pool construction: the OS thread count is
    // unchanged across all those dispatches (and across a pair overlap).
    pool.pair(|| {}, || {});
    if let Some(t0) = threads_after_construction {
        let t1 = os_thread_count().expect("/proc/self/status readable once means always");
        assert_eq!(
            t0, t1,
            "dispatch must reuse the persistent workers, not spawn threads"
        );
    }
}
