//! Exhaustive-interleaving model of the worker pool's epoch park/wake
//! dispatch protocol (`rbx_device::pool`), checked with the
//! [`rbx_device::explore`] schedule explorer.
//!
//! The pool's correctness claims are scheduling claims: no dispatch is
//! ever lost between a worker's epoch check and its condvar wait, the
//! active-count handshake always terminates, dynamic chunk self-scheduling
//! hands every chunk to exactly one participant, and the index-ordered
//! partials combine makes the reduction bits schedule-independent. These
//! tests encode the protocol as [`ThreadProgram`]s and let [`explore`]
//! enumerate *every* interleaving — so the properties hold on all
//! schedules, not just the ones a stress test happens to produce.
//!
//! Modelling note: in the real code the worker's `while epoch == last {
//! wait }` holds the control mutex across the check, and the dispatcher
//! bumps the epoch and notifies under the same mutex. That mutual
//! exclusion is what lets the model collapse "check + park + wake" into a
//! single atomic blocked-until-epoch-moves step
//! (`explore_lost_wakeup_without_notify_under_lock` demonstrates that the
//! collapse is load-bearing: splitting the check from the park deadlocks).

use rbx_device::explore::{explore, fingerprint_f64, StepStatus, ThreadProgram};

/// Per-chunk contribution; values chosen so a completion-order combine
/// would visibly change the floating-point sum (1e15 + 1 is exact in f64,
/// so index order gives exactly 1.0 for chunks [1e15, 1.0, -1e15]).
fn chunk_val(c: usize) -> f64 {
    [1.0e15, 1.0, -1.0e15][c % 3]
}

/// Shared state of the one-dispatcher/one-worker dispatch-round model.
#[derive(Default)]
struct Round {
    /// Bumped by the dispatcher when a job is published.
    epoch: u64,
    /// Last epoch the worker served.
    last: u64,
    /// Chunk self-scheduling cursor (`Shared::counter`).
    counter: usize,
    /// Workers still running the current epoch (`Ctrl::active`).
    active: usize,
    /// Index-ordered reduction partials (one writer per cell).
    partials: Vec<f64>,
    /// The dispatcher's combined result, written after the handshake.
    result: f64,
    /// Rounds the worker has served (must equal epochs published).
    served: u64,
}

const NCHUNKS: usize = 3;

/// One claim iteration of `run_job`: `fetch_add` the cursor and, if the
/// chunk exists, fill its partial. The fetch_add plus the disjoint-slot
/// write is one atomic model step (no other thread touches that slot).
fn claim(s: &mut Round) {
    let c = s.counter;
    s.counter += 1;
    if c < NCHUNKS {
        s.partials[c] = chunk_val(c);
    }
}

/// Build the dispatcher and worker programs for `rounds` back-to-back
/// dispatches over `NCHUNKS` chunks each.
fn dispatch_model(rounds: usize) -> (Round, Vec<ThreadProgram<'static, Round>>) {
    let state = Round {
        partials: vec![0.0; NCHUNKS],
        ..Default::default()
    };
    let mut worker = ThreadProgram::new("worker");
    let mut dispatcher = ThreadProgram::new("dispatcher");
    for _ in 0..rounds {
        // Worker: park until the epoch moves (atomic check-and-wait — the
        // condvar holds the control mutex), claim until the cursor runs
        // past the end, then report completion.
        worker = worker.step(|s: &mut Round| {
            if s.epoch == s.last {
                return StepStatus::Blocked;
            }
            s.last = s.epoch;
            s.served += 1;
            StepStatus::Ran
        });
        for _ in 0..NCHUNKS + 1 {
            worker = worker.run(claim);
        }
        worker = worker.run(|s: &mut Round| s.active -= 1);

        // Dispatcher: reset the cursor (outside the lock — legal because
        // the previous handshake already drained every participant), then
        // publish the job and notify under the lock, participate in the
        // claims, and combine partials in index order once active == 0.
        dispatcher = dispatcher.run(|s: &mut Round| {
            s.counter = 0;
            s.partials.iter_mut().for_each(|p| *p = 0.0);
        });
        dispatcher = dispatcher.run(|s: &mut Round| {
            s.active = 1;
            s.epoch += 1;
        });
        for _ in 0..NCHUNKS + 1 {
            dispatcher = dispatcher.run(claim);
        }
        dispatcher = dispatcher.step(|s: &mut Round| {
            if s.active != 0 {
                return StepStatus::Blocked;
            }
            let mut acc = 0.0;
            for &p in &s.partials {
                acc += p;
            }
            s.result += acc;
            StepStatus::Ran
        });
    }
    (state, vec![dispatcher, worker])
}

/// One full dispatch: every interleaving of claims and the completion
/// handshake terminates and combines to the same bits (1.0 exactly, the
/// index-ordered sum — a completion-order combine could give 0.0).
#[test]
fn explore_dispatch_round_deterministic_and_deadlock_free() {
    let report = explore(
        || dispatch_model(1),
        |s| fingerprint_f64(&[s.result, s.served as f64]),
        1_000_000,
    );
    assert!(report.is_deterministic(), "{report:?}");
    assert_eq!(
        report.outcomes,
        vec![fingerprint_f64(&[1.0, 1.0])],
        "index-ordered combine must yield exactly 1e15 + 1.0 - 1e15 = 1.0"
    );
}

/// Two back-to-back dispatches through the same parked worker: the epoch
/// bump wakes it exactly once per dispatch (no double-serve, no missed
/// serve), and the second round's cursor reset never races the first
/// round's claims because the active-count handshake orders them.
#[test]
fn explore_epoch_reuse_serves_each_dispatch_exactly_once() {
    let report = explore(
        || dispatch_model(2),
        |s| fingerprint_f64(&[s.result, s.served as f64]),
        5_000_000,
    );
    assert!(report.is_deterministic(), "{report:?}");
    assert_eq!(report.outcomes, vec![fingerprint_f64(&[2.0, 2.0])]);
}

/// Shared state of the park/wake wakeup models.
#[derive(Default)]
struct Wake {
    epoch: u64,
    last: u64,
    /// Worker's cached verdict from its epoch check.
    saw_work: bool,
    /// Worker has registered on the condvar.
    waiting: bool,
    /// A notify reached a registered waiter.
    woken: bool,
    served: u64,
}

/// The protocol as implemented: the epoch check and the condvar
/// registration are one atomic step (the worker holds the control mutex
/// across both), and the dispatcher publishes + notifies under that same
/// mutex. No interleaving can lose the wakeup.
#[test]
fn explore_wake_protocol_notify_under_lock_never_loses_wakeup() {
    let report = explore(
        || {
            let worker = ThreadProgram::new("worker")
                // check-and-park, atomic under the control mutex
                .run(|s: &mut Wake| {
                    s.saw_work = s.epoch != s.last;
                    if !s.saw_work {
                        s.waiting = true;
                    }
                })
                .step(|s: &mut Wake| {
                    if !(s.saw_work || s.woken) {
                        return StepStatus::Blocked;
                    }
                    s.waiting = false;
                    s.woken = false;
                    s.last = s.epoch;
                    s.served += 1;
                    StepStatus::Ran
                });
            // publish + notify, atomic under the control mutex
            let dispatcher = ThreadProgram::new("dispatcher").run(|s: &mut Wake| {
                s.epoch += 1;
                if s.waiting {
                    s.woken = true;
                }
            });
            (Wake::default(), vec![dispatcher, worker])
        },
        |s| fingerprint_f64(&[s.served as f64]),
        100_000,
    );
    assert!(report.is_deterministic(), "{report:?}");
    assert_eq!(report.outcomes, vec![fingerprint_f64(&[1.0])]);
}

/// The bug the mutex discipline prevents: split the epoch check from the
/// condvar registration (as if the worker released the lock between the
/// two) and the classic lost-wakeup interleaving appears — check sees the
/// old epoch, the dispatcher publishes and notifies into the void, the
/// worker then parks forever. The explorer must find that deadlock; this
/// is the regression guard for "notify under the lock" in
/// `pool::run_erased` and `pool::pair`.
#[test]
fn explore_lost_wakeup_without_notify_under_lock() {
    let report = explore(
        || {
            let worker = ThreadProgram::new("worker")
                .run(|s: &mut Wake| s.saw_work = s.epoch != s.last) // check…
                .run(|s: &mut Wake| {
                    if !s.saw_work {
                        s.waiting = true; // …then register, NOT atomic
                    }
                })
                .step(|s: &mut Wake| {
                    if !(s.saw_work || s.woken) {
                        return StepStatus::Blocked;
                    }
                    s.last = s.epoch;
                    s.served += 1;
                    StepStatus::Ran
                });
            let dispatcher = ThreadProgram::new("dispatcher").run(|s: &mut Wake| {
                s.epoch += 1;
                if s.waiting {
                    s.woken = true;
                }
            });
            (Wake::default(), vec![dispatcher, worker])
        },
        |s| fingerprint_f64(&[s.served as f64]),
        100_000,
    );
    assert!(
        report.deadlocks > 0,
        "the split check/park variant must exhibit a lost wakeup: {report:?}"
    );
    assert!(!report.is_deterministic());
}

/// The pair helper's done-epoch handshake ([`rbx_device::WorkerPool::pair`]):
/// caller publishes an epoch and blocks until `done` catches up; the
/// helper serves the epoch and acks. Every interleaving — including the
/// helper still acking the previous epoch when the next is published —
/// runs both sides exactly once per pair call and terminates.
#[test]
fn explore_pair_done_handshake_terminates() {
    #[derive(Default)]
    struct Pair {
        epoch: u64,
        done: u64,
        helper_last: u64,
        a_runs: u64,
        b_runs: u64,
    }
    let report = explore(
        || {
            let mut caller = ThreadProgram::new("caller");
            let mut helper = ThreadProgram::new("helper");
            for _ in 0..2 {
                caller = caller
                    .run(|s: &mut Pair| s.epoch += 1) // publish + notify
                    .run(|s: &mut Pair| s.b_runs += 1) // run B inline
                    .step(|s: &mut Pair| {
                        if s.done != s.epoch {
                            return StepStatus::Blocked;
                        }
                        StepStatus::Ran
                    });
                helper = helper
                    .step(|s: &mut Pair| {
                        if s.epoch == s.helper_last {
                            return StepStatus::Blocked;
                        }
                        s.helper_last = s.epoch;
                        StepStatus::Ran
                    })
                    .run(|s: &mut Pair| s.a_runs += 1) // run A
                    .run(|s: &mut Pair| s.done = s.helper_last); // ack
            }
            (Pair::default(), vec![caller, helper])
        },
        |s| fingerprint_f64(&[s.a_runs as f64, s.b_runs as f64]),
        1_000_000,
    );
    assert!(report.is_deterministic(), "{report:?}");
    assert_eq!(report.outcomes, vec![fingerprint_f64(&[2.0, 2.0])]);
}
