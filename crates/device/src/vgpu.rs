//! Virtual GPU: GPU-like scheduling semantics on CPU threads.
//!
//! Models the execution behaviour the paper's task-parallel additive
//! Schwarz preconditioner exploits (§5.3, Fig. 2):
//!
//! * **asynchronous launches** — `Stream::launch` costs the host thread a
//!   configurable *launch latency* (the driver/launch overhead that the
//!   paper notes "throttles GPU execution" for the coarse-grid solve) and
//!   returns before the kernel runs;
//! * **in-order streams** — kernels on a stream execute FIFO, kernels on
//!   different streams may overlap;
//! * **stream priorities** — when executor slots are contended the highest
//!   priority runnable stream wins, mirroring the CUDA stream priorities
//!   the paper needs on NVIDIA hardware to let small coarse-solve kernels
//!   progress next to large smoother kernels;
//! * **bounded executors** — a fixed number of concurrent kernel slots
//!   models the finite device;
//! * **events** — recorded on one stream, waitable by another stream or by
//!   the host, for cross-stream dependencies;
//! * **tracing** — every kernel execution is recorded `(worker, stream,
//!   name, start, end)` so a Fig. 2-style timeline can be printed.
//!
//! Kernels are real closures: the overlapped preconditioner runs its real
//! math under these constraints.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Relative priority of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StreamPriority {
    /// Default priority.
    Normal,
    /// Scheduled ahead of `Normal` work when executors are contended.
    High,
}

/// Configuration of the virtual device.
#[derive(Debug, Clone, Copy)]
pub struct VgpuConfig {
    /// Host-side cost of each `launch` call (kernel-launch latency).
    pub launch_latency: Duration,
    /// Number of kernels that may execute concurrently.
    pub executors: usize,
}

impl Default for VgpuConfig {
    fn default() -> Self {
        Self {
            launch_latency: Duration::from_micros(8),
            executors: 2,
        }
    }
}

/// One kernel-execution span for timeline output.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Executor slot that ran the kernel.
    pub worker: usize,
    /// Stream the kernel was launched on.
    pub stream: usize,
    /// Kernel label.
    pub name: String,
    /// Seconds from device creation when execution began.
    pub start: f64,
    /// Seconds from device creation when execution finished.
    pub end: f64,
}

struct EventInner {
    signaled: Mutex<bool>,
    cv: Condvar,
}

/// A recorded device event.
#[derive(Clone)]
pub struct Event {
    inner: Arc<EventInner>,
}

impl Event {
    fn new() -> Self {
        Self {
            inner: Arc::new(EventInner {
                signaled: Mutex::new(false),
                cv: Condvar::new(),
            }),
        }
    }

    /// True once all work queued on the recording stream before the record
    /// point has completed.
    pub fn query(&self) -> bool {
        *self.inner.signaled.lock()
    }

    /// Block the host until the event signals.
    pub fn wait(&self) {
        let mut sig = self.inner.signaled.lock();
        while !*sig {
            self.inner.cv.wait(&mut sig);
        }
    }

    fn signal(&self) {
        let mut sig = self.inner.signaled.lock();
        *sig = true;
        self.inner.cv.notify_all();
    }
}

enum Task {
    Kernel {
        name: String,
        work: Box<dyn FnOnce() + Send>,
    },
    RecordEvent(Event),
    WaitEvent(Event),
}

struct StreamState {
    queue: VecDeque<Task>,
    busy: bool,
    priority: StreamPriority,
}

struct State {
    streams: Vec<StreamState>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Wakes executor workers when new work may be runnable.
    work_cv: Condvar,
    /// Wakes host threads blocked in `synchronize`.
    host_cv: Condvar,
    trace: Mutex<Vec<TraceEvent>>,
    epoch: Instant,
}

/// The virtual device. Dropping it shuts down the executor threads after
/// draining queued work.
pub struct VirtualGpu {
    inner: Arc<Inner>,
    config: VgpuConfig,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl VirtualGpu {
    /// Bring up a device with the given scheduling parameters.
    pub fn new(config: VgpuConfig) -> Self {
        assert!(config.executors >= 1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                streams: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            host_cv: Condvar::new(),
            trace: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        });
        let workers = (0..config.executors)
            .map(|worker_id| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("vgpu-exec-{worker_id}"))
                    .spawn(move || executor_loop(&inner, worker_id))
                    .expect("spawn vgpu executor")
            })
            .collect();
        Self {
            inner,
            config,
            workers,
        }
    }

    /// Create a stream with the given priority.
    pub fn stream(&self, priority: StreamPriority) -> Stream {
        let mut state = self.inner.state.lock();
        state.streams.push(StreamState {
            queue: VecDeque::new(),
            busy: false,
            priority,
        });
        Stream {
            inner: self.inner.clone(),
            id: state.streams.len() - 1,
            launch_latency: self.config.launch_latency,
        }
    }

    /// Block until every stream is idle with an empty queue.
    pub fn synchronize(&self) {
        let mut state = self.inner.state.lock();
        while state.streams.iter().any(|s| s.busy || !s.queue.is_empty()) {
            self.inner.host_cv.wait(&mut state);
        }
    }

    /// Snapshot of all kernel-execution spans so far.
    pub fn trace(&self) -> Vec<TraceEvent> {
        self.inner.trace.lock().clone()
    }

    /// Clear the recorded trace.
    pub fn clear_trace(&self) {
        self.inner.trace.lock().clear();
    }

    /// Seconds since device creation (the trace time base).
    pub fn now(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64()
    }

    /// The device configuration.
    pub fn config(&self) -> VgpuConfig {
        self.config
    }
}

impl Drop for VirtualGpu {
    fn drop(&mut self) {
        self.synchronize();
        {
            let mut state = self.inner.state.lock();
            state.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// An in-order command queue on the virtual device.
#[derive(Clone)]
pub struct Stream {
    inner: Arc<Inner>,
    id: usize,
    launch_latency: Duration,
}

impl Stream {
    /// Stream id (index in the trace).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Enqueue a kernel. Costs the calling thread the device's launch
    /// latency, then returns; the kernel runs asynchronously in stream
    /// order.
    pub fn launch(&self, name: impl Into<String>, work: impl FnOnce() + Send + 'static) {
        // Host-side launch overhead (driver cost): burn real host time so
        // that launching N kernels from one thread costs N·latency, which
        // is exactly the effect the task-parallel formulation hides.
        busy_wait(self.launch_latency);
        let mut state = self.inner.state.lock();
        state.streams[self.id].queue.push_back(Task::Kernel {
            name: name.into(),
            work: Box::new(work),
        });
        self.inner.work_cv.notify_all();
    }

    /// Record an event that signals when all prior work on this stream has
    /// completed.
    pub fn record_event(&self) -> Event {
        let ev = Event::new();
        let mut state = self.inner.state.lock();
        state.streams[self.id]
            .queue
            .push_back(Task::RecordEvent(ev.clone()));
        self.inner.work_cv.notify_all();
        ev
    }

    /// Make this stream wait (device-side) for `event` before running any
    /// later work.
    pub fn wait_event(&self, event: &Event) {
        let mut state = self.inner.state.lock();
        state.streams[self.id]
            .queue
            .push_back(Task::WaitEvent(event.clone()));
        self.inner.work_cv.notify_all();
    }

    /// Block the host until this stream is idle with an empty queue.
    pub fn synchronize(&self) {
        let mut state = self.inner.state.lock();
        while state.streams[self.id].busy || !state.streams[self.id].queue.is_empty() {
            self.inner.host_cv.wait(&mut state);
        }
    }
}

fn executor_loop(inner: &Inner, worker_id: usize) {
    {
        let mut state = inner.state.lock();
        loop {
            if state.shutdown {
                return;
            }
            // Resolve any head-of-queue event records/waits (cheap; under
            // the lock) and look for the highest-priority runnable kernel.
            if let Some(sid) = pick_runnable(&mut state, inner) {
                let task = state.streams[sid]
                    .queue
                    .pop_front()
                    .expect("queue non-empty");
                state.streams[sid].busy = true;
                drop(state);
                if let Task::Kernel { name, work } = task {
                    let start = inner.epoch.elapsed().as_secs_f64();
                    work();
                    let end = inner.epoch.elapsed().as_secs_f64();
                    inner.trace.lock().push(TraceEvent {
                        worker: worker_id,
                        stream: sid,
                        name,
                        start,
                        end,
                    });
                } else {
                    unreachable!("pick_runnable only returns kernel heads");
                }
                let mut state2 = inner.state.lock();
                state2.streams[sid].busy = false;
                inner.work_cv.notify_all();
                inner.host_cv.notify_all();
                state = state2;
                continue;
            }
            inner.work_cv.wait(&mut state);
        }
    }
}

/// Resolve event tasks at queue heads, then return the stream id of the
/// highest-priority stream whose head is a runnable kernel.
fn pick_runnable(state: &mut State, inner: &Inner) -> Option<usize> {
    // First pass: drain RecordEvent heads and satisfied WaitEvent heads.
    let mut progressed = true;
    while progressed {
        progressed = false;
        for s in state.streams.iter_mut() {
            if s.busy {
                continue;
            }
            while let Some(front) = s.queue.front() {
                match front {
                    Task::RecordEvent(_) => {
                        if let Some(Task::RecordEvent(ev)) = s.queue.pop_front() {
                            ev.signal();
                            inner.host_cv.notify_all();
                            progressed = true;
                        }
                    }
                    Task::WaitEvent(ev) => {
                        if ev.query() {
                            s.queue.pop_front();
                            progressed = true;
                        } else {
                            break;
                        }
                    }
                    Task::Kernel { .. } => break,
                }
            }
        }
    }
    // Second pass: pick the best runnable kernel head.
    let mut best: Option<(StreamPriority, usize)> = None;
    for (sid, s) in state.streams.iter().enumerate() {
        if s.busy {
            continue;
        }
        if matches!(s.queue.front(), Some(Task::Kernel { .. })) {
            let candidate = (s.priority, sid);
            best = match best {
                None => Some(candidate),
                // Higher priority wins; ties go to the lower stream id.
                Some((bp, bs)) => {
                    if candidate.0 > bp {
                        Some(candidate)
                    } else {
                        Some((bp, bs))
                    }
                }
            };
        }
    }
    best.map(|(_, sid)| sid)
}

/// Spin the calling thread for `d` (sub-millisecond precision, unlike
/// `thread::sleep`); models both launch latencies and synthetic kernel
/// durations in benchmarks.
pub fn busy_wait(d: Duration) {
    if d.is_zero() {
        return;
    }
    let t0 = Instant::now();
    while t0.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn quick_cfg(executors: usize) -> VgpuConfig {
        VgpuConfig {
            launch_latency: Duration::from_micros(1),
            executors,
        }
    }

    #[test]
    fn kernels_on_one_stream_run_in_order() {
        let gpu = VirtualGpu::new(quick_cfg(2));
        let stream = gpu.stream(StreamPriority::Normal);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10 {
            let log = log.clone();
            stream.launch(format!("k{i}"), move || log.lock().push(i));
        }
        stream.synchronize();
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn two_streams_overlap() {
        let gpu = VirtualGpu::new(quick_cfg(2));
        let s1 = gpu.stream(StreamPriority::Normal);
        let s2 = gpu.stream(StreamPriority::Normal);
        let t0 = Instant::now();
        let work = Duration::from_millis(30);
        s1.launch("a", move || busy_wait(work));
        s2.launch("b", move || busy_wait(work));
        gpu.synchronize();
        let wall = t0.elapsed();
        assert!(
            wall < Duration::from_millis(55),
            "no overlap: wall = {wall:?} for 2×30 ms kernels on 2 executors"
        );
    }

    #[test]
    fn single_executor_serializes() {
        let gpu = VirtualGpu::new(quick_cfg(1));
        let s1 = gpu.stream(StreamPriority::Normal);
        let s2 = gpu.stream(StreamPriority::Normal);
        let t0 = Instant::now();
        let work = Duration::from_millis(20);
        s1.launch("a", move || busy_wait(work));
        s2.launch("b", move || busy_wait(work));
        gpu.synchronize();
        assert!(t0.elapsed() >= Duration::from_millis(39));
    }

    #[test]
    fn high_priority_stream_scheduled_first() {
        // One executor busy with a long kernel; a high- and a low-priority
        // kernel are queued behind it. The high one must run first.
        let gpu = VirtualGpu::new(quick_cfg(1));
        let low = gpu.stream(StreamPriority::Normal);
        let high = gpu.stream(StreamPriority::High);
        let order = Arc::new(Mutex::new(Vec::new()));
        low.launch("blocker", || busy_wait(Duration::from_millis(30)));
        {
            let order = order.clone();
            low.launch("low", move || order.lock().push("low"));
        }
        {
            let order = order.clone();
            high.launch("high", move || order.lock().push("high"));
        }
        gpu.synchronize();
        assert_eq!(order.lock().as_slice(), &["high", "low"]);
    }

    #[test]
    fn event_cross_stream_dependency() {
        let gpu = VirtualGpu::new(quick_cfg(2));
        let producer = gpu.stream(StreamPriority::Normal);
        let consumer = gpu.stream(StreamPriority::Normal);
        let value = Arc::new(AtomicUsize::new(0));
        {
            let value = value.clone();
            producer.launch("produce", move || {
                busy_wait(Duration::from_millis(10));
                value.store(7, Ordering::SeqCst);
            });
        }
        let ev = producer.record_event();
        consumer.wait_event(&ev);
        let seen = Arc::new(AtomicUsize::new(0));
        {
            let value = value.clone();
            let seen = seen.clone();
            consumer.launch("consume", move || {
                seen.store(value.load(Ordering::SeqCst), Ordering::SeqCst);
            });
        }
        gpu.synchronize();
        assert_eq!(seen.load(Ordering::SeqCst), 7);
        assert!(ev.query());
    }

    #[test]
    fn host_event_wait() {
        let gpu = VirtualGpu::new(quick_cfg(1));
        let s = gpu.stream(StreamPriority::Normal);
        s.launch("w", || busy_wait(Duration::from_millis(5)));
        let ev = s.record_event();
        ev.wait();
        assert!(ev.query());
    }

    #[test]
    fn trace_records_spans() {
        let gpu = VirtualGpu::new(quick_cfg(2));
        let s = gpu.stream(StreamPriority::Normal);
        s.launch("alpha", || busy_wait(Duration::from_millis(2)));
        s.launch("beta", || busy_wait(Duration::from_millis(2)));
        gpu.synchronize();
        let trace = gpu.trace();
        assert_eq!(trace.len(), 2);
        let alpha = trace.iter().find(|t| t.name == "alpha").unwrap();
        let beta = trace.iter().find(|t| t.name == "beta").unwrap();
        assert!(alpha.end <= beta.start + 1e-9, "in-order violated");
        assert!(alpha.end > alpha.start);
        gpu.clear_trace();
        assert!(gpu.trace().is_empty());
    }

    #[test]
    fn launch_latency_costs_host_time() {
        let cfg = VgpuConfig {
            launch_latency: Duration::from_millis(2),
            executors: 2,
        };
        let gpu = VirtualGpu::new(cfg);
        let s = gpu.stream(StreamPriority::Normal);
        let t0 = Instant::now();
        for _ in 0..5 {
            s.launch("nop", || {});
        }
        let host_cost = t0.elapsed();
        gpu.synchronize();
        assert!(
            host_cost >= Duration::from_millis(9),
            "host paid only {host_cost:?}"
        );
    }

    #[test]
    fn drop_drains_queued_work() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let gpu = VirtualGpu::new(quick_cfg(1));
            let s = gpu.stream(StreamPriority::Normal);
            for _ in 0..4 {
                let done = done.clone();
                s.launch("inc", move || {
                    busy_wait(Duration::from_millis(1));
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop without explicit synchronize.
        }
        assert_eq!(done.load(Ordering::SeqCst), 4);
    }
}
