//! # rbx-device — device abstraction layer
//!
//! Neko interfaces with accelerators through a device abstraction layer
//! that manages memory, transfers and kernel launches, with CUDA/HIP/OpenCL
//! implementations behind it (paper §5.1). No GPUs exist in this
//! environment, so per DESIGN.md the layer is backed by:
//!
//! * [`host`] — immediate, synchronous execution (the reference backend);
//! * [`pool`] — a data-parallel worker pool over OS threads for
//!   element-loop kernels;
//! * [`vgpu`] — a **virtual GPU** reproducing the *scheduling semantics*
//!   the paper's task-overlapped preconditioner exploits: asynchronous
//!   kernel launches with a host-side launch latency, in-order streams,
//!   stream priorities, events, and a bounded number of concurrent
//!   executor slots. Kernels are real Rust closures, so the overlapped
//!   additive-Schwarz code path runs the real math under GPU-like
//!   scheduling constraints, and the Fig. 2 experiment (launch-latency
//!   hiding + coarse/fine overlap) is measurable.

pub mod desim;
pub mod explore;
pub mod host;
pub mod pool;
pub mod tuning;
pub mod vgpu;

pub use desim::{simulate, SimConfig, SimKernel, SimResult};
pub use host::HostBackend;
pub use pool::{
    global_pool, loop_chunk, par_for, par_reduce, reduce_chunk, PoolStats, RangePtr, WorkerPool,
};
pub use tuning::{set_tuning, tuning, KernelTuning};
pub use vgpu::{busy_wait, Event, Stream, StreamPriority, TraceEvent, VgpuConfig, VirtualGpu};
