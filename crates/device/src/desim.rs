//! Discrete-event device simulator (virtual time).
//!
//! The threaded [`crate::vgpu`] executes real closures under GPU-like
//! scheduling constraints — ideal for semantics tests, but its wall-clock
//! timings depend on how many host cores exist. This module simulates the
//! same semantics in **virtual time**: kernels carry declared durations,
//! host threads issue launches with a per-launch latency, streams execute
//! in order on a bounded set of executors with priorities. Results are
//! exact, deterministic, and host-independent — this is what the Fig. 2
//! experiment measures.
//!
//! Model:
//! * each **host thread** issues its launch list sequentially; issuing a
//!   launch costs the host `launch_latency`; the kernel becomes available
//!   to the device at the host's issue completion time;
//! * each **stream** runs its kernels FIFO;
//! * at most `executors` kernels run concurrently;
//! * under contention, the runnable head with the earliest feasible start
//!   wins; ties go to the higher-priority stream (CUDA-priority
//!   behaviour).

use crate::vgpu::{StreamPriority, TraceEvent};

/// One kernel to launch: target stream and execution duration (µs).
#[derive(Debug, Clone)]
pub struct SimKernel {
    /// Stream index the kernel is launched onto.
    pub stream: usize,
    /// Kernel label (for the trace).
    pub name: String,
    /// Device execution time, µs.
    pub duration_us: f64,
}

/// Simulation input: device shape plus per-host-thread launch sequences.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Concurrent executor slots.
    pub executors: usize,
    /// Host-side cost per launch, µs.
    pub launch_latency_us: f64,
    /// Priority of each stream (index = stream id).
    pub stream_priorities: Vec<StreamPriority>,
}

/// Simulation output.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Virtual makespan, µs (last kernel completion).
    pub makespan_us: f64,
    /// Executed spans (times in µs in the `start`/`end` fields).
    pub trace: Vec<TraceEvent>,
    /// Device busy time per executor, µs.
    pub executor_busy_us: Vec<f64>,
}

impl SimResult {
    /// Device utilization: busy time over (executors × makespan).
    pub fn utilization(&self) -> f64 {
        let busy: f64 = self.executor_busy_us.iter().sum();
        busy / (self.executor_busy_us.len() as f64 * self.makespan_us.max(1e-300))
    }
}

/// Run the simulation. `host_threads[h]` is the launch sequence issued by
/// host thread `h` (all host threads start at t = 0, as in an OpenMP
/// parallel region).
pub fn simulate(config: &SimConfig, host_threads: &[Vec<SimKernel>]) -> SimResult {
    assert!(config.executors >= 1);
    let nstreams = config.stream_priorities.len();

    // 1. Host phase: compute each kernel's availability time.
    #[derive(Debug)]
    struct Pending {
        name: String,
        duration: f64,
        available_at: f64,
    }
    let mut queues: Vec<std::collections::VecDeque<Pending>> =
        (0..nstreams).map(|_| Default::default()).collect();
    for launches in host_threads {
        let mut clock = 0.0;
        for k in launches {
            assert!(k.stream < nstreams, "kernel targets unknown stream");
            clock += config.launch_latency_us;
            queues[k.stream].push_back(Pending {
                name: k.name.clone(),
                duration: k.duration_us,
                available_at: clock,
            });
        }
    }

    // 2. Device phase: in-order streams, bounded executors, priority ties.
    let mut exec_free = vec![0.0f64; config.executors];
    let mut exec_busy = vec![0.0f64; config.executors];
    let mut stream_last_end = vec![0.0f64; nstreams];
    let mut trace = Vec::new();
    let mut makespan = 0.0f64;

    loop {
        // Candidate = head of each non-empty stream.
        let mut best: Option<(f64, std::cmp::Reverse<StreamPriority>, usize, usize)> = None;
        for s in 0..nstreams {
            if let Some(head) = queues[s].front() {
                // Earliest executor.
                let (ex, ex_free) = exec_free
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                    .map(|(i, &t)| (i, t))
                    .expect("at least one executor");
                let start = head.available_at.max(stream_last_end[s]).max(ex_free);
                let key = (start, std::cmp::Reverse(config.stream_priorities[s]), s, ex);
                best = match best {
                    None => Some(key),
                    Some(b) if key < b => Some(key),
                    other => other,
                };
            }
        }
        let Some((start, _, s, ex)) = best else { break };
        let head = queues[s].pop_front().expect("candidate head exists");
        let end = start + head.duration;
        exec_free[ex] = end;
        exec_busy[ex] += head.duration;
        stream_last_end[s] = end;
        makespan = makespan.max(end);
        trace.push(TraceEvent {
            worker: ex,
            stream: s,
            name: head.name,
            start,
            end,
        });
    }

    SimResult {
        makespan_us: makespan,
        trace,
        executor_busy_us: exec_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(stream: usize, name: &str, us: f64) -> SimKernel {
        SimKernel {
            stream,
            name: name.into(),
            duration_us: us,
        }
    }

    fn cfg(executors: usize, latency: f64, prios: &[StreamPriority]) -> SimConfig {
        SimConfig {
            executors,
            launch_latency_us: latency,
            stream_priorities: prios.to_vec(),
        }
    }

    #[test]
    fn single_stream_serializes_and_pays_latency() {
        let c = cfg(2, 5.0, &[StreamPriority::Normal]);
        let launches = vec![vec![
            kernel(0, "a", 10.0),
            kernel(0, "b", 10.0),
            kernel(0, "c", 10.0),
        ]];
        let r = simulate(&c, &launches);
        // First kernel available at 5 (one launch), runs 10; later kernels
        // are ready before the stream frees, so back-to-back: 5 + 30 = 35.
        assert!((r.makespan_us - 35.0).abs() < 1e-9, "{}", r.makespan_us);
        // In-order.
        assert!(r.trace[0].end <= r.trace[1].start + 1e-12);
    }

    #[test]
    fn two_streams_overlap_on_two_executors() {
        let c = cfg(2, 1.0, &[StreamPriority::Normal, StreamPriority::Normal]);
        let launches = vec![vec![kernel(0, "A", 100.0)], vec![kernel(1, "B", 100.0)]];
        let r = simulate(&c, &launches);
        assert!((r.makespan_us - 101.0).abs() < 1e-9, "{}", r.makespan_us);
        assert!(r.utilization() > 0.9);
    }

    #[test]
    fn one_executor_serializes_two_streams() {
        let c = cfg(1, 1.0, &[StreamPriority::Normal, StreamPriority::Normal]);
        let launches = vec![vec![kernel(0, "A", 100.0)], vec![kernel(1, "B", 100.0)]];
        let r = simulate(&c, &launches);
        assert!((r.makespan_us - 201.0).abs() < 1e-9, "{}", r.makespan_us);
    }

    #[test]
    fn priority_wins_ties() {
        // Both heads feasible at t = 1 on the single executor; the High
        // stream must run first.
        let c = cfg(1, 1.0, &[StreamPriority::Normal, StreamPriority::High]);
        let launches = vec![vec![kernel(0, "low", 10.0)], vec![kernel(1, "high", 10.0)]];
        let r = simulate(&c, &launches);
        let high = r.trace.iter().find(|t| t.name == "high").unwrap();
        let low = r.trace.iter().find(|t| t.name == "low").unwrap();
        assert!(high.start < low.start, "high {high:?} vs low {low:?}");
    }

    #[test]
    fn launch_latency_throttles_single_host_thread() {
        // 20 tiny kernels from one host thread: makespan dominated by the
        // host issue rate, not execution.
        let c = cfg(2, 10.0, &[StreamPriority::Normal]);
        let launches = vec![(0..20).map(|i| kernel(0, &format!("k{i}"), 1.0)).collect()];
        let r = simulate(&c, &launches);
        assert!(
            (r.makespan_us - (20.0 * 10.0 + 1.0)).abs() < 1e-9,
            "{}",
            r.makespan_us
        );
    }

    #[test]
    fn dual_host_threads_hide_launch_latency() {
        // Same 20 kernels split over two host threads + two streams:
        // the issue streams proceed concurrently.
        let c = cfg(2, 10.0, &[StreamPriority::Normal, StreamPriority::Normal]);
        let launches: Vec<Vec<SimKernel>> = vec![
            (0..10).map(|i| kernel(0, &format!("a{i}"), 1.0)).collect(),
            (0..10).map(|i| kernel(1, &format!("b{i}"), 1.0)).collect(),
        ];
        let r = simulate(&c, &launches);
        assert!(
            (r.makespan_us - (10.0 * 10.0 + 1.0)).abs() < 1e-9,
            "{}",
            r.makespan_us
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let c = cfg(2, 3.0, &[StreamPriority::High, StreamPriority::Normal]);
        let launches = vec![
            (0..15)
                .map(|i| kernel(0, &format!("c{i}"), 12.0))
                .collect::<Vec<_>>(),
            (0..4).map(|i| kernel(1, &format!("F{i}"), 80.0)).collect(),
        ];
        let a = simulate(&c, &launches);
        let b = simulate(&c, &launches);
        assert_eq!(a.makespan_us, b.makespan_us);
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.iter().zip(&b.trace) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.name, y.name);
        }
    }

    #[test]
    fn trace_respects_executor_capacity() {
        // 4 streams, 2 executors: at no virtual instant may more than two
        // kernels be executing.
        let c = cfg(2, 0.5, &[StreamPriority::Normal; 4]);
        let launches: Vec<Vec<SimKernel>> = (0..4)
            .map(|s| {
                (0..5)
                    .map(|i| kernel(s, &format!("s{s}k{i}"), 7.0))
                    .collect()
            })
            .collect();
        let r = simulate(&c, &launches);
        let mut events: Vec<(f64, i32)> = Vec::new();
        for t in &r.trace {
            events.push((t.start, 1));
            events.push((t.end, -1));
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)) // ends before starts at equal times
        });
        let mut active = 0;
        for (_, d) in events {
            active += d;
            assert!(active <= 2, "more kernels active than executors");
        }
        assert_eq!(r.trace.len(), 20);
    }
}
