//! Deterministic schedule explorer: exhaustive interleaving checks.
//!
//! [`crate::desim`] answers *how long* a concurrent schedule takes in
//! virtual time; this module answers whether a concurrent algorithm is
//! *correct under every schedule*. A concurrent computation is modelled as
//! a set of [`ThreadProgram`]s — sequential step lists over shared state —
//! and [`explore`] enumerates **all** interleavings by depth-first search,
//! replaying the computation from scratch for every schedule prefix so no
//! state cloning is required. Each complete schedule is reduced to a
//! fingerprint of the final state; the run is declared deterministic only
//! when every interleaving reaches the same fingerprint and none
//! deadlocks.
//!
//! This is the harness behind the repo's strongest concurrency claim (the
//! paper's §5.3 overlapped Schwarz apply and the [`crate::pool`]
//! self-scheduling counter): bitwise-identical results on *every*
//! schedule, not just the schedules the host OS happened to produce while
//! a stress test ran.
//!
//! Model semantics:
//! * a step is atomic: the scheduler never preempts inside a step, so
//!   steps should be cut at every shared-memory interaction whose
//!   interleaving matters (one atomic access, one lock acquisition, one
//!   message);
//! * a step may return [`StepStatus::Blocked`] to model waiting (a lock
//!   held elsewhere, a not-yet-filled channel). A blocked step **must not
//!   mutate state**; it is retried when the scheduler next picks its
//!   thread;
//! * a schedule where unfinished threads exist but every one is blocked is
//!   a deadlock and is reported as such.

/// Outcome of attempting one step of a thread program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// The step executed; the thread advances to its next step.
    Ran,
    /// The step cannot make progress yet; the thread stays on this step.
    /// A blocked step must leave the shared state untouched.
    Blocked,
}

/// One boxed step of a [`ThreadProgram`].
type Step<'a, S> = Box<dyn FnMut(&mut S) -> StepStatus + 'a>;

/// A sequential list of atomic steps executed against shared state `S`.
pub struct ThreadProgram<'a, S> {
    /// Thread label (used in reports and panic messages).
    pub name: String,
    steps: Vec<Step<'a, S>>,
}

impl<'a, S> ThreadProgram<'a, S> {
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Append a step that may block.
    pub fn step(mut self, f: impl FnMut(&mut S) -> StepStatus + 'a) -> Self {
        self.steps.push(Box::new(f));
        self
    }

    /// Append a step that always runs.
    pub fn run(self, mut f: impl FnMut(&mut S) + 'a) -> Self {
        self.step(move |s| {
            f(s);
            StepStatus::Ran
        })
    }

    /// Number of steps in the program.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Result of an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Complete (non-deadlocked) schedules executed.
    pub schedules: usize,
    /// Distinct final-state fingerprints, in first-seen order.
    pub outcomes: Vec<u64>,
    /// Schedules that ended with unfinished-but-all-blocked threads.
    pub deadlocks: usize,
    /// The choice sequence (thread index per step) of the first deadlock.
    pub deadlock_example: Option<Vec<usize>>,
    /// True when the exploration stopped at the schedule limit; the counts
    /// above then understate the full space.
    pub truncated: bool,
}

impl ExploreReport {
    /// The property the harness exists to check: every interleaving
    /// completed and produced the same fingerprint.
    pub fn is_deterministic(&self) -> bool {
        !self.truncated && self.deadlocks == 0 && self.outcomes.len() == 1 && self.schedules > 0
    }
}

/// Exhaustively explore every interleaving of the programs returned by
/// `build`, fingerprinting each complete schedule's final state.
///
/// `build` must construct the *same* initial state and programs on every
/// call — exploration replays the computation from scratch once per
/// explored prefix extension (quadratic in schedule length, exponential in
/// the schedule count; size models accordingly, see
/// [`count_interleavings`]). `limit` bounds the number of terminal
/// schedules (complete + deadlocked) before the search gives up and sets
/// [`ExploreReport::truncated`].
pub fn explore<'a, S>(
    mut build: impl FnMut() -> (S, Vec<ThreadProgram<'a, S>>),
    mut fingerprint: impl FnMut(&S) -> u64,
    limit: usize,
) -> ExploreReport {
    let mut report = ExploreReport {
        schedules: 0,
        outcomes: Vec::new(),
        deadlocks: 0,
        deadlock_example: None,
        truncated: false,
    };
    let mut prefix = Vec::new();
    dfs(
        &mut build,
        &mut fingerprint,
        &mut prefix,
        limit,
        &mut report,
    );
    report
}

/// Replay `prefix` on a fresh build. Returns the state, programs and
/// per-thread program counters after the prefix.
fn replay<'a, S>(
    build: &mut impl FnMut() -> (S, Vec<ThreadProgram<'a, S>>),
    prefix: &[usize],
) -> (S, Vec<ThreadProgram<'a, S>>, Vec<usize>) {
    let (mut state, mut threads) = build();
    let mut pcs = vec![0usize; threads.len()];
    for &t in prefix {
        let pc = pcs[t];
        let status = (threads[t].steps[pc])(&mut state);
        assert_eq!(
            status,
            StepStatus::Ran,
            "non-deterministic model: step {pc} of `{}` ran during exploration but blocked on replay",
            threads[t].name
        );
        pcs[t] += 1;
    }
    (state, threads, pcs)
}

fn dfs<'a, S>(
    build: &mut impl FnMut() -> (S, Vec<ThreadProgram<'a, S>>),
    fingerprint: &mut impl FnMut(&S) -> u64,
    prefix: &mut Vec<usize>,
    limit: usize,
    report: &mut ExploreReport,
) {
    if report.schedules + report.deadlocks >= limit {
        report.truncated = true;
        return;
    }
    let (state, threads, pcs) = replay(build, prefix);
    let unfinished: Vec<usize> = (0..threads.len())
        .filter(|&t| pcs[t] < threads[t].steps.len())
        .collect();
    if unfinished.is_empty() {
        let fp = fingerprint(&state);
        report.schedules += 1;
        if !report.outcomes.contains(&fp) {
            report.outcomes.push(fp);
        }
        return;
    }
    drop((state, threads, pcs));

    // A thread is enabled iff its next step runs. Attempting a step
    // mutates the state, so each candidate gets its own fresh replay; the
    // enabled ones then become DFS children.
    let mut enabled = Vec::new();
    for &t in &unfinished {
        let (mut state, mut threads, pcs) = replay(build, prefix);
        let status = (threads[t].steps[pcs[t]])(&mut state);
        if status == StepStatus::Ran {
            enabled.push(t);
        }
    }
    if enabled.is_empty() {
        report.deadlocks += 1;
        if report.deadlock_example.is_none() {
            report.deadlock_example = Some(prefix.clone());
        }
        return;
    }
    for t in enabled {
        prefix.push(t);
        dfs(build, fingerprint, prefix, limit, report);
        prefix.pop();
        if report.truncated {
            return;
        }
    }
}

/// Number of interleavings of threads with the given step counts (the
/// multinomial coefficient `(Σnᵢ)! / Πnᵢ!`), assuming no step ever
/// blocks. Useful for asserting an exploration was genuinely exhaustive.
pub fn count_interleavings(lens: &[usize]) -> u128 {
    let mut total: u128 = 0;
    let mut result: u128 = 1;
    for &len in lens {
        // Multiply by C(total + len, len) incrementally to keep the
        // intermediate products small.
        for k in 1..=len as u128 {
            total += 1;
            result = result * total / k;
        }
    }
    result.max(1)
}

/// FNV-1a fingerprint of a float slice via the bit patterns — the exact
/// equality the paper's "bitwise identical" claim is about (distinguishes
/// `-0.0` from `0.0` and every NaN payload).
pub fn fingerprint_f64(values: &[f64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_threads_are_deterministic() {
        // Two threads writing disjoint cells: every interleaving must give
        // the same result, and the schedule count must be the full
        // multinomial (2 threads × 2 steps → C(4,2) = 6).
        let report = explore(
            || {
                let state = vec![0.0f64; 2];
                let t0 = ThreadProgram::new("a")
                    .run(|s: &mut Vec<f64>| s[0] += 1.0)
                    .run(|s: &mut Vec<f64>| s[0] *= 2.0);
                let t1 = ThreadProgram::new("b")
                    .run(|s: &mut Vec<f64>| s[1] += 3.0)
                    .run(|s: &mut Vec<f64>| s[1] *= 4.0);
                (state, vec![t0, t1])
            },
            |s| fingerprint_f64(s),
            10_000,
        );
        assert!(report.is_deterministic(), "{report:?}");
        assert_eq!(report.schedules as u128, count_interleavings(&[2, 2]));
    }

    #[test]
    fn racy_split_rmw_is_caught() {
        // The classic lost update: each thread loads the shared cell into
        // a private slot, then stores slot + 1. Interleaving the loads
        // before the stores loses an increment — the explorer must surface
        // more than one outcome.
        struct S {
            shared: f64,
            t0: f64,
            t1: f64,
        }
        let report = explore(
            || {
                let s = S {
                    shared: 0.0,
                    t0: 0.0,
                    t1: 0.0,
                };
                let a = ThreadProgram::new("a")
                    .run(|s: &mut S| s.t0 = s.shared)
                    .run(|s: &mut S| s.shared = s.t0 + 1.0);
                let b = ThreadProgram::new("b")
                    .run(|s: &mut S| s.t1 = s.shared)
                    .run(|s: &mut S| s.shared = s.t1 + 1.0);
                (s, vec![a, b])
            },
            |s| fingerprint_f64(&[s.shared]),
            10_000,
        );
        assert!(!report.is_deterministic());
        assert_eq!(report.outcomes.len(), 2, "{report:?}"); // 1.0 and 2.0
        assert_eq!(report.deadlocks, 0);
    }

    #[test]
    fn circular_wait_deadlocks() {
        // Each thread first waits for the flag the *other* thread sets
        // afterwards: no schedule can make progress.
        let report = explore(
            || {
                let flags = vec![0.0f64; 2];
                let a = ThreadProgram::new("a")
                    .step(|s: &mut Vec<f64>| {
                        if s[1] > 0.0 {
                            StepStatus::Ran
                        } else {
                            StepStatus::Blocked
                        }
                    })
                    .run(|s: &mut Vec<f64>| s[0] = 1.0);
                let b = ThreadProgram::new("b")
                    .step(|s: &mut Vec<f64>| {
                        if s[0] > 0.0 {
                            StepStatus::Ran
                        } else {
                            StepStatus::Blocked
                        }
                    })
                    .run(|s: &mut Vec<f64>| s[1] = 1.0);
                (flags, vec![a, b])
            },
            |s| fingerprint_f64(s),
            10_000,
        );
        assert_eq!(report.schedules, 0);
        assert_eq!(report.deadlocks, 1);
        assert_eq!(report.deadlock_example.as_deref(), Some(&[][..]));
        assert!(!report.is_deterministic());
    }

    #[test]
    fn blocking_orders_producer_before_consumer() {
        // Consumer blocks until the producer has published: the only legal
        // schedule is produce → consume.
        let report = explore(
            || {
                let state = vec![0.0f64; 2];
                let producer = ThreadProgram::new("producer").run(|s: &mut Vec<f64>| s[0] = 42.0);
                let consumer = ThreadProgram::new("consumer").step(|s: &mut Vec<f64>| {
                    if s[0] == 0.0 {
                        return StepStatus::Blocked;
                    }
                    s[1] = s[0];
                    StepStatus::Ran
                });
                (state, vec![producer, consumer])
            },
            |s| fingerprint_f64(s),
            10_000,
        );
        assert!(report.is_deterministic(), "{report:?}");
        assert_eq!(report.schedules, 1);
    }

    /// Model of [`crate::pool::par_reduce_with`]: workers claim chunks off
    /// a shared counter (the fetch_add is one atomic step), accumulate
    /// into per-chunk slots, and the partials combine in index order after
    /// the join. The claim order varies per schedule; the sum must not.
    #[test]
    fn pool_counter_model_is_deterministic() {
        const NCHUNKS: usize = 3;
        struct S {
            counter: usize,
            partials: Vec<f64>,
        }
        let chunk_sum = |c: usize| ((c * 7919 + 13) % 101) as f64 * 0.125 - 6.0;
        let worker = move || {
            move |s: &mut S| {
                // One atomic step = the whole fetch_add + disjoint-slot
                // write (no other thread touches slot c).
                let c = s.counter;
                s.counter += 1;
                if c < NCHUNKS {
                    s.partials[c] = chunk_sum(c);
                }
            }
        };
        let report = explore(
            || {
                let s = S {
                    counter: 0,
                    partials: vec![0.0; NCHUNKS],
                };
                // Each worker gets NCHUNKS claim steps — enough for one
                // worker to drain the whole queue (late claims no-op).
                let mk = |name: &str| {
                    let mut t = ThreadProgram::new(name);
                    for _ in 0..NCHUNKS {
                        t = t.run(worker());
                    }
                    t
                };
                (s, vec![mk("w0"), mk("w1")])
            },
            |s| {
                // Index-ordered combine, as in par_reduce_with.
                fingerprint_f64(&[s.partials.iter().sum::<f64>()])
            },
            100_000,
        );
        assert!(report.is_deterministic(), "{report:?}");
        assert_eq!(
            report.schedules as u128,
            count_interleavings(&[NCHUNKS, NCHUNKS])
        );
    }

    /// The same reduction with partials combined in *completion order*
    /// (push instead of indexed write) is schedule-dependent — the very
    /// failure mode the index-ordered partials buffer exists to prevent.
    #[test]
    fn completion_order_combine_is_schedule_dependent() {
        let report = explore(
            || {
                // Three workers each contribute one partial; floating-point
                // addition is not associative, so the finish-order sum
                // depends on the schedule.
                let vals = [1.0e16, 1.0, -1.0e16];
                let threads = vals
                    .iter()
                    .map(|&v| ThreadProgram::new("w").run(move |s: &mut Vec<f64>| s.push(v)))
                    .collect();
                (Vec::new(), threads)
            },
            |s: &Vec<f64>| {
                let mut acc = 0.0;
                for &v in s {
                    acc += v;
                }
                fingerprint_f64(&[acc])
            },
            100_000,
        );
        assert_eq!(report.schedules as u128, count_interleavings(&[1, 1, 1]));
        assert_eq!(report.deadlocks, 0);
        assert!(
            report.outcomes.len() > 1,
            "finish-order combine must be schedule-dependent: {report:?}"
        );
    }

    #[test]
    fn truncation_is_reported() {
        let report = explore(
            || {
                let mk = || {
                    ThreadProgram::new("t")
                        .run(|_: &mut ()| {})
                        .run(|_: &mut ()| {})
                        .run(|_: &mut ()| {})
                };
                ((), vec![mk(), mk(), mk()])
            },
            |_| 0,
            5,
        );
        assert!(report.truncated);
        assert!(!report.is_deterministic());
    }

    #[test]
    fn interleaving_counts() {
        assert_eq!(count_interleavings(&[]), 1);
        assert_eq!(count_interleavings(&[4]), 1);
        assert_eq!(count_interleavings(&[1, 1]), 2);
        assert_eq!(count_interleavings(&[2, 2]), 6);
        assert_eq!(count_interleavings(&[3, 3]), 20);
        assert_eq!(count_interleavings(&[2, 2, 2]), 90);
    }

    #[test]
    fn fingerprint_distinguishes_bit_patterns() {
        assert_ne!(fingerprint_f64(&[0.0]), fingerprint_f64(&[-0.0]));
        assert_ne!(fingerprint_f64(&[1.0, 2.0]), fingerprint_f64(&[2.0, 1.0]));
        assert_eq!(fingerprint_f64(&[1.5, -2.5]), fingerprint_f64(&[1.5, -2.5]));
    }
}
