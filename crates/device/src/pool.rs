//! Data-parallel worker pool for element-loop kernels.
//!
//! SEM operators are embarrassingly parallel over elements; this module
//! provides a minimal, dependency-light parallel-for built from scoped
//! threads and an atomic work counter (dynamic chunk self-scheduling, the
//! same load-balancing idea as a work-stealing pool for uniform loops),
//! plus a deterministic parallel reduction that sums per-chunk partials in
//! index order so results are bitwise reproducible regardless of thread
//! count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A reusable description of parallel resources (thread count). Threads are
/// scoped per call — a design that keeps borrows of the caller's data safe
/// with zero `unsafe`.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Pool using `threads` workers (≥ 1).
    pub fn new(threads: usize) -> Self {
        // audit:allow(hot-panic): construction-time contract check, not on the per-step path
        assert!(threads >= 1);
        Self { threads }
    }

    /// Pool sized to the machine's available parallelism.
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        Self::new(n)
    }

    /// Number of worker threads used.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(i)` for every `i in 0..n`, distributing dynamically in chunks.
    pub fn for_each(&self, n: usize, chunk: usize, f: impl Fn(usize) + Sync) {
        par_for_with(self.threads, n, chunk, f);
    }

    /// Deterministic sum-reduction: `Σ f(i)` with a fixed chunk partition
    /// whose partials are combined in index order, independent of thread
    /// scheduling.
    pub fn sum(&self, n: usize, chunk: usize, f: impl Fn(usize) -> f64 + Sync) -> f64 {
        par_reduce_with(self.threads, n, chunk, f)
    }
}

/// Free-function parallel-for with an automatically sized pool.
pub fn par_for(n: usize, f: impl Fn(usize) + Sync) {
    let pool = WorkerPool::auto();
    pool.for_each(n, default_chunk(n, pool.threads), f);
}

/// Free-function deterministic parallel sum with an automatic pool.
pub fn par_reduce(n: usize, f: impl Fn(usize) -> f64 + Sync) -> f64 {
    let pool = WorkerPool::auto();
    pool.sum(n, default_chunk(n, pool.threads), f)
}

fn default_chunk(n: usize, threads: usize) -> usize {
    (n / (threads * 4)).max(1)
}

fn par_for_with(threads: usize, n: usize, chunk: usize, f: impl Fn(usize) + Sync) {
    let chunk = chunk.max(1);
    if n == 0 {
        return;
    }
    if threads == 1 || n <= chunk {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let counter = AtomicUsize::new(0);
    let f = &f;
    let counter = &counter;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                // ordering: the fetch_add's atomicity alone claims each index
                // range exactly once; results are published to the caller by
                // the scope join's happens-before edge, not by this counter.
                let start = counter.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    f(i);
                }
            });
        }
    });
}

fn par_reduce_with(threads: usize, n: usize, chunk: usize, f: impl Fn(usize) -> f64 + Sync) -> f64 {
    let chunk = chunk.max(1);
    if n == 0 {
        return 0.0;
    }
    let nchunks = n.div_ceil(chunk);
    // audit:allow(hot-alloc): one nchunks-sized buffer per reduction, amortized over O(n) work; materialized partials are what makes the combine order (and the sum bits) deterministic
    let mut partials = vec![0.0f64; nchunks];
    {
        let counter = AtomicUsize::new(0);
        let f = &f;
        let counter = &counter;
        // Each worker owns disjoint chunks; write partials through raw
        // disjoint indices via a Mutex-free pattern: collect into a Vec of
        // per-chunk cells using interior mutability on disjoint slots.
        let cells: Vec<std::sync::atomic::AtomicU64> = (0..nchunks)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            // audit:allow(hot-alloc): per-chunk atomic cells, one allocation per reduction (see partials above)
            .collect();
        let cells = &cells;
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1) {
                scope.spawn(move || loop {
                    // ordering: atomic claim only — each chunk id goes to
                    // exactly one worker by the fetch_add's atomicity; results
                    // are published via the scope join, not the counter.
                    let c = counter.fetch_add(1, Ordering::Relaxed);
                    if c >= nchunks {
                        break;
                    }
                    let start = c * chunk;
                    let end = (start + chunk).min(n);
                    let mut acc = 0.0;
                    for i in start..end {
                        acc += f(i);
                    }
                    // ordering: each cell has exactly one writer (the chunk
                    // owner); the main thread reads only after the scope
                    // join synchronizes, so no release/acquire is needed.
                    cells[c].store(acc.to_bits(), Ordering::Relaxed);
                });
            }
        });
        for (p, cell) in partials.iter_mut().zip(cells) {
            // ordering: reads happen after the scope join above, which
            // already established the happens-before edge with all writers.
            *p = f64::from_bits(cell.load(Ordering::Relaxed));
        }
    }
    // Ordered combination → deterministic result.
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_index_once() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let pool = WorkerPool::new(4);
        pool.for_each(n, 7, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn for_each_empty_and_single() {
        let pool = WorkerPool::new(3);
        pool.for_each(0, 1, |_| panic!("must not run"));
        let hit = AtomicUsize::new(0);
        pool.for_each(1, 1, |_| {
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sum_matches_serial() {
        let pool = WorkerPool::new(4);
        let n = 10_000;
        let serial: f64 = (0..n).map(|i| (i as f64 * 0.001).sin()).sum();
        let parallel = pool.sum(n, 64, |i| (i as f64 * 0.001).sin());
        assert!((serial - parallel).abs() < 1e-9);
    }

    #[test]
    fn sum_deterministic_across_thread_counts() {
        let n = 5431;
        let f = |i: usize| ((i * 2654435761) % 1000) as f64 * 1e-3 - 0.5;
        let chunk = 37;
        let r1 = WorkerPool::new(1).sum(n, chunk, f);
        let r4 = WorkerPool::new(4).sum(n, chunk, f);
        let r7 = WorkerPool::new(7).sum(n, chunk, f);
        // Bitwise identical because partials combine in index order.
        assert_eq!(r1.to_bits(), r4.to_bits());
        assert_eq!(r1.to_bits(), r7.to_bits());
    }

    #[test]
    fn free_functions_work() {
        let hits = AtomicUsize::new(0);
        par_for(100, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        let s = par_reduce(10, |i| i as f64);
        assert_eq!(s, 45.0);
    }
}
