//! Persistent data-parallel worker pool for element-loop kernels.
//!
//! SEM operators are embarrassingly parallel over elements, and the Krylov
//! solvers run thousands of operator applies per step — so dispatch cost
//! matters as much as raw parallelism. This pool creates its worker threads
//! **once**; after construction a parallel region performs zero thread
//! spawns and zero heap allocations:
//!
//! * workers park on a condvar and are woken by an **epoch broadcast**: the
//!   dispatcher publishes a type-erased job descriptor under the control
//!   mutex, bumps the epoch, and notifies; each worker serves every epoch
//!   exactly once (it remembers the last epoch it ran);
//! * work is claimed by **dynamic chunk self-scheduling** off a shared
//!   atomic cursor — the load-balancing of a work-stealing pool for uniform
//!   loops, without the deques;
//! * the calling thread participates in every job, so `threads == 1` means
//!   zero worker threads and inline execution;
//! * reduction partials live in a pool-owned buffer that grows amortized
//!   and is reused across dispatches, and are combined **in chunk-index
//!   order**, so sums are bitwise identical for every thread count —
//!   provided the chunk size is a function of the problem size only (see
//!   [`reduce_chunk`]). The single-thread path runs the same chunked
//!   traversal for exactly this reason;
//! * [`WorkerPool::pair`] runs one task on a dedicated persistent helper
//!   thread while the caller runs the other — the overlap primitive behind
//!   the Schwarz coarse∥fine phase, kept off the worker complement so the
//!   coarse task and the element-loop pool do not fight for cores.
//!
//! Dispatches are serialized by an internal gate; dispatching from inside
//! a kernel closure is forbidden (it would deadlock on that gate) and is
//! caught by a debug assertion. Compose parallel stages sequentially
//! instead.

use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Signature of the monomorphized trampoline a job dispatches through:
/// `(closure, chunk_index, start, end, partials)`.
type Shim = unsafe fn(*const (), usize, usize, usize, *const AtomicU64);

/// Type-erased job descriptor broadcast to the workers. `data` points at a
/// closure on the dispatcher's stack; the dispatcher outlives every
/// worker's use of it because `run_erased` does not return until the
/// active-count handshake reaches zero.
#[derive(Clone, Copy)]
struct Job {
    shim: Shim,
    data: *const (),
    n: usize,
    chunk: usize,
    nchunks: usize,
    partials: *const AtomicU64,
}

// SAFETY: the raw pointers are dereferenced only between job publication
// and the completion handshake, while the dispatcher keeps the pointees
// alive; the control mutex orders both endpoints.
unsafe impl Send for Job {}

/// # Safety
/// Trivially sound: touches none of its raw-pointer arguments.
unsafe fn shim_noop(_d: *const (), _c: usize, _s: usize, _e: usize, _p: *const AtomicU64) {}

impl Job {
    fn idle() -> Self {
        Job {
            shim: shim_noop,
            data: std::ptr::null(),
            n: 0,
            chunk: 1,
            nchunks: 0,
            partials: std::ptr::null(),
        }
    }
}

/// # Safety
/// `data` must point at a live `F` for the whole call — guaranteed by
/// the [`Job`] lifetime contract (dispatcher blocks until the handshake).
unsafe fn shim_for_each<F: Fn(usize) + Sync>(
    data: *const (),
    _c: usize,
    start: usize,
    end: usize,
    _p: *const AtomicU64,
) {
    let f = &*data.cast::<F>();
    for i in start..end {
        f(i);
    }
}

/// # Safety
/// Same contract as [`shim_for_each`]: `data` is a live `F` for the call.
unsafe fn shim_for_each_range<F: Fn(usize, usize) + Sync>(
    data: *const (),
    _c: usize,
    start: usize,
    end: usize,
    _p: *const AtomicU64,
) {
    let f = &*data.cast::<F>();
    f(start, end);
}

/// # Safety
/// `data` must point at a live `F` and `partials` at `nchunks` cells of
/// which chunk `c` is exclusively this caller's — both hold under the
/// [`Job`] lifetime contract.
unsafe fn shim_sum<F: Fn(usize) -> f64 + Sync>(
    data: *const (),
    c: usize,
    start: usize,
    end: usize,
    partials: *const AtomicU64,
) {
    let f = &*data.cast::<F>();
    let mut acc = 0.0;
    for i in start..end {
        acc += f(i);
    }
    // ordering: relaxed — each partial cell has exactly one writer per
    // dispatch (the chunk owner), and the dispatcher reads it only after
    // the active-count handshake under the control mutex synchronizes.
    (*partials.add(c)).store(acc.to_bits(), Ordering::Relaxed);
}

/// # Safety
/// Same contract as [`shim_sum`]: live `F`, exclusive partial cell `c`.
unsafe fn shim_sum_range<F: Fn(usize, usize) -> f64 + Sync>(
    data: *const (),
    c: usize,
    start: usize,
    end: usize,
    partials: *const AtomicU64,
) {
    let f = &*data.cast::<F>();
    let acc = f(start, end);
    // ordering: relaxed — single writer per cell per dispatch; the reader
    // is ordered by the completion handshake (see shim_sum).
    (*partials.add(c)).store(acc.to_bits(), Ordering::Relaxed);
}

/// Dispatcher↔worker control block, guarded by [`Shared::ctrl`].
struct Ctrl {
    /// Bumped once per dispatch; workers run each epoch exactly once.
    epoch: u64,
    /// Workers that have not yet finished the current epoch.
    active: usize,
    /// Set (once) by [`PoolCore::drop`] to retire the workers.
    shutdown: bool,
    /// The published job for the current epoch.
    job: Job,
}

/// Pool-owned reduction partials, reused across dispatches (guarded by the
/// dispatch gate, which the dispatcher holds for the whole job).
struct Partials {
    cells: Vec<AtomicU64>,
}

impl Partials {
    /// Amortized growth: allocates only when a dispatch needs more chunks
    /// than any previous one; the steady state reuses the buffer and the
    /// dispatch path stays allocation-free.
    fn ensure(&mut self, nchunks: usize) {
        if self.cells.len() < nchunks {
            self.cells.resize_with(nchunks, || AtomicU64::new(0));
        }
    }
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Chunk self-scheduling cursor, reset before each epoch.
    counter: AtomicUsize,
    /// Sticky flag: a kernel closure panicked on a worker.
    panicked: AtomicBool,
    /// Serializes dispatchers and owns the partials buffer.
    gate: Mutex<Partials>,
    dispatches: AtomicU64,
    chunks: AtomicU64,
    items: AtomicU64,
    pair_jobs: AtomicU64,
    grained: AtomicU64,
}

impl Shared {
    fn new() -> Self {
        Shared {
            ctrl: Mutex::new(Ctrl {
                epoch: 0,
                active: 0,
                shutdown: false,
                job: Job::idle(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            counter: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            gate: Mutex::new(Partials { cells: Vec::new() }),
            dispatches: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            items: AtomicU64::new(0),
            pair_jobs: AtomicU64::new(0),
            grained: AtomicU64::new(0),
        }
    }
}

thread_local! {
    /// True while this thread is executing a pool job — used to catch
    /// nested dispatch (which would deadlock on the dispatch gate).
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

/// RAII marker for [`IN_POOL_JOB`]; Drop clears the flag even if the
/// kernel closure panics.
struct JobGuard;

impl JobGuard {
    fn enter() -> Self {
        IN_POOL_JOB.with(|c| c.set(true));
        JobGuard
    }
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        IN_POOL_JOB.with(|c| c.set(false));
    }
}

/// Claim and execute chunks of the current job until the cursor is
/// exhausted. Runs on workers and on the dispatching thread alike.
fn run_job(shared: &Shared, job: &Job) {
    let _guard = JobGuard::enter();
    loop {
        // The job was published by the control mutex and results are
        // published by the active-count handshake, not by this cursor.
        // ordering: relaxed — the fetch_add's atomicity alone hands each
        // chunk to exactly one thread; nothing else rides on the cursor.
        let c = shared.counter.fetch_add(1, Ordering::Relaxed);
        if c >= job.nchunks {
            break;
        }
        let start = c * job.chunk;
        let end = (start + job.chunk).min(job.n);
        // SAFETY: the dispatcher keeps the closure and partials alive until
        // every participant finishes, and each (c, start, end) triple is
        // claimed exactly once.
        unsafe { (job.shim)(job.data, c, start, end, job.partials) };
    }
}

/// Worker body: park on the condvar until the epoch moves, serve the
/// epoch's job once, report completion, repeat until shutdown.
fn worker_loop(shared: &Shared) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut ctrl = shared.ctrl.lock();
            while ctrl.epoch == last_epoch && !ctrl.shutdown {
                shared.work_cv.wait(&mut ctrl);
            }
            if ctrl.shutdown {
                return;
            }
            last_epoch = ctrl.epoch;
            ctrl.job
        };
        if catch_unwind(AssertUnwindSafe(|| run_job(shared, &job))).is_err() {
            // ordering: relaxed — the dispatcher reads this flag only after
            // the active-count handshake below has already established the
            // happens-before edge through the control mutex.
            shared.panicked.store(true, Ordering::Relaxed);
        }
        let mut ctrl = shared.ctrl.lock();
        ctrl.active -= 1;
        if ctrl.active == 0 {
            // Only the (gate-serialized) dispatcher waits on done_cv.
            shared.done_cv.notify_one();
        }
    }
}

/// Trampoline for [`WorkerPool::pair`]: runs the erased `FnOnce` at most
/// once (the `Option` take keeps a replayed epoch harmless).
///
/// # Safety
/// `data` must point at a live `Option<F>` the submitting caller keeps
/// alive while blocked in `pair`.
unsafe fn pair_shim<F: FnOnce()>(data: *mut ()) {
    if let Some(f) = (*data.cast::<Option<F>>()).take() {
        f();
    }
}

/// # Safety
/// Trivially sound: never dereferences its argument.
unsafe fn pair_shim_noop(_d: *mut ()) {}

/// Type-erased task for the pair helper thread; same lifetime contract as
/// [`Job`] (the caller blocks until `done` catches up with `epoch`).
#[derive(Clone, Copy)]
struct PairJob {
    shim: unsafe fn(*mut ()),
    data: *mut (),
}

// SAFETY: dereferenced only while the submitting caller is blocked in
// `pair`, which keeps the pointee alive; the pair mutex orders both ends.
unsafe impl Send for PairJob {}

struct PairCtrl {
    epoch: u64,
    done: u64,
    shutdown: bool,
    job: PairJob,
}

struct PairShared {
    ctrl: Mutex<PairCtrl>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Serializes concurrent `pair` callers.
    gate: Mutex<()>,
    panicked: AtomicBool,
}

impl PairShared {
    fn new() -> Self {
        PairShared {
            ctrl: Mutex::new(PairCtrl {
                epoch: 0,
                done: 0,
                shutdown: false,
                job: PairJob {
                    shim: pair_shim_noop,
                    data: std::ptr::null_mut(),
                },
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            gate: Mutex::new(()),
            panicked: AtomicBool::new(false),
        }
    }
}

/// Helper-thread body for [`WorkerPool::pair`]: same epoch park/wake
/// protocol as the workers, with a done-epoch ack instead of a count.
fn pair_loop(shared: &PairShared) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut ctrl = shared.ctrl.lock();
            while ctrl.epoch == last_epoch && !ctrl.shutdown {
                shared.work_cv.wait(&mut ctrl);
            }
            if ctrl.shutdown {
                return;
            }
            last_epoch = ctrl.epoch;
            ctrl.job
        };
        // SAFETY: the submitter is blocked in `pair` until the done
        // handshake, so `job.data` outlives this call (PairJob contract).
        if catch_unwind(AssertUnwindSafe(|| unsafe { (job.shim)(job.data) })).is_err() {
            // ordering: relaxed — read by the caller only after the done
            // handshake below synchronizes through the pair mutex.
            shared.panicked.store(true, Ordering::Relaxed);
        }
        let mut ctrl = shared.ctrl.lock();
        ctrl.done = last_epoch;
        shared.done_cv.notify_all();
    }
}

/// Owns the OS threads; dropped when the last [`WorkerPool`] handle goes
/// away, at which point the workers are retired and joined.
struct PoolCore {
    shared: Arc<Shared>,
    pair: Arc<PairShared>,
    workers: Vec<JoinHandle<()>>,
    helper: Option<JoinHandle<()>>,
}

impl Drop for PoolCore {
    fn drop(&mut self) {
        {
            let mut ctrl = self.shared.ctrl.lock();
            ctrl.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        {
            let mut ctrl = self.pair.ctrl.lock();
            ctrl.shutdown = true;
            self.pair.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.helper.take() {
            let _ = h.join();
        }
    }
}

/// Monotonic dispatch counters, snapshot via [`WorkerPool::stats`]; the
/// telemetry bridge in `rbx-core` reports per-step deltas of these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total participants per dispatch (workers + the calling thread).
    pub threads: usize,
    /// Parallel regions dispatched since construction.
    pub dispatches: u64,
    /// Chunks issued across all dispatches.
    pub chunks: u64,
    /// Loop iterations (items) covered across all dispatches.
    pub items: u64,
    /// Overlap pairs executed on the helper thread.
    pub pair_jobs: u64,
    /// Loops short-circuited to the caller thread by the `*_min` grain
    /// gates (work below its tuned crossover never paid dispatch cost).
    pub grained: u64,
}

/// A persistent worker pool: `threads - 1` parked worker threads plus the
/// calling thread, created once and woken per dispatch by an epoch
/// broadcast. Cloning is cheap (shared handles); the threads retire when
/// the last handle drops.
#[derive(Clone)]
pub struct WorkerPool {
    shared: Arc<Shared>,
    pair: Arc<PairShared>,
    threads: usize,
    _core: Arc<PoolCore>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Pool with `threads` total participants (≥ 1): the calling thread
    /// plus `threads - 1` persistent workers, spawned here and never
    /// again.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared::new());
        let pair = Arc::new(PairShared::new());
        let mut workers = Vec::with_capacity(threads - 1);
        for w in 0..threads - 1 {
            let s = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("rbx-pool-{w}"))
                .spawn(move || worker_loop(&s))
                .expect("worker pool: failed to spawn worker thread");
            workers.push(handle);
        }
        let helper = {
            let p = Arc::clone(&pair);
            std::thread::Builder::new()
                .name("rbx-pool-pair".into())
                .spawn(move || pair_loop(&p))
                .expect("worker pool: failed to spawn pair helper thread")
        };
        Self {
            shared: Arc::clone(&shared),
            pair: Arc::clone(&pair),
            threads,
            _core: Arc::new(PoolCore {
                shared,
                pair,
                workers,
                helper: Some(helper),
            }),
        }
    }

    /// Pool sized to the machine's available parallelism.
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1);
        Self::new(n)
    }

    /// Single-participant pool: dispatch runs inline on the caller with
    /// zero worker threads, through the same chunked traversal as the
    /// parallel path so reductions keep identical bits.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Total participants per dispatch (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the monotonic dispatch counters.
    pub fn stats(&self) -> PoolStats {
        // Monotonic telemetry counters; readers need no synchronization
        // with the dispatches that bump them.
        PoolStats {
            threads: self.threads,
            dispatches: self.shared.dispatches.load(Ordering::Relaxed), // ordering: monotonic counter
            chunks: self.shared.chunks.load(Ordering::Relaxed), // ordering: monotonic counter
            items: self.shared.items.load(Ordering::Relaxed),   // ordering: monotonic counter
            pair_jobs: self.shared.pair_jobs.load(Ordering::Relaxed), // ordering: monotonic counter
            grained: self.shared.grained.load(Ordering::Relaxed), // ordering: monotonic counter
        }
    }

    /// Run `f(i)` for every `i in 0..n`, distributing dynamically in
    /// chunks of `chunk` indices.
    pub fn for_each<F: Fn(usize) + Sync>(&self, n: usize, chunk: usize, f: F) {
        let data: *const F = &f;
        self.run_erased(shim_for_each::<F>, data.cast(), n, chunk, false);
    }

    /// Run `f(start, end)` over a disjoint chunk partition of `0..n` —
    /// the per-range form element-loop kernels use (one call per chunk,
    /// so per-range setup like scratch lookup is amortized).
    pub fn for_each_range<F: Fn(usize, usize) + Sync>(&self, n: usize, chunk: usize, f: F) {
        let data: *const F = &f;
        self.run_erased(shim_for_each_range::<F>, data.cast(), n, chunk, false);
    }

    /// Deterministic sum-reduction `Σ f(i)`: a fixed chunk partition whose
    /// partials combine in index order, so for a given `(n, chunk)` the
    /// result bits are identical for every thread count and schedule. Use
    /// a chunk that depends on `n` only (e.g. [`reduce_chunk`]) to keep
    /// runs comparable across machines.
    pub fn sum<F: Fn(usize) -> f64 + Sync>(&self, n: usize, chunk: usize, f: F) -> f64 {
        let data: *const F = &f;
        self.run_erased(shim_sum::<F>, data.cast(), n, chunk, true)
    }

    /// Range form of [`WorkerPool::sum`]: `f(start, end)` returns the
    /// partial for one chunk (letting the kernel run a tight local loop).
    /// Same determinism contract.
    pub fn sum_range<F: Fn(usize, usize) -> f64 + Sync>(
        &self,
        n: usize,
        chunk: usize,
        f: F,
    ) -> f64 {
        let data: *const F = &f;
        self.run_erased(shim_sum_range::<F>, data.cast(), n, chunk, true)
    }

    /// Grain-gated [`WorkerPool::for_each_range`]: when `n` is below
    /// `serial_below` (the kernel's tuned dispatch-overhead crossover) the
    /// identical chunk partition runs inline on the caller — same
    /// traversal, same disjoint writes, so the output bits cannot depend
    /// on which side of the gate executed — and only the `grained`
    /// counter is bumped instead of paying pool wake cost.
    pub fn for_each_range_min<F: Fn(usize, usize) + Sync>(
        &self,
        n: usize,
        chunk: usize,
        serial_below: usize,
        f: F,
    ) {
        if n < serial_below {
            self.run_grained(n, chunk, |start, end| {
                f(start, end);
                0.0
            });
        } else {
            self.for_each_range(n, chunk, f);
        }
    }

    /// Grain-gated [`WorkerPool::sum_range`]: sub-crossover reductions run
    /// inline over the same fixed chunk partition with partials combined
    /// in chunk-index order from `0.0` — exactly the pooled combine — so
    /// the gate is bitwise-invisible to callers.
    pub fn sum_range_min<F: Fn(usize, usize) -> f64 + Sync>(
        &self,
        n: usize,
        chunk: usize,
        serial_below: usize,
        f: F,
    ) -> f64 {
        if n < serial_below {
            self.run_grained(n, chunk, f)
        } else {
            self.sum_range(n, chunk, f)
        }
    }

    /// Inline chunked traversal for sub-crossover work: the same fixed
    /// `(n, chunk)` partition as a dispatch, partials accumulated in
    /// chunk-index order (bit-identical to the pooled combine), without
    /// touching the dispatch gate or waking workers.
    fn run_grained<F: Fn(usize, usize) -> f64>(&self, n: usize, chunk: usize, f: F) -> f64 {
        debug_assert!(
            !IN_POOL_JOB.with(|c| c.get()),
            "nested pool dispatch from inside a kernel closure would deadlock the dispatch gate"
        );
        // ordering: relaxed — monotonic telemetry counter (see stats()).
        self.shared.grained.fetch_add(1, Ordering::Relaxed);
        let chunk = chunk.max(1);
        if n == 0 {
            return 0.0;
        }
        let _guard = JobGuard::enter();
        let nchunks = n.div_ceil(chunk);
        let mut acc = 0.0;
        for c in 0..nchunks {
            let start = c * chunk;
            let end = (start + chunk).min(n);
            acc += f(start, end);
        }
        acc
    }

    /// Run `a` on the persistent helper thread while `b` runs on the
    /// caller; returns when both are done. This is the coarse∥fine overlap
    /// primitive: `b` may itself dispatch element loops on this pool — the
    /// helper is not part of the worker complement, so the two sides do
    /// not compete for the dispatch gate.
    pub fn pair<A: FnOnce() + Send, B: FnOnce()>(&self, a: A, b: B) {
        let _serialize = self.pair.gate.lock();
        let mut slot: Option<A> = Some(a);
        let data: *mut Option<A> = &mut slot;
        let job = PairJob {
            shim: pair_shim::<A>,
            data: data.cast(),
        };
        // ordering: relaxed — monotonic telemetry counter (see stats()).
        self.shared.pair_jobs.fetch_add(1, Ordering::Relaxed);
        let epoch = {
            let mut ctrl = self.pair.ctrl.lock();
            ctrl.job = job;
            ctrl.epoch = ctrl.epoch.wrapping_add(1);
            // Notify under the lock: the helper between its epoch check and
            // its wait would otherwise miss the wakeup.
            self.pair.work_cv.notify_one();
            ctrl.epoch
        };
        let b_panicked = catch_unwind(AssertUnwindSafe(b)).is_err();
        {
            let mut ctrl = self.pair.ctrl.lock();
            while ctrl.done != epoch {
                self.pair.done_cv.wait(&mut ctrl);
            }
        }
        // ordering: relaxed — the done handshake above already ordered the
        // helper's write to this flag before our read.
        if self.pair.panicked.swap(false, Ordering::Relaxed) || b_panicked {
            // audit:allow(hot-panic): propagates a kernel panic to the caller — reachable only if a task already panicked
            panic!("worker pool: a pair task panicked");
        }
    }

    /// The single dispatch path: publish the type-erased job, participate,
    /// wait for the workers, and (for reductions) combine the partials in
    /// index order. Performs no heap allocation in the steady state — the
    /// partials buffer is pool-owned and grows amortized.
    fn run_erased(&self, shim: Shim, data: *const (), n: usize, chunk: usize, reduce: bool) -> f64 {
        debug_assert!(
            !IN_POOL_JOB.with(|c| c.get()),
            "nested pool dispatch from inside a kernel closure would deadlock the dispatch gate"
        );
        let chunk = chunk.max(1);
        if n == 0 {
            return 0.0;
        }
        let nchunks = n.div_ceil(chunk);
        let mut gate = self.shared.gate.lock();
        if reduce {
            gate.ensure(nchunks);
        }
        let partials: *const AtomicU64 = if reduce {
            gate.cells.as_ptr()
        } else {
            std::ptr::null()
        };
        let job = Job {
            shim,
            data,
            n,
            chunk,
            nchunks,
            partials,
        };
        let shared = &*self.shared;
        // ordering: relaxed — monotonic telemetry counters (see stats()).
        shared.dispatches.fetch_add(1, Ordering::Relaxed);
        shared.chunks.fetch_add(nchunks as u64, Ordering::Relaxed);
        shared.items.fetch_add(n as u64, Ordering::Relaxed);
        let workers = self.threads - 1;
        if workers > 0 && nchunks > 1 {
            // ordering: relaxed — the cursor reset is published to the
            // workers by the control-mutex release below; no worker touches
            // the cursor for this epoch before acquiring that mutex.
            shared.counter.store(0, Ordering::Relaxed);
            {
                let mut ctrl = shared.ctrl.lock();
                ctrl.job = job;
                ctrl.active = workers;
                ctrl.epoch = ctrl.epoch.wrapping_add(1);
                // Notify under the lock: a worker between its epoch check
                // and its wait would otherwise miss the wakeup.
                shared.work_cv.notify_all();
            }
            let caller_panicked = catch_unwind(AssertUnwindSafe(|| run_job(shared, &job))).is_err();
            {
                let mut ctrl = shared.ctrl.lock();
                while ctrl.active != 0 {
                    shared.done_cv.wait(&mut ctrl);
                }
            }
            // ordering: relaxed — the active-count handshake above already
            // ordered every worker's write to this flag before our read.
            if shared.panicked.swap(false, Ordering::Relaxed) || caller_panicked {
                // audit:allow(hot-panic): propagates a kernel panic to the caller — reachable only if the kernel already panicked
                panic!("worker pool: a kernel closure panicked");
            }
        } else {
            // Inline path (serial pool or single-chunk job): the identical
            // chunked traversal, so reductions keep the same bits as the
            // parallel path.
            let _guard = JobGuard::enter();
            for c in 0..nchunks {
                let start = c * chunk;
                let end = (start + chunk).min(n);
                // SAFETY: same contract as run_job — closure outlives the
                // loop, every (c, start, end) visited exactly once.
                unsafe { (job.shim)(job.data, c, start, end, job.partials) };
            }
        }
        if reduce {
            let mut acc = 0.0;
            for cell in gate.cells.iter().take(nchunks) {
                // ordering: relaxed — all writers finished before the
                // completion handshake (or ran on this thread); the combine
                // order here, not the memory order, fixes the result bits.
                acc += f64::from_bits(cell.load(Ordering::Relaxed));
            }
            acc
        } else {
            0.0
        }
    }
}

/// Raw-pointer view of a mutable slice for disjoint-range parallel writes
/// (each worker touches its own element range). All access is `unsafe`
/// and gated on the caller's disjointness argument.
pub struct RangePtr<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: RangePtr only forwards the pointer; the disjointness obligations
// are on the unsafe accessors' callers.
unsafe impl<T: Send> Send for RangePtr<T> {}
unsafe impl<T: Send> Sync for RangePtr<T> {}

impl<T> Clone for RangePtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for RangePtr<T> {}

impl<T> RangePtr<T> {
    pub fn new(slice: &mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable view of `start..end`.
    ///
    /// # Safety
    /// Concurrent callers must use pairwise-disjoint ranges within bounds
    /// of the original slice, which must outlive every access.
    // The returned borrow derives from the raw pointer, not `&self`; the
    // disjointness contract above is what makes concurrent calls sound.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, start: usize, end: usize) -> &mut [T] {
        debug_assert!(start <= end && end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and not concurrently written.
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and written by exactly one thread per
    /// parallel region, with no concurrent reader.
    pub unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = value;
    }
}

static GLOBAL_POOL: OnceLock<WorkerPool> = OnceLock::new();

/// The process-wide shared pool, created on first use with
/// [`WorkerPool::auto`] sizing — so the free functions below never spawn
/// per call. Hot paths should carry an explicit pool handle through their
/// operator structs instead (the audit's pool-discipline rule enforces
/// this); the global is for leaf utilities, tools and tests.
pub fn global_pool() -> &'static WorkerPool {
    GLOBAL_POOL.get_or_init(WorkerPool::auto)
}

/// Parallel-for on the lazily-initialized [`global_pool`].
pub fn par_for(n: usize, f: impl Fn(usize) + Sync) {
    let pool = global_pool();
    pool.for_each(n, loop_chunk(n, pool.threads()), f);
}

/// Deterministic parallel sum on the lazily-initialized [`global_pool`];
/// the chunk partition depends on `n` only, so the result bits do not
/// depend on the machine's thread count.
pub fn par_reduce(n: usize, f: impl Fn(usize) -> f64 + Sync) -> f64 {
    global_pool().sum(n, reduce_chunk(n), f)
}

/// Chunk size for a parallel loop: aim for ~4 chunks per participant so
/// dynamic self-scheduling can balance uneven progress.
pub fn loop_chunk(n: usize, threads: usize) -> usize {
    (n / (threads.max(1) * 4)).max(1)
}

/// Chunk size for a deterministic reduction — a function of `n` only, so
/// the partial partition (and therefore the combined bits) is identical
/// for every thread count and machine.
pub fn reduce_chunk(n: usize) -> usize {
    (n / 64).max(256)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_index_once() {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let pool = WorkerPool::new(4);
        pool.for_each(n, 7, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn for_each_range_covers_exactly_once() {
        let n = 997; // prime: ragged final chunk
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let pool = WorkerPool::new(3);
        pool.for_each_range(n, 13, |start, end| {
            assert!(start < end && end <= n);
            for h in &hits[start..end] {
                h.fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn for_each_empty_and_single() {
        let pool = WorkerPool::new(3);
        pool.for_each(0, 1, |_| panic!("must not run"));
        let hit = AtomicUsize::new(0);
        pool.for_each(1, 1, |_| {
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sum_matches_serial() {
        let pool = WorkerPool::new(4);
        let n = 10_000;
        let serial: f64 = (0..n).map(|i| (i as f64 * 0.001).sin()).sum();
        let parallel = pool.sum(n, 64, |i| (i as f64 * 0.001).sin());
        assert!((serial - parallel).abs() < 1e-9);
    }

    #[test]
    fn sum_deterministic_across_thread_counts() {
        let n = 5431;
        let f = |i: usize| ((i * 2654435761) % 1000) as f64 * 1e-3 - 0.5;
        let chunk = 37;
        let r1 = WorkerPool::new(1).sum(n, chunk, f);
        let r4 = WorkerPool::new(4).sum(n, chunk, f);
        let r7 = WorkerPool::new(7).sum(n, chunk, f);
        // Bitwise identical because partials combine in index order and the
        // serial path runs the same chunked traversal.
        assert_eq!(r1.to_bits(), r4.to_bits());
        assert_eq!(r1.to_bits(), r7.to_bits());
    }

    #[test]
    fn sum_range_agrees_with_sum() {
        let n = 4321;
        let chunk = 53;
        let pool = WorkerPool::new(4);
        let a = pool.sum(n, chunk, |i| (i as f64).sqrt());
        let b = pool.sum_range(n, chunk, |start, end| {
            let mut acc = 0.0;
            for i in start..end {
                acc += (i as f64).sqrt();
            }
            acc
        });
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn dispatches_reuse_the_same_workers() {
        let pool = WorkerPool::new(4);
        let before = pool.stats();
        for round in 0..100 {
            let total = pool.sum(1000, 37, |i| (i + round) as f64);
            let expect: f64 = (0..1000).map(|i| (i + round) as f64).sum();
            assert_eq!(total, expect);
        }
        let after = pool.stats();
        assert_eq!(after.dispatches - before.dispatches, 100);
        assert_eq!(after.threads, 4);
    }

    #[test]
    fn pair_runs_both_sides() {
        let pool = WorkerPool::new(2);
        let a_ran = AtomicUsize::new(0);
        let b_ran = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.pair(
                || {
                    a_ran.fetch_add(1, Ordering::Relaxed);
                },
                || {
                    b_ran.fetch_add(1, Ordering::Relaxed);
                },
            );
        }
        assert_eq!(a_ran.load(Ordering::Relaxed), 50);
        assert_eq!(b_ran.load(Ordering::Relaxed), 50);
        assert_eq!(pool.stats().pair_jobs, 50);
    }

    #[test]
    fn pair_composes_with_element_dispatch() {
        // The caller side of a pair may dispatch on the pool — the Schwarz
        // overlap pattern (coarse on the helper, pooled fine sweep here).
        let pool = WorkerPool::new(4);
        let coarse = AtomicUsize::new(0);
        let fine = AtomicUsize::new(0);
        pool.pair(
            || {
                coarse.fetch_add(1, Ordering::Relaxed);
            },
            || {
                pool.for_each(500, 11, |_| {
                    fine.fetch_add(1, Ordering::Relaxed);
                });
            },
        );
        assert_eq!(coarse.load(Ordering::Relaxed), 1);
        assert_eq!(fine.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.for_each(100, 1, |i| {
                if i == 37 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err(), "kernel panic must propagate to the dispatcher");
        // The workers caught the panic and are still serving epochs.
        let s = pool.sum(100, 7, |i| i as f64);
        assert_eq!(s, 4950.0);
    }

    #[test]
    fn concurrent_dispatchers_serialize_on_the_gate() {
        let pool = WorkerPool::new(3);
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = pool.clone();
                let total = &total;
                scope.spawn(move || {
                    for _ in 0..20 {
                        pool.for_each(100, 9, |_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 20 * 100);
    }

    #[test]
    fn range_ptr_disjoint_writes() {
        let n = 256;
        let mut data = vec![0.0f64; n];
        let ptr = RangePtr::new(&mut data);
        let pool = WorkerPool::new(4);
        pool.for_each_range(n, 10, |start, end| {
            // SAFETY: chunk ranges are pairwise disjoint.
            let slice = unsafe { ptr.range_mut(start, end) };
            for (k, v) in slice.iter_mut().enumerate() {
                *v = (start + k) as f64;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as f64);
        }
    }

    #[test]
    fn free_functions_use_one_global_pool() {
        let hits = AtomicUsize::new(0);
        par_for(100, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        let s = par_reduce(10, |i| i as f64);
        assert_eq!(s, 45.0);
        assert!(std::ptr::eq(global_pool(), global_pool()));
    }

    #[test]
    fn reduce_chunk_depends_on_n_only() {
        // Same n → same partition regardless of any notion of threads.
        assert_eq!(reduce_chunk(1000), reduce_chunk(1000));
        assert_eq!(reduce_chunk(100), 256);
        assert_eq!(reduce_chunk(1 << 20), (1 << 20) / 64);
    }

    #[test]
    fn grain_gate_is_bitwise_invisible_and_counted() {
        let pool = WorkerPool::new(4);
        let n = 1000;
        let chunk = reduce_chunk(n);
        let term = |i: usize| (i as f64 + 0.1).sin() / (i as f64 + 1.0);
        let partial = |start: usize, end: usize| (start..end).map(term).sum::<f64>();
        let pooled = pool.sum_range(n, chunk, partial);
        let before = pool.stats();
        // Below the gate: runs inline, bumps `grained`, not `dispatches`.
        let gated = pool.sum_range_min(n, chunk, n + 1, partial);
        let after = pool.stats();
        assert_eq!(pooled.to_bits(), gated.to_bits());
        assert_eq!(after.grained, before.grained + 1);
        assert_eq!(after.dispatches, before.dispatches);
        // At or above the gate: delegates to the pooled path.
        let ungated = pool.sum_range_min(n, chunk, n, partial);
        let last = pool.stats();
        assert_eq!(pooled.to_bits(), ungated.to_bits());
        assert_eq!(last.dispatches, after.dispatches + 1);
        assert_eq!(last.grained, after.grained);
    }

    #[test]
    fn for_each_range_min_covers_all_indices_on_both_sides() {
        let pool = WorkerPool::new(3);
        for serial_below in [0, 64, 10_000] {
            let n = 257;
            let mut data = vec![0.0f64; n];
            let ptr = RangePtr::new(&mut data);
            pool.for_each_range_min(n, 16, serial_below, |start, end| {
                // SAFETY: chunk ranges are pairwise disjoint.
                let slice = unsafe { ptr.range_mut(start, end) };
                for (k, v) in slice.iter_mut().enumerate() {
                    *v = (start + k) as f64 + 1.0;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i as f64 + 1.0, "serial_below={serial_below}");
            }
        }
    }
}
