//! Synchronous host backend: the reference implementation every other
//! backend must agree with.

/// Immediate executor. `launch` runs the kernel on the calling thread with
/// no latency; useful as the semantics baseline in tests and for
//  serial-per-rank production runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct HostBackend;

impl HostBackend {
    /// Create the host backend.
    pub fn new() -> Self {
        Self
    }

    /// Run a kernel immediately on the calling thread.
    pub fn launch<F: FnOnce()>(&self, kernel: F) {
        kernel();
    }

    /// No queued work exists, so synchronization is a no-op.
    pub fn synchronize(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_runs_inline() {
        let backend = HostBackend::new();
        let mut x = 0;
        backend.launch(|| x = 42);
        assert_eq!(x, 42);
        backend.synchronize();
    }
}
