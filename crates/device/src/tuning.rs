//! Per-kernel dispatch-overhead crossover configuration.
//!
//! `BENCH_kernels.json` showed small kernels losing to their serial twins
//! (dot product: 3.6 µs serial vs 11.6 µs pooled) because pool wake +
//! reduce costs a fixed ~10 µs regardless of work size. The fix is a
//! per-kernel *grain gate*: below a tuned problem size the kernel runs
//! inline on the calling thread through the identical chunk traversal
//! ([`crate::WorkerPool::for_each_range_min`] /
//! [`crate::WorkerPool::sum_range_min`]), so the gate is bitwise-invisible
//! and only removes overhead.
//!
//! The thresholds live in one process-wide [`KernelTuning`], set **once**
//! before the first dispatch (from `run_dns --tuning FILE`, produced by
//! the `autotune_kernels` sweep) and immutable afterwards — kernel
//! selection is part of the determinism contract: a run records its
//! tuning in telemetry and an elastic restart replays with the same
//! table, so the gate decisions (and therefore the execution, though not
//! the bits, which never depend on the gate) are reproducible.

use std::sync::OnceLock;

/// Per-kernel serial/pooled crossover points, in the kernel's natural work
/// unit (elements for element loops, slice length for vector ops, groups
/// for gather-scatter). Work strictly below the threshold runs inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelTuning {
    /// Helmholtz fused apply: element count below which the sweep is inline.
    pub helmholtz_elems: usize,
    /// Element-FDM sweep: element count crossover.
    pub fdm_elems: usize,
    /// Gather-scatter local phase: group count crossover.
    pub gs_groups: usize,
    /// Global dot products: vector length crossover.
    pub dot_len: usize,
    /// Elementwise axpy/xpby/hadamard: vector length crossover.
    pub elemwise_len: usize,
    /// Physical gradient / weak divergence / dealiased advection:
    /// element count crossover.
    pub grad_elems: usize,
}

impl Default for KernelTuning {
    /// Conservative defaults measured on commodity 4–8 core hosts: element
    /// loops win pooled quickly (a p=7 Helmholtz element is ~5 µs of
    /// work), while pure bandwidth kernels need tens of thousands of
    /// entries to amortize the wake.
    fn default() -> Self {
        Self {
            helmholtz_elems: 8,
            fdm_elems: 8,
            gs_groups: 2048,
            dot_len: 32768,
            elemwise_len: 32768,
            grad_elems: 8,
        }
    }
}

impl KernelTuning {
    /// Serialize as a flat JSON object (stable key order).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"helmholtz_elems\":{},\"fdm_elems\":{},\"gs_groups\":{},",
                "\"dot_len\":{},\"elemwise_len\":{},\"grad_elems\":{}}}"
            ),
            self.helmholtz_elems,
            self.fdm_elems,
            self.gs_groups,
            self.dot_len,
            self.elemwise_len,
            self.grad_elems
        )
    }

    /// Parse the flat JSON object written by [`KernelTuning::to_json`] (or
    /// the `autotune_kernels` sweep). Unknown keys are ignored; missing
    /// keys keep their defaults; any malformed field is an error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut t = Self::default();
        let body = text
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| "tuning: expected a JSON object".to_string())?;
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, val) = part
                .split_once(':')
                .ok_or_else(|| format!("tuning: malformed entry `{part}`"))?;
            let key = key.trim().trim_matches('"');
            let val: usize = val
                .trim()
                .parse()
                .map_err(|_| format!("tuning: `{key}` is not a non-negative integer"))?;
            match key {
                "helmholtz_elems" => t.helmholtz_elems = val,
                "fdm_elems" => t.fdm_elems = val,
                "gs_groups" => t.gs_groups = val,
                "dot_len" => t.dot_len = val,
                "elemwise_len" => t.elemwise_len = val,
                "grad_elems" => t.grad_elems = val,
                _ => {}
            }
        }
        Ok(t)
    }
}

static TUNING: OnceLock<KernelTuning> = OnceLock::new();

/// Install the process-wide tuning table. Returns `false` (and changes
/// nothing) if a table was already installed — the first writer wins, and
/// kernels observed by any dispatch are never re-tuned mid-run.
pub fn set_tuning(t: KernelTuning) -> bool {
    TUNING.set(t).is_ok()
}

/// The process-wide tuning table (defaults until [`set_tuning`] runs;
/// first read freezes the defaults in).
pub fn tuning() -> &'static KernelTuning {
    TUNING.get_or_init(KernelTuning::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_and_defaults() {
        let t = KernelTuning {
            helmholtz_elems: 3,
            fdm_elems: 5,
            gs_groups: 700,
            dot_len: 9000,
            elemwise_len: 11,
            grad_elems: 2,
        };
        assert_eq!(KernelTuning::from_json(&t.to_json()).unwrap(), t);
        // Missing keys keep defaults; unknown keys are ignored.
        let partial = KernelTuning::from_json("{\"dot_len\": 42, \"future_knob\": 1}").unwrap();
        assert_eq!(partial.dot_len, 42);
        assert_eq!(partial.fdm_elems, KernelTuning::default().fdm_elems);
        assert!(KernelTuning::from_json("not json").is_err());
        assert!(KernelTuning::from_json("{\"dot_len\": -3}").is_err());
    }

    #[test]
    fn global_table_is_set_once() {
        // Whichever of set/get runs first freezes the table for the
        // process; a second set must report failure and change nothing.
        let first = *tuning();
        let won = set_tuning(KernelTuning {
            dot_len: first.dot_len + 1,
            ..first
        });
        assert!(!won);
        assert_eq!(*tuning(), first);
    }
}
