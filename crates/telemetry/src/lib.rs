//! # rbx-telemetry — the measurement substrate
//!
//! The paper's evaluation (Fig. 2 overlap gain, Fig. 4 per-step wall-time
//! breakdown, Table 1 platform comparison) rests on "MPI_Wtime timings
//! around relevant code regions, with global synchronisation points"
//! (§6.1). This crate is that instrumentation layer, grown past the
//! original four-bin `PhaseTimers`:
//!
//! * [`span::SpanTracer`] — hierarchical wall-clock spans ("regions") with
//!   nesting, per-span counters and path-keyed aggregation, so pressure
//!   time can be attributed below the phase level (coarse solve, fine FDM,
//!   CRS transfer, Krylov iterations).
//! * [`metrics::MetricsRegistry`] — counters, gauges and log-bucketed
//!   histograms fed by solver, gather-scatter and step-loop hooks.
//! * [`sink::JsonlSink`] + [`metrics::MetricsRegistry::render_prometheus`]
//!   — machine-readable export: a JSONL event stream (one record per step,
//!   per solve, per recovery event) and a Prometheus text-exposition
//!   snapshot.
//! * [`schema`] — versioned record schemas (`rbx.telemetry.v1`,
//!   `rbx.bench.v1`) with validators, so CI can check every emitted line.
//!
//! The [`Telemetry`] handle ties these together. It is an `Arc`-shared,
//! thread-safe handle that components clone at construction time. When
//! disabled (the default), every instrumentation point reduces to a single
//! relaxed atomic load — cheap enough to leave compiled into the hot
//! paths.

pub mod json;
pub mod metrics;
pub mod names;
pub mod schema;
pub mod sink;
pub mod span;

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use json::Value;
use metrics::MetricsRegistry;
use sink::JsonlSink;
use span::{SpanGuard, SpanTracer};

struct TelemetryInner {
    enabled: AtomicBool,
    tracer: SpanTracer,
    metrics: MetricsRegistry,
    sink: Mutex<Option<JsonlSink>>,
}

/// Shared observability handle. Cloning is cheap (an `Arc` bump); all
/// clones observe the same tracer, registry and sink.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Telemetry {
    fn with_enabled(enabled: bool) -> Self {
        Self {
            inner: Arc::new(TelemetryInner {
                enabled: AtomicBool::new(enabled),
                tracer: SpanTracer::new(),
                metrics: MetricsRegistry::new(),
                sink: Mutex::new(None),
            }),
        }
    }

    /// A disabled handle: every instrumentation call is a near-no-op
    /// (single relaxed atomic load). This is what components construct by
    /// default.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// An enabled handle collecting spans and metrics (no sink until
    /// [`Telemetry::open_jsonl`]).
    pub fn enabled() -> Self {
        Self::with_enabled(true)
    }

    /// Switch collection on/off at runtime.
    pub fn set_enabled(&self, on: bool) {
        // ordering: a lone on/off flag — no data is published through it
        // (tracer/metrics state lives behind its own locks), and a span
        // racing the toggle may harmlessly record or skip one event.
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Is collection active? Hot paths gate on this single load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        // ordering: advisory read of the enabled flag (see set_enabled);
        // keeping this Relaxed is what makes disabled-telemetry hot paths
        // a single uncontended load.
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// The span tracer (always accessible; its spans record regardless of
    /// the enabled flag — use [`Telemetry::span`]/[`Telemetry::span_abs`]
    /// for gated spans).
    pub fn tracer(&self) -> &SpanTracer {
        &self.inner.tracer
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Open a span nested under the calling thread's innermost open span.
    /// No-op (no allocation, no lock) when disabled.
    #[inline]
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        if self.is_enabled() {
            self.inner.tracer.span(name)
        } else {
            SpanGuard::noop()
        }
    }

    /// Open a span at an absolute path, ignoring the thread's current
    /// stack. Used where work hops threads (the overlapped Schwarz coarse
    /// solve) so both execution modes produce identical span paths.
    #[inline]
    pub fn span_abs(&self, path: &str) -> SpanGuard<'_> {
        if self.is_enabled() {
            self.inner.tracer.span_at(path)
        } else {
            SpanGuard::noop()
        }
    }

    /// Add to a counter metric (gated).
    #[inline]
    pub fn counter_add(&self, name: &str, v: u64) {
        if self.is_enabled() {
            self.inner.metrics.counter_add(name, v);
        }
    }

    /// Set a gauge metric (gated).
    #[inline]
    pub fn gauge_set(&self, name: &str, v: f64) {
        if self.is_enabled() {
            self.inner.metrics.gauge_set(name, v);
        }
    }

    /// Observe a value into a log-bucketed histogram (gated).
    #[inline]
    pub fn histogram_observe(&self, name: &str, v: f64) {
        if self.is_enabled() {
            self.inner.metrics.histogram_observe(name, v);
        }
    }

    /// Cap span recording depth (spans nested deeper than this are
    /// timed-out of existence: they still nest but don't record).
    pub fn set_trace_depth(&self, depth: usize) {
        self.inner.tracer.set_max_depth(depth);
    }

    /// Attach a JSONL sink; subsequent [`Telemetry::emit`] calls append
    /// one line per record.
    pub fn open_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let sink = JsonlSink::create(path)?;
        *self.inner.sink.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
        Ok(())
    }

    /// Emit a record to the JSONL sink, if one is attached and telemetry
    /// is enabled. Returns whether the record was written. I/O errors are
    /// swallowed after the first failure (telemetry must never take down
    /// a simulation).
    pub fn emit(&self, record: &Value) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let mut guard = self.inner.sink.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_mut() {
            Some(sink) => sink.write(record),
            None => false,
        }
    }

    /// Lines written to the JSONL sink so far.
    pub fn jsonl_lines(&self) -> u64 {
        self.inner
            .sink
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map_or(0, |s| s.lines())
    }

    /// Flush the JSONL sink (if any).
    pub fn flush(&self) {
        if let Some(sink) = self
            .inner
            .sink
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            sink.flush();
        }
    }

    /// Write a Prometheus text-exposition snapshot of the metrics
    /// registry, including span aggregates as `rbx_span_seconds_total` /
    /// `rbx_span_calls_total` series.
    pub fn write_prometheus(&self, path: &Path) -> std::io::Result<()> {
        let mut out = self.inner.metrics.render_prometheus();
        out.push_str(&self.inner.tracer.render_prometheus());
        std::fs::write(path, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        {
            let _g = tel.span("pressure");
            tel.counter_add("rbx_steps_total", 1);
            tel.gauge_set("rbx_step_dt", 1e-3);
            tel.histogram_observe("rbx_solve_iterations", 12.0);
        }
        assert!(tel.tracer().snapshot().is_empty());
        assert!(tel.metrics().render_prometheus().is_empty());
        assert!(!tel.emit(&Value::Null));
    }

    #[test]
    fn enabled_handle_collects() {
        let tel = Telemetry::enabled();
        {
            let _p = tel.span("pressure");
            let _k = tel.span("krylov");
            tel.counter_add("rbx_steps_total", 2);
        }
        let snap = tel.tracer().snapshot();
        let paths: Vec<&str> = snap.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"pressure"));
        assert!(paths.contains(&"pressure/krylov"));
        assert!(tel
            .metrics()
            .render_prometheus()
            .contains("rbx_steps_total 2"));
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::enabled();
        let other = tel.clone();
        other.counter_add("c", 5);
        assert!(tel.metrics().render_prometheus().contains("c 5"));
        tel.set_enabled(false);
        assert!(!other.is_enabled());
    }
}
