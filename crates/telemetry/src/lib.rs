//! # rbx-telemetry — the measurement substrate
//!
//! The paper's evaluation (Fig. 2 overlap gain, Fig. 4 per-step wall-time
//! breakdown, Table 1 platform comparison) rests on "MPI_Wtime timings
//! around relevant code regions, with global synchronisation points"
//! (§6.1). This crate is that instrumentation layer, grown past the
//! original four-bin `PhaseTimers`:
//!
//! * [`span::SpanTracer`] — hierarchical wall-clock spans ("regions") with
//!   nesting, per-span counters and path-keyed aggregation, so pressure
//!   time can be attributed below the phase level (coarse solve, fine FDM,
//!   CRS transfer, Krylov iterations).
//! * [`metrics::MetricsRegistry`] — counters, gauges and log-bucketed
//!   histograms fed by solver, gather-scatter and step-loop hooks.
//! * [`sink::JsonlSink`] + [`metrics::MetricsRegistry::render_prometheus`]
//!   — machine-readable export: a JSONL event stream (one record per step,
//!   per solve, per recovery event) and a Prometheus text-exposition
//!   snapshot.
//! * [`schema`] — versioned record schemas (`rbx.telemetry.v1`,
//!   `rbx.bench.v1`) with validators, so CI can check every emitted line.
//!
//! The [`Telemetry`] handle ties these together. It is an `Arc`-shared,
//! thread-safe handle that components clone at construction time. When
//! disabled (the default), every instrumentation point reduces to a single
//! relaxed atomic load — cheap enough to leave compiled into the hot
//! paths.

pub mod json;
pub mod metrics;
pub mod names;
pub mod ring;
pub mod schema;
pub mod sink;
pub mod span;

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use json::Value;
use metrics::MetricsRegistry;
use ring::FlightRing;
use sink::JsonlSink;
use span::{SpanGuard, SpanTracer};

/// Observer invoked (outside any sink lock) for every emitted record.
/// Used by the online health detectors to see the step stream without
/// the producer knowing they exist. Must not call back into
/// [`Telemetry::emit`] on the same handle.
pub type EmitTap = Arc<dyn Fn(&Value) + Send + Sync>;

struct TelemetryInner {
    enabled: AtomicBool,
    tracer: SpanTracer,
    metrics: MetricsRegistry,
    sink: Mutex<Option<JsonlSink>>,
    flight: Mutex<Option<FlightRing>>,
    tap: Mutex<Option<EmitTap>>,
}

/// Shared observability handle. Cloning is cheap (an `Arc` bump); all
/// clones observe the same tracer, registry and sink.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Telemetry {
    fn with_enabled(enabled: bool) -> Self {
        Self {
            inner: Arc::new(TelemetryInner {
                enabled: AtomicBool::new(enabled),
                tracer: SpanTracer::new(),
                metrics: MetricsRegistry::new(),
                sink: Mutex::new(None),
                flight: Mutex::new(None),
                tap: Mutex::new(None),
            }),
        }
    }

    /// A disabled handle: every instrumentation call is a near-no-op
    /// (single relaxed atomic load). This is what components construct by
    /// default.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    /// An enabled handle collecting spans and metrics (no sink until
    /// [`Telemetry::open_jsonl`]).
    pub fn enabled() -> Self {
        Self::with_enabled(true)
    }

    /// Switch collection on/off at runtime.
    pub fn set_enabled(&self, on: bool) {
        // ordering: a lone on/off flag — no data is published through it
        // (tracer/metrics state lives behind its own locks), and a span
        // racing the toggle may harmlessly record or skip one event.
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Is collection active? Hot paths gate on this single load.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        // ordering: advisory read of the enabled flag (see set_enabled);
        // keeping this Relaxed is what makes disabled-telemetry hot paths
        // a single uncontended load.
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// The span tracer (always accessible; its spans record regardless of
    /// the enabled flag — use [`Telemetry::span`]/[`Telemetry::span_abs`]
    /// for gated spans).
    pub fn tracer(&self) -> &SpanTracer {
        &self.inner.tracer
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Open a span nested under the calling thread's innermost open span.
    /// No-op (no allocation, no lock) when disabled.
    #[inline]
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        if self.is_enabled() {
            self.inner.tracer.span(name)
        } else {
            SpanGuard::noop()
        }
    }

    /// Open a span at an absolute path, ignoring the thread's current
    /// stack. Used where work hops threads (the overlapped Schwarz coarse
    /// solve) so both execution modes produce identical span paths.
    #[inline]
    pub fn span_abs(&self, path: &str) -> SpanGuard<'_> {
        if self.is_enabled() {
            self.inner.tracer.span_at(path)
        } else {
            SpanGuard::noop()
        }
    }

    /// Add to a counter metric (gated).
    #[inline]
    pub fn counter_add(&self, name: &str, v: u64) {
        if self.is_enabled() {
            self.inner.metrics.counter_add(name, v);
        }
    }

    /// Set a gauge metric (gated).
    #[inline]
    pub fn gauge_set(&self, name: &str, v: f64) {
        if self.is_enabled() {
            self.inner.metrics.gauge_set(name, v);
        }
    }

    /// Observe a value into a log-bucketed histogram (gated).
    #[inline]
    pub fn histogram_observe(&self, name: &str, v: f64) {
        if self.is_enabled() {
            self.inner.metrics.histogram_observe(name, v);
        }
    }

    /// Cap span recording depth (spans nested deeper than this are
    /// timed-out of existence: they still nest but don't record).
    pub fn set_trace_depth(&self, depth: usize) {
        self.inner.tracer.set_max_depth(depth);
    }

    /// Attach a JSONL sink; subsequent [`Telemetry::emit`] calls append
    /// one line per record.
    pub fn open_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let sink = JsonlSink::create(path)?;
        *self.inner.sink.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
        Ok(())
    }

    /// Emit a record: feed the flight ring (if attached), write to the
    /// JSONL sink (if attached), then invoke the emit tap (if installed)
    /// — in that order, each behind its own short lock so a slow consumer
    /// never blocks the others. Returns whether the record reached the
    /// sink. I/O errors are swallowed after the first failure (telemetry
    /// must never take down a simulation).
    pub fn emit(&self, record: &Value) -> bool {
        if !self.is_enabled() {
            return false;
        }
        {
            let mut guard = self.inner.flight.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(ring) = guard.as_mut() {
                ring.push(record);
            }
        }
        let wrote = {
            let mut guard = self.inner.sink.lock().unwrap_or_else(|e| e.into_inner());
            match guard.as_mut() {
                Some(sink) => sink.write(record),
                None => false,
            }
        };
        // Clone the tap out of its lock before calling, so the callback
        // runs without holding any telemetry lock (it may inspect metrics
        // or write its own files, but must not re-enter emit).
        let tap = self
            .inner
            .tap
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Some(tap) = tap {
            tap(record);
        }
        wrote
    }

    /// Attach a flight ring retaining the last `capacity` emitted records
    /// for post-mortem dumps. Replaces any existing ring.
    pub fn attach_flight(&self, capacity: usize) {
        *self.inner.flight.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(FlightRing::new(capacity));
    }

    /// Number of records currently retained by the flight ring.
    pub fn flight_len(&self) -> usize {
        self.inner
            .flight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map_or(0, FlightRing::len)
    }

    /// Dump the flight ring as a `rbx.flight.v1` post-mortem file: one
    /// header line identifying the dumping rank and trigger, then the
    /// retained records oldest-first. Returns the record count written
    /// (0 with no error if no ring is attached). The ring keeps its
    /// contents — several triggers may dump the same window.
    pub fn dump_flight(
        &self,
        path: &Path,
        rank: usize,
        ranks: usize,
        reason: &str,
        step: u64,
    ) -> std::io::Result<usize> {
        let guard = self.inner.flight.lock().unwrap_or_else(|e| e.into_inner());
        let ring = match guard.as_ref() {
            Some(r) => r,
            None => return Ok(0),
        };
        let header = Value::obj([
            ("schema", Value::str(schema::FLIGHT_SCHEMA)),
            ("kind", Value::str("flight_header")),
            ("rank", Value::int(rank as u64)),
            ("ranks", Value::int(ranks as u64)),
            ("reason", Value::str(reason)),
            ("step", Value::int(step)),
            ("records", Value::int(ring.len() as u64)),
            ("overwritten", Value::int(ring.overwritten())),
        ]);
        let mut out = String::with_capacity(256 + ring.slot_bytes() + ring.len());
        header.write_into(&mut out);
        out.push('\n');
        for line in ring.iter() {
            out.push_str(line);
            out.push('\n');
        }
        let n = ring.len();
        drop(guard);
        std::fs::write(path, out)?;
        self.counter_add(names::FLIGHT_DUMPS_TOTAL, 1);
        Ok(n)
    }

    /// Install (or replace) the emit tap. The callback sees every record
    /// that passes the enabled gate, after sink write, outside all locks.
    pub fn set_tap(&self, tap: EmitTap) {
        *self.inner.tap.lock().unwrap_or_else(|e| e.into_inner()) = Some(tap);
    }

    /// Remove the emit tap.
    pub fn clear_tap(&self) {
        *self.inner.tap.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    /// Lines written to the JSONL sink so far.
    pub fn jsonl_lines(&self) -> u64 {
        self.inner
            .sink
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map_or(0, |s| s.lines())
    }

    /// Flush the JSONL sink (if any).
    pub fn flush(&self) {
        if let Some(sink) = self
            .inner
            .sink
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            sink.flush();
        }
    }

    /// Write a Prometheus text-exposition snapshot of the metrics
    /// registry, including span aggregates as `rbx_span_seconds_total` /
    /// `rbx_span_calls_total` series.
    pub fn write_prometheus(&self, path: &Path) -> std::io::Result<()> {
        let mut out = self.inner.metrics.render_prometheus();
        out.push_str(&self.inner.tracer.render_prometheus());
        std::fs::write(path, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        {
            let _g = tel.span("pressure");
            tel.counter_add("rbx_steps_total", 1);
            tel.gauge_set("rbx_step_dt", 1e-3);
            tel.histogram_observe("rbx_solve_iterations", 12.0);
        }
        assert!(tel.tracer().snapshot().is_empty());
        assert!(tel.metrics().render_prometheus().is_empty());
        assert!(!tel.emit(&Value::Null));
    }

    #[test]
    fn enabled_handle_collects() {
        let tel = Telemetry::enabled();
        {
            let _p = tel.span("pressure");
            let _k = tel.span("krylov");
            tel.counter_add("rbx_steps_total", 2);
        }
        let snap = tel.tracer().snapshot();
        let paths: Vec<&str> = snap.iter().map(|s| s.path.as_str()).collect();
        assert!(paths.contains(&"pressure"));
        assert!(paths.contains(&"pressure/krylov"));
        assert!(tel
            .metrics()
            .render_prometheus()
            .contains("rbx_steps_total 2"));
    }

    #[test]
    fn flight_ring_fed_without_sink() {
        // The flight recorder must see records even when no JSONL sink is
        // open (a crash post-mortem is most valuable on runs that weren't
        // streaming telemetry to disk).
        let tel = Telemetry::enabled();
        tel.attach_flight(4);
        for i in 0..9u64 {
            let rec = Value::obj([("kind", Value::str("step")), ("step", Value::int(i))]);
            assert!(!tel.emit(&rec)); // no sink -> not written
        }
        assert_eq!(tel.flight_len(), 4);
        let dir = std::env::temp_dir().join("rbx_flight_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.jsonl");
        let n = tel.dump_flight(&path, 0, 2, "divergence", 8).unwrap();
        assert_eq!(n, 4);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        let header = Value::parse(lines.next().unwrap()).unwrap();
        schema::validate_flight_header(&header).unwrap();
        assert_eq!(header.get("records").and_then(Value::as_u64), Some(4));
        assert_eq!(header.get("overwritten").and_then(Value::as_u64), Some(5));
        assert_eq!(lines.count(), 4);
        assert!(tel
            .metrics()
            .render_prometheus()
            .contains("rbx_flight_dumps_total 1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dump_without_ring_is_noop() {
        let tel = Telemetry::enabled();
        let path = std::env::temp_dir().join("rbx_flight_never_written.jsonl");
        std::fs::remove_file(&path).ok();
        assert_eq!(tel.dump_flight(&path, 0, 1, "x", 0).unwrap(), 0);
        assert!(!path.exists());
    }

    #[test]
    fn tap_sees_emitted_records() {
        use std::sync::atomic::AtomicU64;
        let tel = Telemetry::enabled();
        let seen = Arc::new(AtomicU64::new(0));
        let seen_tap = Arc::clone(&seen);
        tel.set_tap(Arc::new(move |rec: &Value| {
            if rec.get("kind").and_then(Value::as_str) == Some("step") {
                // ordering: test-only event counter, asserted after the
                // single-threaded emit calls return.
                seen_tap.fetch_add(1, Ordering::Relaxed);
            }
        }));
        tel.emit(&Value::obj([("kind", Value::str("step"))]));
        tel.emit(&Value::obj([("kind", Value::str("solve"))]));
        tel.emit(&Value::obj([("kind", Value::str("step"))]));
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        tel.clear_tap();
        tel.emit(&Value::obj([("kind", Value::str("step"))]));
        assert_eq!(seen.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::enabled();
        let other = tel.clone();
        other.counter_add("c", 5);
        assert!(tel.metrics().render_prometheus().contains("c 5"));
        tel.set_enabled(false);
        assert!(!other.is_enabled());
    }
}
