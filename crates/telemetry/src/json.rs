//! Self-contained JSON values: compact writer + recursive-descent parser.
//!
//! The workspace deliberately avoids a serde_json dependency (config.rs
//! already hand-writes its JSON); telemetry needs both directions — a
//! writer for the JSONL/bench sinks and a parser for the schema validator
//! — so this module provides a small `Value` tree with exact round-trip
//! semantics for the records the sinks produce. Object key order is
//! preserved (insertion order), which keeps emitted records stable and
//! diffable.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Convenience constructors keeping call sites terse.
    pub fn num(n: f64) -> Value {
        Value::Num(n)
    }

    pub fn int(n: u64) -> Value {
        Value::Num(n as f64)
    }

    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    pub fn arr(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Arr(items.into_iter().collect())
    }

    /// Serialize into a caller-owned buffer (cleared first). The buffer's
    /// capacity is retained across calls, which is what lets the flight
    /// ring re-record into the same slots with zero steady-state
    /// allocation once every slot has grown to its working size.
    pub fn write_into(&self, out: &mut String) {
        out.clear();
        write_value(self, out);
    }

    /// Parse a JSON document (the whole string must be one value plus
    /// optional surrounding whitespace).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                // JSON has no NaN/Inf; null is the conventional fallback.
                out.push_str("null");
            } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n:e}"));
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    /// Compact single-line JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not needed for the
                            // records this crate emits.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8".to_string())?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number {text:?}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::obj([
            ("schema", Value::str("rbx.telemetry.v1")),
            ("kind", Value::str("step")),
            ("step", Value::int(42)),
            ("dt", Value::num(1.25e-3)),
            ("converged", Value::Bool(true)),
            ("missing", Value::Null),
            (
                "phases",
                Value::obj([("pressure", Value::num(0.8)), ("other", Value::num(0.2))]),
            ),
            (
                "iters",
                Value::arr([Value::int(3), Value::int(4), Value::int(5)]),
            ),
        ]);
        let text = v.to_string();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
        // Key order preserved.
        assert_eq!(back.as_obj().unwrap()[0].0, "schema");
    }

    #[test]
    fn integers_print_without_exponent() {
        assert_eq!(Value::int(7).to_string(), "7");
        assert_eq!(Value::num(-3.0).to_string(), "-3");
        assert_eq!(Value::parse("1e3").unwrap(), Value::Num(1000.0));
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Value::num(f64::NAN).to_string(), "null");
        assert_eq!(Value::num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape() {
        let v = Value::str("a\"b\\c\nd");
        let text = v.to_string();
        assert_eq!(text, r#""a\"b\\c\nd""#);
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn accessors() {
        let v = Value::parse(r#"{"a": 3, "b": [1.5], "c": "x", "d": true}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Value::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("d").and_then(Value::as_bool), Some(true));
        assert!(v.get("e").is_none());
    }
}
