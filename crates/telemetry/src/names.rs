//! Canonical span-path and metric-name registry for `rbx.telemetry.v1`.
//!
//! Every span path and metric name the production code emits is declared
//! here, once, next to its kind and meaning. The `rbx-audit` analyzer
//! cross-checks string literals at instrumentation call sites in
//! `crates/{core,la,gs}` against this table, so instrumentation and schema
//! cannot silently diverge: renaming a span in code without updating the
//! registry (or vice versa) fails CI.
//!
//! Dashboards and the JSONL/Prometheus consumers should treat this module
//! as the source of truth for what a given name means.

/// Kind of a registered metric, matching how the `MetricsRegistry` is fed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter (`counter_add`).
    Counter,
    /// Last-write-wins gauge (`gauge_set`).
    Gauge,
    /// Log-bucketed histogram (`histogram_observe`).
    Histogram,
}

/// A registered metric: base name (labels stripped), kind, and meaning.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Base name without any `{label=...}` suffix.
    pub name: &'static str,
    pub kind: MetricKind,
    /// One-line description for dashboards.
    pub help: &'static str,
}

/// A registered span path (absolute, `/`-separated).
#[derive(Debug, Clone, Copy)]
pub struct SpanDef {
    pub path: &'static str,
    pub help: &'static str,
}

/// All span paths production code opens, as absolute paths. Spans opened
/// with the *relative* [`crate::Telemetry::span`] API nest under whichever
/// span is innermost on the calling thread; the registry lists the paths
/// they produce in the canonical step-loop nesting.
pub const SPANS: &[SpanDef] = &[
    SpanDef {
        path: "step/pressure",
        help: "pressure RHS assembly + Poisson solve (Fig. 4 bin)",
    },
    SpanDef {
        path: "step/velocity",
        help: "velocity RHS + Helmholtz solves (Fig. 4 bin)",
    },
    SpanDef {
        path: "step/temperature",
        help: "temperature RHS + Helmholtz solve (Fig. 4 bin)",
    },
    SpanDef {
        path: "step/other",
        help: "advection, lag shuffling, everything else (Fig. 4 bin)",
    },
    SpanDef {
        path: "schwarz/coarse",
        help: "two-level Schwarz coarse correction (restrict+solve+prolong)",
    },
    SpanDef {
        path: "schwarz/coarse/restrict",
        help: "fine-to-coarse restriction transfer",
    },
    SpanDef {
        path: "schwarz/coarse/solve",
        help: "coarse-space direct/iterative solve",
    },
    SpanDef {
        path: "schwarz/coarse/prolong",
        help: "coarse-to-fine prolongation transfer",
    },
    SpanDef {
        path: "schwarz/fdm",
        help: "element-local fast-diagonalization sweep (fine branch)",
    },
    SpanDef {
        path: "schwarz/gs",
        help: "weighted gather-scatter averaging after the overlap joins",
    },
    SpanDef {
        path: "gs/local",
        help: "gather-scatter: rank-local group reduction",
    },
    SpanDef {
        path: "gs/shared",
        help: "gather-scatter: inter-rank exchange + combine",
    },
    SpanDef {
        path: "gs/scatter",
        help: "gather-scatter: write combined values back to nodes",
    },
    SpanDef {
        path: "pool/helmholtz",
        help: "pooled Helmholtz operator apply inside a Krylov solve",
    },
    SpanDef {
        path: "pool/dot",
        help: "pooled deterministic dot product inside a Krylov solve",
    },
    SpanDef {
        path: "pool/advect",
        help: "pooled dealiased advection of velocity and temperature",
    },
    SpanDef {
        path: "pool/fdm",
        help: "pooled element-FDM sweep (Schwarz fine level)",
    },
    SpanDef {
        path: "pool/gs",
        help: "pooled gather-scatter local gather / scatter phase",
    },
    SpanDef {
        path: "comm/recv",
        help: "hardened deadline receive (unframe + dedupe + resequence)",
    },
    SpanDef {
        path: "comm/retry",
        help: "receive retry after a timeout (backoff applied)",
    },
    SpanDef {
        path: "comm/abort",
        help: "poisoned-epoch abort: collective drain and epoch bump",
    },
    SpanDef {
        path: "repartition/plan",
        help: "restart repartitioner: RCB over the surviving rank count",
    },
    SpanDef {
        path: "repartition/rebuild",
        help: "rebuild of simulation + gather-scatter on the new partition",
    },
    SpanDef {
        path: "repartition/restore",
        help: "topology-free checkpoint restore onto the new partition",
    },
];

/// All metric base names production code feeds. Call sites may append
/// `{label=value}` suffixes; the audit strips those before the lookup.
pub const METRICS: &[MetricDef] = &[
    MetricDef {
        name: "rbx_steps_total",
        kind: MetricKind::Counter,
        help: "completed time steps",
    },
    MetricDef {
        name: "rbx_step_verdict_total",
        kind: MetricKind::Counter,
        help: "step verdicts by outcome label",
    },
    MetricDef {
        name: "rbx_step_dt",
        kind: MetricKind::Gauge,
        help: "current time-step size",
    },
    MetricDef {
        name: "rbx_sim_time",
        kind: MetricKind::Gauge,
        help: "simulated time",
    },
    MetricDef {
        name: "rbx_cfl",
        kind: MetricKind::Gauge,
        help: "advective CFL number of the last step",
    },
    MetricDef {
        name: "rbx_nusselt_hot",
        kind: MetricKind::Gauge,
        help: "instantaneous Nusselt number at the hot plate",
    },
    MetricDef {
        name: "rbx_step_wall_seconds",
        kind: MetricKind::Histogram,
        help: "wall-clock seconds per completed step",
    },
    MetricDef {
        name: "rbx_solve_iterations",
        kind: MetricKind::Histogram,
        help: "Krylov iterations per solve, labelled by solver/label",
    },
    MetricDef {
        name: "rbx_solve_initial_residual",
        kind: MetricKind::Histogram,
        help: "initial residual norm per solve",
    },
    MetricDef {
        name: "rbx_solve_final_residual",
        kind: MetricKind::Histogram,
        help: "final residual norm per solve",
    },
    MetricDef {
        name: "rbx_solve_outcome_total",
        kind: MetricKind::Counter,
        help: "solve outcomes by solver/health labels",
    },
    MetricDef {
        name: "rbx_recovery_events_total",
        kind: MetricKind::Counter,
        help: "resilience events by event label",
    },
    MetricDef {
        name: "rbx_gs_messages_total",
        kind: MetricKind::Counter,
        help: "gather-scatter messages exchanged",
    },
    MetricDef {
        name: "rbx_gs_bytes_total",
        kind: MetricKind::Counter,
        help: "gather-scatter payload bytes exchanged",
    },
    MetricDef {
        name: "rbx_pool_threads",
        kind: MetricKind::Gauge,
        help: "worker-pool size (workers + calling thread)",
    },
    MetricDef {
        name: "rbx_pool_dispatches_total",
        kind: MetricKind::Counter,
        help: "parallel regions dispatched to the worker pool",
    },
    MetricDef {
        name: "rbx_pool_chunks_total",
        kind: MetricKind::Counter,
        help: "self-scheduled chunks claimed across pool dispatches",
    },
    MetricDef {
        name: "rbx_pool_grained_total",
        kind: MetricKind::Counter,
        help: "parallel regions run inline because the work sat below the tuned grain crossover",
    },
    MetricDef {
        name: "rbx_kernel_simd_active",
        kind: MetricKind::Gauge,
        help: "active SIMD kernel level (0 = scalar, 1 = avx2+fma); fixed for a whole run",
    },
    MetricDef {
        name: "rbx_pool_items_total",
        kind: MetricKind::Counter,
        help: "loop iterations covered by pool dispatches",
    },
    MetricDef {
        name: "rbx_comm_timeouts_total",
        kind: MetricKind::Counter,
        help: "receives that exhausted their deadline and retry budget",
    },
    MetricDef {
        name: "rbx_comm_retries_total",
        kind: MetricKind::Counter,
        help: "receive retry attempts after a timed-out attempt",
    },
    MetricDef {
        name: "rbx_comm_corrupt_detected_total",
        kind: MetricKind::Counter,
        help: "frames rejected by the CRC-32 framing check",
    },
    MetricDef {
        name: "rbx_comm_duplicates_total",
        kind: MetricKind::Counter,
        help: "duplicated frames shed by sequence-number dedupe",
    },
    MetricDef {
        name: "rbx_comm_reordered_total",
        kind: MetricKind::Counter,
        help: "out-of-order frames parked for in-order delivery",
    },
    MetricDef {
        name: "rbx_comm_epoch_aborts_total",
        kind: MetricKind::Counter,
        help: "poisoned-epoch aborts recovered from",
    },
    MetricDef {
        name: "rbx_comm_pending_highwater",
        kind: MetricKind::Gauge,
        help: "high-water mark of the unmatched-message pending buffer",
    },
    MetricDef {
        name: "rbx_recovery_shrink_total",
        kind: MetricKind::Counter,
        help: "shrink-and-continue events (permanent rank death survived)",
    },
    MetricDef {
        name: "rbx_repartition_moved_elements",
        kind: MetricKind::Counter,
        help: "elements reassigned to a different rank by the restart repartitioner",
    },
    MetricDef {
        name: "rbx_flight_dumps_total",
        kind: MetricKind::Counter,
        help: "flight-recorder post-mortem dumps written",
    },
    MetricDef {
        name: "rbx_obs_phase_gap_total",
        kind: MetricKind::Counter,
        help: "steps whose phase spans failed to sum to wall time within 1%",
    },
    MetricDef {
        name: "rbx_health_events_total",
        kind: MetricKind::Counter,
        help: "online health-detector events by detector label",
    },
    MetricDef {
        name: "rbx_checkpoint_write_seconds",
        kind: MetricKind::Histogram,
        help: "wall-clock seconds per checkpoint write (latency-growth detector input)",
    },
    MetricDef {
        name: "rbx_obs_gather_reports_total",
        kind: MetricKind::Counter,
        help: "out-of-band step-health reports drained by rank 0",
    },
    MetricDef {
        name: "rbx_insitu_dropped_total",
        kind: MetricKind::Counter,
        help: "analysis slabs dropped by the solver-side tap (full window or dead analysis rank)",
    },
    MetricDef {
        name: "rbx_insitu_slabs_sent_total",
        kind: MetricKind::Counter,
        help: "analysis slabs accepted into the best-effort slab channel",
    },
    MetricDef {
        name: "rbx_insitu_queue_highwater",
        kind: MetricKind::Gauge,
        help: "high-water mark of unacked slabs in flight to the analysis plane",
    },
    MetricDef {
        name: "rbx_insitu_slabs_received_total",
        kind: MetricKind::Counter,
        help: "slabs decoded and analyzed by the analysis ranks",
    },
    MetricDef {
        name: "rbx_insitu_corrupt_total",
        kind: MetricKind::Counter,
        help: "slabs rejected by the analysis plane (framing, body, or payload decode)",
    },
    MetricDef {
        name: "rbx_insitu_gap_total",
        kind: MetricKind::Counter,
        help: "sequence gaps observed by analysis ranks (slabs dropped upstream)",
    },
    MetricDef {
        name: "rbx_insitu_compress_busy_total",
        kind: MetricKind::Counter,
        help: "field snapshots dropped because both async-compressor buffer slots were busy",
    },
    MetricDef {
        name: "rbx_insitu_records_total",
        kind: MetricKind::Counter,
        help: "rbx.insitu.v1 records emitted by the analysis plane",
    },
];

/// Metric fed by [`crate::Telemetry::dump_flight`].
pub const FLIGHT_DUMPS_TOTAL: &str = "rbx_flight_dumps_total";
/// Metric fed by the cross-rank aggregator's phase-sum re-verification.
pub const OBS_PHASE_GAP_TOTAL: &str = "rbx_obs_phase_gap_total";
/// Metric fed by the online health monitor (label: detector name).
pub const HEALTH_EVENTS_TOTAL: &str = "rbx_health_events_total";
/// Histogram fed by the resilient runner around checkpoint writes.
pub const CHECKPOINT_WRITE_SECONDS: &str = "rbx_checkpoint_write_seconds";
/// Metric fed by rank 0 when draining out-of-band step-health reports.
pub const OBS_GATHER_REPORTS_TOTAL: &str = "rbx_obs_gather_reports_total";
/// Metric fed by the solver-side slab tap on every dropped slab.
pub const INSITU_DROPPED_TOTAL: &str = "rbx_insitu_dropped_total";
/// Metric fed by the solver-side slab tap on every accepted slab.
pub const INSITU_SLABS_SENT_TOTAL: &str = "rbx_insitu_slabs_sent_total";
/// Gauge fed by the solver-side slab tap: unacked slabs in flight.
pub const INSITU_QUEUE_HIGHWATER: &str = "rbx_insitu_queue_highwater";
/// Metric fed by the analysis-rank runtime per decoded slab.
pub const INSITU_SLABS_RECEIVED_TOTAL: &str = "rbx_insitu_slabs_received_total";
/// Metric fed by the analysis-rank runtime per rejected slab.
pub const INSITU_CORRUPT_TOTAL: &str = "rbx_insitu_corrupt_total";
/// Metric fed by the analysis-rank runtime on observed sequence gaps.
pub const INSITU_GAP_TOTAL: &str = "rbx_insitu_gap_total";
/// Metric fed at the async-compressor call site on busy drops.
pub const INSITU_COMPRESS_BUSY_TOTAL: &str = "rbx_insitu_compress_busy_total";
/// Metric fed by the analysis-rank runtime per emitted record.
pub const INSITU_RECORDS_TOTAL: &str = "rbx_insitu_records_total";

/// Strip a `{label=...}` suffix from a metric name, returning the base
/// name the registry is keyed by.
pub fn metric_base(name: &str) -> &str {
    match name.find('{') {
        Some(i) => &name[..i],
        None => name,
    }
}

/// Look up a metric by (label-stripped) name.
pub fn find_metric(name: &str) -> Option<&'static MetricDef> {
    let base = metric_base(name);
    METRICS.iter().find(|m| m.name == base)
}

/// Look up a span path.
pub fn find_span(path: &str) -> Option<&'static SpanDef> {
    SPANS.iter().find(|s| s.path == path)
}

/// Is `path` a registered span path, or a descendant of one produced by
/// nesting relative spans under a registered absolute path?
pub fn span_registered(path: &str) -> bool {
    find_span(path).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_hit_registered_names() {
        assert!(find_span("schwarz/fdm").is_some());
        assert!(find_span("nope/nope").is_none());
        assert_eq!(
            find_metric("rbx_steps_total").map(|m| m.kind),
            Some(MetricKind::Counter)
        );
        assert!(find_metric("rbx_bogus").is_none());
    }

    #[test]
    fn label_suffixes_are_stripped() {
        let m = find_metric("rbx_solve_outcome_total{solver=pcg,health=healthy}")
            .expect("labelled lookup");
        assert_eq!(m.name, "rbx_solve_outcome_total");
        assert_eq!(m.kind, MetricKind::Counter);
        assert_eq!(metric_base("rbx_cfl"), "rbx_cfl");
    }

    #[test]
    fn registry_has_no_duplicates() {
        for (i, a) in METRICS.iter().enumerate() {
            for b in &METRICS[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate metric {}", a.name);
            }
        }
        for (i, a) in SPANS.iter().enumerate() {
            for b in &SPANS[i + 1..] {
                assert_ne!(a.path, b.path, "duplicate span {}", a.path);
            }
        }
    }
}
