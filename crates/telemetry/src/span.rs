//! Hierarchical span tracing.
//!
//! A *span* is a named, timed region. Spans nest: opening a span while
//! another is open on the same thread records the child under the
//! parent's path (`"step/pressure/krylov"`). Aggregation is path-keyed —
//! total seconds, call count and user counters per distinct path — which
//! is exactly the shape the paper's Fig. 2/Fig. 4 analyses need (spans
//! are wall-clock, so a parent's time includes its children; sibling
//! breakdowns are computed by the consumer).
//!
//! Threading: each thread has its own span stack (keyed by `ThreadId`),
//! so spans opened on a helper thread (the overlapped Schwarz coarse
//! solve) don't corrupt the main thread's nesting. Cross-thread regions
//! that must share a path with their serial counterpart use
//! [`SpanTracer::span_at`] with an absolute path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStat {
    /// Full path, `/`-separated.
    pub path: String,
    /// Times the span was opened.
    pub calls: u64,
    /// Total wall-clock seconds (children included).
    pub seconds: f64,
    /// User counters recorded on the span, summed over calls.
    pub counters: Vec<(String, u64)>,
}

#[derive(Default)]
struct SpanAgg {
    calls: u64,
    seconds: f64,
    counters: HashMap<String, u64>,
}

#[derive(Default)]
struct TracerState {
    agg: HashMap<String, SpanAgg>,
    /// Per-thread stack of open span paths. The `bool` marks whether the
    /// span records (false once the depth cap is exceeded — it still
    /// occupies a stack slot so deeper spans see the true depth).
    stacks: HashMap<ThreadId, Vec<(String, bool)>>,
}

/// Thread-safe hierarchical span tracer.
pub struct SpanTracer {
    state: Mutex<TracerState>,
    max_depth: AtomicUsize,
}

impl Default for SpanTracer {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanTracer {
    pub fn new() -> Self {
        Self {
            state: Mutex::new(TracerState::default()),
            max_depth: AtomicUsize::new(usize::MAX),
        }
    }

    /// Cap recording depth; spans nested deeper than `depth` levels are
    /// opened but not recorded.
    pub fn set_max_depth(&self, depth: usize) {
        // ordering: standalone tuning knob — no other data is published
        // with it, and a racing span seeing the old depth is harmless.
        self.max_depth.store(depth.max(1), Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TracerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Open a span nested under the calling thread's innermost open span
    /// (or at the root when none is open).
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let tid = std::thread::current().id();
        let mut st = self.lock();
        let stack = st.stacks.entry(tid).or_default();
        let path = match stack.last() {
            Some((parent, _)) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        let depth = stack.len() + 1;
        // ordering: advisory read of the depth cap (see set_max_depth).
        let record = depth <= self.max_depth.load(Ordering::Relaxed);
        stack.push((path, record));
        drop(st);
        SpanGuard {
            tracer: Some(self),
            start: Instant::now(),
            counters: Vec::new(),
        }
    }

    /// Open a span at an absolute path, regardless of the thread's stack.
    /// Children opened on the same thread nest under it as usual.
    pub fn span_at(&self, path: &str) -> SpanGuard<'_> {
        let tid = std::thread::current().id();
        let mut st = self.lock();
        let stack = st.stacks.entry(tid).or_default();
        let depth = path.split('/').count();
        // ordering: advisory read of the depth cap (see set_max_depth).
        let record = depth <= self.max_depth.load(Ordering::Relaxed);
        stack.push((path.to_string(), record));
        drop(st);
        SpanGuard {
            tracer: Some(self),
            start: Instant::now(),
            counters: Vec::new(),
        }
    }

    fn close(&self, elapsed: f64, counters: &[(&'static str, u64)]) {
        let tid = std::thread::current().id();
        let mut st = self.lock();
        let Some(stack) = st.stacks.get_mut(&tid) else {
            return;
        };
        let Some((path, record)) = stack.pop() else {
            return;
        };
        if stack.is_empty() {
            st.stacks.remove(&tid);
        }
        if !record {
            return;
        }
        let agg = st.agg.entry(path).or_default();
        agg.calls += 1;
        agg.seconds += elapsed;
        for &(k, v) in counters {
            *agg.counters.entry(k.to_string()).or_default() += v;
        }
    }

    /// Total seconds recorded under an exact path.
    pub fn seconds(&self, path: &str) -> f64 {
        self.lock().agg.get(path).map_or(0.0, |a| a.seconds)
    }

    /// Times a path was opened.
    pub fn calls(&self, path: &str) -> u64 {
        self.lock().agg.get(path).map_or(0, |a| a.calls)
    }

    /// A counter summed over all calls of a path.
    pub fn counter(&self, path: &str, key: &str) -> u64 {
        self.lock()
            .agg
            .get(path)
            .map_or(0, |a| a.counters.get(key).copied().unwrap_or(0))
    }

    /// All aggregates, sorted by path.
    pub fn snapshot(&self) -> Vec<SpanStat> {
        let st = self.lock();
        let mut out: Vec<SpanStat> = st
            .agg
            .iter()
            .map(|(path, a)| {
                let mut counters: Vec<(String, u64)> =
                    a.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
                counters.sort();
                SpanStat {
                    path: path.clone(),
                    calls: a.calls,
                    seconds: a.seconds,
                    counters,
                }
            })
            .collect();
        out.sort_by(|a, b| a.path.cmp(&b.path));
        out
    }

    /// Clear all aggregates (open spans keep nesting correctly; their
    /// recordings start fresh).
    pub fn reset(&self) {
        self.lock().agg.clear();
    }

    /// Span aggregates as Prometheus text-exposition series.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        if snap.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str("# TYPE rbx_span_seconds_total counter\n");
        for s in &snap {
            out.push_str(&format!(
                "rbx_span_seconds_total{{span=\"{}\"}} {}\n",
                s.path, s.seconds
            ));
        }
        out.push_str("# TYPE rbx_span_calls_total counter\n");
        for s in &snap {
            out.push_str(&format!(
                "rbx_span_calls_total{{span=\"{}\"}} {}\n",
                s.path, s.calls
            ));
        }
        out
    }
}

/// RAII guard closing its span on drop. Obtained from
/// [`SpanTracer::span`]/[`SpanTracer::span_at`] (recording) or
/// [`SpanGuard::noop`] (inert, used when telemetry is disabled).
pub struct SpanGuard<'a> {
    tracer: Option<&'a SpanTracer>,
    start: Instant,
    counters: Vec<(&'static str, u64)>,
}

impl SpanGuard<'_> {
    /// An inert guard: carries no tracer, records nothing on drop.
    pub fn noop() -> SpanGuard<'static> {
        SpanGuard {
            tracer: None,
            start: Instant::now(),
            counters: Vec::new(),
        }
    }

    /// Add to a per-span counter (e.g. bytes moved inside this region).
    /// Summed into the span's aggregate on drop.
    pub fn record(&mut self, key: &'static str, v: u64) {
        if self.tracer.is_none() {
            return;
        }
        for entry in &mut self.counters {
            if entry.0 == key {
                entry.1 += v;
                return;
            }
        }
        self.counters.push((key, v));
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer {
            tracer.close(self.start.elapsed().as_secs_f64(), &self.counters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_paths() {
        let t = SpanTracer::new();
        {
            let _a = t.span("step");
            {
                let _b = t.span("pressure");
                let _c = t.span("krylov");
            }
            let _d = t.span("velocity");
        }
        let paths: Vec<String> = t.snapshot().into_iter().map(|s| s.path).collect();
        assert_eq!(
            paths,
            vec![
                "step",
                "step/pressure",
                "step/pressure/krylov",
                "step/velocity"
            ]
        );
        assert_eq!(t.calls("step"), 1);
    }

    #[test]
    fn child_time_bounded_by_parent() {
        let t = SpanTracer::new();
        {
            let _p = t.span("parent");
            std::thread::sleep(std::time::Duration::from_millis(5));
            {
                let _c = t.span("child");
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
        let parent = t.seconds("parent");
        let child = t.seconds("parent/child");
        assert!(child > 0.0);
        assert!(child <= parent, "child {child} > parent {parent}");
        // Parent includes its own 5ms on top of the child.
        assert!(parent >= child + 0.004);
    }

    #[test]
    fn depth_cap_drops_deep_spans_only() {
        let t = SpanTracer::new();
        t.set_max_depth(2);
        {
            let _a = t.span("a");
            let _b = t.span("b");
            let _c = t.span("c"); // depth 3: not recorded
            let _d = t.span("d"); // depth 4: not recorded
        }
        let paths: Vec<String> = t.snapshot().into_iter().map(|s| s.path).collect();
        assert_eq!(paths, vec!["a", "a/b"]);
    }

    #[test]
    fn absolute_spans_share_paths_across_threads() {
        let t = SpanTracer::new();
        {
            let _serial = t.span_at("schwarz/coarse");
        }
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _overlapped = t.span_at("schwarz/coarse");
            });
        });
        assert_eq!(t.calls("schwarz/coarse"), 2);
    }

    #[test]
    fn per_span_counters_sum() {
        let t = SpanTracer::new();
        for _ in 0..3 {
            let mut g = t.span("gs/shared");
            g.record("bytes", 128);
            g.record("bytes", 64);
            g.record("messages", 2);
        }
        assert_eq!(t.counter("gs/shared", "bytes"), 3 * 192);
        assert_eq!(t.counter("gs/shared", "messages"), 6);
    }

    #[test]
    fn threads_have_independent_stacks() {
        let t = SpanTracer::new();
        let _outer = t.span("outer");
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Fresh thread: no inherited parent.
                let _g = t.span("helper");
            });
        });
        assert_eq!(t.calls("helper"), 1);
        assert_eq!(t.calls("outer/helper"), 0);
    }

    #[test]
    fn reset_clears_aggregates() {
        let t = SpanTracer::new();
        {
            let _g = t.span("x");
        }
        t.reset();
        assert!(t.snapshot().is_empty());
    }
}
