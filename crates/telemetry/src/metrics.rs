//! Metrics registry: counters, gauges and log-bucketed histograms.
//!
//! Names follow Prometheus conventions (`rbx_steps_total`,
//! `rbx_solve_iterations`). A name may carry a literal label set —
//! `rbx_step_verdict_total{verdict="healthy"}` — which the registry
//! treats as an opaque key; the Prometheus renderer groups series by base
//! name so each metric gets exactly one `# TYPE` line.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Histogram bucket upper bounds: two per decade from 1e-12 to 1e4
/// (`1e-12, 3.16e-12, 1e-11, …, 1e4`), covering residuals (~1e-12..1),
/// times (~1e-6..1e2 s) and iteration counts (~1..1e3) in one layout.
pub fn log_bucket_bounds() -> Vec<f64> {
    (-24..=8).map(|k| 10f64.powf(k as f64 / 2.0)).collect()
}

/// Index of the first bucket with `value <= bound`, or `None` when the
/// value overflows every bound (goes to +Inf).
pub fn bucket_index(bounds: &[f64], value: f64) -> Option<usize> {
    bounds.iter().position(|&b| value <= b)
}

#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    /// Observations above the last bound.
    overflow: u64,
    sum: f64,
    count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let bounds = log_bucket_bounds();
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n],
            overflow: 0,
            sum: 0.0,
            count: 0,
        }
    }

    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        match bucket_index(&self.bounds, value) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.sum += value;
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Non-cumulative per-bucket counts (`bounds[i]` is the upper edge).
    pub fn bucket_counts(&self) -> (&[f64], &[u64], u64) {
        (&self.bounds, &self.counts, self.overflow)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// Thread-safe metric store.
pub struct MetricsRegistry {
    map: Mutex<BTreeMap<String, Metric>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self {
            map: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn counter_add(&self, name: &str, v: u64) {
        let mut map = self.lock();
        match map.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += v,
            _ => debug_assert!(false, "metric {name} is not a counter"),
        }
    }

    pub fn gauge_set(&self, name: &str, v: f64) {
        let mut map = self.lock();
        match map.entry(name.to_string()).or_insert(Metric::Gauge(0.0)) {
            Metric::Gauge(g) => *g = v,
            _ => debug_assert!(false, "metric {name} is not a gauge"),
        }
    }

    pub fn histogram_observe(&self, name: &str, v: f64) {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.observe(v),
            _ => debug_assert!(false, "metric {name} is not a histogram"),
        }
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.lock().get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.lock().get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Observation count of a histogram (0 when absent).
    pub fn histogram_count(&self, name: &str) -> u64 {
        match self.lock().get(name) {
            Some(Metric::Histogram(h)) => h.count(),
            _ => 0,
        }
    }

    /// Drop every metric.
    pub fn reset(&self) {
        self.lock().clear();
    }

    /// Render all metrics in the Prometheus text exposition format.
    /// Histogram buckets are cumulative with a final `+Inf` bucket, as
    /// the format requires.
    pub fn render_prometheus(&self) -> String {
        let map = self.lock();
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, metric) in map.iter() {
            let base = name.split('{').next().unwrap_or(name);
            let fresh_base = base != last_base;
            if fresh_base {
                last_base = base.to_string();
            }
            match metric {
                Metric::Counter(c) => {
                    if fresh_base {
                        out.push_str(&format!("# TYPE {base} counter\n"));
                    }
                    out.push_str(&format!("{name} {c}\n"));
                }
                Metric::Gauge(g) => {
                    if fresh_base {
                        out.push_str(&format!("# TYPE {base} gauge\n"));
                    }
                    out.push_str(&format!("{name} {g}\n"));
                }
                Metric::Histogram(h) => {
                    if fresh_base {
                        out.push_str(&format!("# TYPE {base} histogram\n"));
                    }
                    let (bounds, counts, overflow) = h.bucket_counts();
                    // "name{a=\"b\"}" → bucket series are
                    // `name_bucket{a="b",le="..."}`.
                    let labels_rest = match name.find('{') {
                        Some(i) => format!("{},", &name[i + 1..name.len() - 1]),
                        None => String::new(),
                    };
                    let mut cumulative = 0u64;
                    for (b, c) in bounds.iter().zip(counts) {
                        cumulative += c;
                        if *c > 0 {
                            out.push_str(&format!(
                                "{base}_bucket{{{labels_rest}le=\"{b:e}\"}} {cumulative}\n"
                            ));
                        }
                    }
                    cumulative += overflow;
                    out.push_str(&format!(
                        "{base}_bucket{{{labels_rest}le=\"+Inf\"}} {cumulative}\n"
                    ));
                    let labels_suffix = match name.find('{') {
                        Some(i) => name[i..].to_string(),
                        None => String::new(),
                    };
                    out.push_str(&format!("{base}_sum{labels_suffix} {}\n", h.sum()));
                    out.push_str(&format!("{base}_count{labels_suffix} {}\n", h.count()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        let bounds = log_bucket_bounds();
        assert_eq!(bounds.len(), 33);
        // First and last bounds.
        assert!((bounds[0] - 1e-12).abs() < 1e-24);
        assert!((bounds[32] - 1e4).abs() < 1e-8);
        // A value exactly on a bound lands in that bucket (le semantics).
        assert_eq!(bucket_index(&bounds, bounds[4]), Some(4));
        // Just above a bound lands in the next bucket.
        assert_eq!(bucket_index(&bounds, bounds[4] * (1.0 + 1e-9)), Some(5));
        // Below the first bound lands in bucket 0; above the last, None.
        assert_eq!(bucket_index(&bounds, 0.0), Some(0));
        assert_eq!(bucket_index(&bounds, 1e5), None);
    }

    #[test]
    fn histogram_accumulates() {
        let mut h = Histogram::new();
        h.observe(0.5);
        h.observe(0.5);
        h.observe(2e5); // overflow
        h.observe(f64::NAN); // ignored
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 200001.0).abs() < 1e-9);
        let (_, counts, overflow) = h.bucket_counts();
        assert_eq!(counts.iter().sum::<u64>(), 2);
        assert_eq!(overflow, 1);
    }

    #[test]
    fn registry_roundtrip() {
        let m = MetricsRegistry::new();
        m.counter_add("rbx_steps_total", 3);
        m.counter_add("rbx_steps_total", 2);
        m.gauge_set("rbx_step_dt", 1e-3);
        m.histogram_observe("rbx_solve_iterations", 14.0);
        assert_eq!(m.counter("rbx_steps_total"), 5);
        assert_eq!(m.gauge("rbx_step_dt"), Some(1e-3));
        assert_eq!(m.histogram_count("rbx_solve_iterations"), 1);
    }

    #[test]
    fn prometheus_format_shape() {
        let m = MetricsRegistry::new();
        m.counter_add("rbx_step_verdict_total{verdict=\"healthy\"}", 7);
        m.counter_add("rbx_step_verdict_total{verdict=\"degraded\"}", 1);
        m.gauge_set("rbx_step_dt", 0.001);
        m.histogram_observe("rbx_solve_iterations", 10.0);
        let text = m.render_prometheus();
        // One TYPE line per base name, despite two labelled series.
        assert_eq!(
            text.matches("# TYPE rbx_step_verdict_total counter")
                .count(),
            1
        );
        assert!(text.contains("rbx_step_verdict_total{verdict=\"healthy\"} 7"));
        assert!(text.contains("# TYPE rbx_step_dt gauge"));
        assert!(text.contains("rbx_solve_iterations_sum 10"));
        assert!(text.contains("rbx_solve_iterations_count 1"));
        assert!(text.contains("le=\"+Inf\""));
    }
}
