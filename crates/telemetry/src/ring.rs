//! Flight recorder: a bounded in-memory ring of recently emitted records.
//!
//! Post-mortem observability for the paper's scale of run: when a rank
//! crashes, rolls back, aborts an epoch or is shrunk out of the job, the
//! question is always "what were the last K steps doing?". The ring keeps
//! the answer resident with **zero steady-state allocation**: each slot is
//! a reusable `String` that records are serialized into via
//! [`crate::json::Value::write_into`], so once every slot has grown to its
//! working size, recording touches no allocator at all (pool-discipline
//! clean — same contract as the worker pool's reused partials buffer).
//!
//! The ring holds *serialized* lines rather than `Value` trees: a `Value`
//! tree owns heap nodes per field, so retaining trees would allocate per
//! record forever. A flat `String` per slot amortizes to nothing.

use crate::json::Value;

/// Bounded ring of serialized telemetry records, oldest overwritten first.
pub struct FlightRing {
    /// Fixed-size slot array; each slot's capacity only grows.
    slots: Vec<String>,
    /// Next slot index to write.
    head: usize,
    /// Number of slots holding a valid record (saturates at capacity).
    len: usize,
    /// Records overwritten since construction (total pushed - retained).
    overwritten: u64,
}

impl FlightRing {
    /// A ring retaining the last `capacity` records. All slot strings are
    /// created empty; they grow on first use and are then reused.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: vec![String::new(); capacity],
            head: 0,
            len: 0,
            overwritten: 0,
        }
    }

    /// Record one value, overwriting the oldest retained record when full.
    /// Steady-state this reuses the slot's existing capacity.
    pub fn push(&mut self, record: &Value) {
        let cap = self.slots.len();
        record.write_into(&mut self.slots[self.head]);
        self.head = (self.head + 1) % cap;
        if self.len < cap {
            self.len += 1;
        } else {
            self.overwritten += 1;
        }
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot count (the K in "last K records").
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records evicted by wraparound since construction.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Sum of the slot strings' heap capacities. A steady-state workload
    /// must leave this constant — asserted by the zero-allocation test.
    pub fn slot_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.capacity()).sum()
    }

    /// Iterate retained records oldest-first (causal order for the dump).
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        let cap = self.slots.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).map(move |i| self.slots[(start + i) % cap].as_str())
    }

    /// Drop all retained records, keeping slot capacity for reuse.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        for s in &mut self.slots {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> Value {
        Value::obj([
            ("schema", Value::str(crate::schema::TELEMETRY_SCHEMA)),
            ("kind", Value::str("step")),
            ("step", Value::int(i)),
            ("wall_s", Value::num(0.001 * i as f64)),
        ])
    }

    #[test]
    fn retains_last_k_in_order() {
        let mut ring = FlightRing::new(4);
        for i in 0..10 {
            ring.push(&rec(i));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.overwritten(), 6);
        let steps: Vec<u64> = ring
            .iter()
            .map(|line| {
                Value::parse(line)
                    .unwrap()
                    .get("step")
                    .and_then(Value::as_u64)
                    .unwrap()
            })
            .collect();
        assert_eq!(steps, vec![6, 7, 8, 9]);
    }

    #[test]
    fn partial_fill_iterates_all() {
        let mut ring = FlightRing::new(8);
        for i in 0..3 {
            ring.push(&rec(i));
        }
        assert_eq!(ring.iter().count(), 3);
        assert_eq!(ring.overwritten(), 0);
    }

    #[test]
    fn steady_state_reuses_slot_capacity() {
        let mut ring = FlightRing::new(16);
        // Warm up: every slot sees a record of the working shape.
        for i in 0..32 {
            ring.push(&rec(i));
        }
        let warm = ring.slot_bytes();
        // Steady state: same-shape records must not grow any slot.
        for i in 32..4096 {
            ring.push(&rec(i));
        }
        assert_eq!(
            ring.slot_bytes(),
            warm,
            "flight ring allocated in steady state"
        );
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut ring = FlightRing::new(4);
        for i in 0..8 {
            ring.push(&rec(i));
        }
        let warm = ring.slot_bytes();
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.slot_bytes(), warm);
    }
}
