//! JSONL event sink.
//!
//! One [`crate::json::Value`] record per line, append-only, buffered.
//! Telemetry must never take down a simulation, so after the first I/O
//! failure the sink goes dead and silently drops further records —
//! callers can detect this through the `write` return value or by
//! comparing [`JsonlSink::lines`] against what they emitted.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::json::Value;

pub struct JsonlSink {
    writer: Option<BufWriter<File>>,
    lines: u64,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("alive", &self.writer.is_some())
            .field("lines", &self.lines)
            .finish()
    }
}

impl JsonlSink {
    /// Create (truncate) the file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self {
            writer: Some(BufWriter::new(file)),
            lines: 0,
        })
    }

    /// Append one record as a single line. Returns `false` if the sink is
    /// dead or the write failed (in which case the sink dies).
    pub fn write(&mut self, record: &Value) -> bool {
        let Some(w) = self.writer.as_mut() else {
            return false;
        };
        match writeln!(w, "{record}") {
            Ok(()) => {
                self.lines += 1;
                true
            }
            Err(_) => {
                self.writer = None;
                false
            }
        }
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush buffered lines to disk. A failed flush kills the sink.
    pub fn flush(&mut self) {
        if let Some(w) = self.writer.as_mut() {
            if w.flush().is_err() {
                self.writer = None;
            }
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rbx-telemetry-sink-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn writes_one_line_per_record() {
        let path = tmp_path("lines");
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            for i in 0..3 {
                let rec = Value::obj([("step", Value::int(i))]);
                assert!(sink.write(&rec));
            }
            assert_eq!(sink.lines(), 3);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            Value::parse(lines[2])
                .unwrap()
                .get("step")
                .and_then(Value::as_u64),
            Some(2)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dead_sink_drops_silently() {
        let path = tmp_path("dead");
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.writer = None; // simulate a prior I/O failure
        assert!(!sink.write(&Value::Null));
        assert_eq!(sink.lines(), 0);
        std::fs::remove_file(&path).ok();
    }
}
