//! Versioned record schemas and validators.
//!
//! Every record the telemetry sinks emit carries a `schema` field so
//! consumers (and CI) can check compatibility before reading anything
//! else. Two schemas exist:
//!
//! * `rbx.telemetry.v1` — the JSONL event stream from a run: one record
//!   per time step (`kind: "step"`), per Krylov solve (`"solve"`), per
//!   resilience event (`"recovery"`), plus one end-of-run `"summary"`.
//! * `rbx.bench.v1` — versioned benchmark results from the figure bins
//!   (`fig2_overlap`, `fig4_breakdown`): a column-major table plus
//!   free-form metadata, consumed as-is by the CI artifact step.

use crate::json::Value;

/// Telemetry event-stream schema identifier.
pub const TELEMETRY_SCHEMA: &str = "rbx.telemetry.v1";

/// Benchmark record schema identifier.
pub const BENCH_SCHEMA: &str = "rbx.bench.v1";

/// Flight-recorder post-mortem dump schema identifier. A dump file is one
/// `flight_header` line followed by the retained `rbx.telemetry.v1`
/// records oldest-first.
pub const FLIGHT_SCHEMA: &str = "rbx.flight.v1";

/// Cross-rank merged timeline schema identifier: one `timeline_header`
/// line, one `tstep` line per aligned step with derived metrics, one
/// trailing `tsummary` line.
pub const TIMELINE_SCHEMA: &str = "rbx.timeline.v1";

/// Online health-event schema identifier (one `health` record per
/// detector raise/clear transition).
pub const HEALTH_SCHEMA: &str = "rbx.health.v1";

/// In-situ analysis-plane schema identifier: `sender` records from the
/// solver-side slab tap, `slab` records from the analysis ranks, one
/// `analysis_summary` per analysis rank at end of run.
pub const INSITU_SCHEMA: &str = "rbx.insitu.v1";

fn require<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn require_num(v: &Value, key: &str) -> Result<f64, String> {
    require(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} must be a number"))
}

fn require_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    require(v, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} must be a string"))
}

fn require_int(v: &Value, key: &str) -> Result<u64, String> {
    require(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
}

/// Residual fields may be non-finite on a broken solve; the JSON writer
/// serializes NaN/Inf as `null`, so the schema admits both.
fn require_num_or_null(v: &Value, key: &str) -> Result<(), String> {
    let f = require(v, key)?;
    if f.as_f64().is_none() && !matches!(f, Value::Null) {
        return Err(format!(
            "field {key:?} must be a number or null (non-finite)"
        ));
    }
    Ok(())
}

fn require_num_arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    let arr = require(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} must be an array"))?;
    for (i, item) in arr.iter().enumerate() {
        if item.as_f64().is_none() {
            return Err(format!("field {key:?}[{i}] must be a number"));
        }
    }
    Ok(arr)
}

/// Validate one line of a run's JSONL stream. Solver streams are mostly
/// `rbx.telemetry.v1` records but may interleave `rbx.health.v1` events
/// and `rbx.insitu.v1` analysis-plane records (they share the sink);
/// dispatch on the `schema` field so mixed streams stay valid.
pub fn validate_line(line: &str) -> Result<(), String> {
    let v = Value::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    match require_str(&v, "schema")? {
        HEALTH_SCHEMA => validate_health(&v),
        INSITU_SCHEMA => validate_insitu(&v),
        _ => validate_record(&v),
    }
}

/// Validate one parsed `rbx.telemetry.v1` record.
pub fn validate_record(v: &Value) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != TELEMETRY_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?} (expected {TELEMETRY_SCHEMA:?})"
        ));
    }
    let kind = require_str(v, "kind")?;
    match kind {
        "step" => validate_step(v),
        "solve" => validate_solve(v),
        "recovery" => validate_recovery(v),
        "summary" => validate_summary(v),
        other => Err(format!("unknown record kind {other:?}")),
    }
}

fn validate_step(v: &Value) -> Result<(), String> {
    require_int(v, "step")?;
    require_num(v, "time")?;
    require_num(v, "dt")?;
    let wall = require_num(v, "wall_s")?;
    if wall < 0.0 {
        return Err("wall_s must be non-negative".to_string());
    }
    let phases = require(v, "phases")?;
    let fields = phases
        .as_obj()
        .ok_or_else(|| "field \"phases\" must be an object".to_string())?;
    for name in ["pressure", "velocity", "temperature", "other"] {
        let val = phases
            .get(name)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("phases.{name} must be a number"))?;
        if val < 0.0 {
            return Err(format!("phases.{name} must be non-negative"));
        }
    }
    if fields.len() != 4 {
        return Err("phases must have exactly the four Fig. 4 bins".to_string());
    }
    require_int(v, "p_iters")?;
    let v_iters = require_num_arr(v, "v_iters")?;
    if v_iters.len() != 3 {
        return Err("v_iters must have 3 entries".to_string());
    }
    require_int(v, "t_iters")?;
    require_str(v, "verdict")?;
    // Multirank / observability extensions: optional, but typed when
    // present. `cfl` may be null — a diverged step has no finite CFL and
    // non-finite numbers serialize as null.
    for key in ["rank", "gs_bytes", "comm_s"] {
        if let Some(f) = v.get(key) {
            if f.as_f64().is_none() {
                return Err(format!("field {key:?} must be a number when present"));
            }
        }
    }
    if let Some(f) = v.get("cfl") {
        if f.as_f64().is_none() && !matches!(f, Value::Null) {
            return Err("field \"cfl\" must be a number or null when present".to_string());
        }
    }
    Ok(())
}

fn validate_solve(v: &Value) -> Result<(), String> {
    let solver = require_str(v, "solver")?;
    if !matches!(solver, "pcg" | "fgmres") {
        return Err(format!("unknown solver {solver:?}"));
    }
    require_str(v, "label")?;
    require_int(v, "iterations")?;
    require_num_or_null(v, "initial_residual")?;
    require_num_or_null(v, "final_residual")?;
    require(v, "converged")?
        .as_bool()
        .ok_or_else(|| "field \"converged\" must be a boolean".to_string())?;
    require_str(v, "health")?;
    let hist = require(v, "residual_history")?
        .as_arr()
        .ok_or_else(|| "field \"residual_history\" must be an array".to_string())?;
    for (i, item) in hist.iter().enumerate() {
        if item.as_f64().is_none() && !matches!(item, Value::Null) {
            return Err(format!("residual_history[{i}] must be a number or null"));
        }
    }
    if hist.len() > 16 {
        return Err(format!(
            "residual_history holds at most 16 entries, got {}",
            hist.len()
        ));
    }
    Ok(())
}

fn validate_recovery(v: &Value) -> Result<(), String> {
    let event = require_str(v, "event")?;
    const EVENTS: [&str; 8] = [
        "checkpoint_written",
        "checkpoint_write_failed",
        "degraded_step",
        "divergence",
        "generation_rejected",
        "comm_recovered",
        "shrink",
        "rolled_back",
    ];
    if !EVENTS.contains(&event) {
        return Err(format!("unknown recovery event {event:?}"));
    }
    require_str(v, "detail")?;
    Ok(())
}

fn validate_summary(v: &Value) -> Result<(), String> {
    require_int(v, "steps")?;
    require_num(v, "wall_s")?;
    require(v, "recovery_events")?
        .as_arr()
        .ok_or_else(|| "field \"recovery_events\" must be an array".to_string())?;
    Ok(())
}

/// Validate the header line of a `rbx.flight.v1` post-mortem dump. The
/// remaining lines of a dump file are ordinary `rbx.telemetry.v1` records
/// (validate each with [`validate_line`]).
pub fn validate_flight_header(v: &Value) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != FLIGHT_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?} (expected {FLIGHT_SCHEMA:?})"
        ));
    }
    let kind = require_str(v, "kind")?;
    if kind != "flight_header" {
        return Err(format!(
            "flight dump must open with flight_header, got {kind:?}"
        ));
    }
    let rank = require_int(v, "rank")?;
    let ranks = require_int(v, "ranks")?;
    if ranks == 0 || rank >= ranks {
        return Err(format!("rank {rank} out of range for {ranks} ranks"));
    }
    let reason = require_str(v, "reason")?;
    if reason.is_empty() {
        return Err("reason must be non-empty".to_string());
    }
    require_int(v, "step")?;
    require_int(v, "records")?;
    require_int(v, "overwritten")?;
    Ok(())
}

/// Validate one line of a `rbx.timeline.v1` merged timeline.
pub fn validate_timeline_record(v: &Value) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != TIMELINE_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?} (expected {TIMELINE_SCHEMA:?})"
        ));
    }
    let kind = require_str(v, "kind")?;
    match kind {
        "timeline_header" => {
            let ranks = require_int(v, "ranks")?;
            if ranks == 0 {
                return Err("ranks must be positive".to_string());
            }
            require_int(v, "streams")?;
            Ok(())
        }
        "tstep" => {
            require_int(v, "step")?;
            let ranks_seen = require_int(v, "ranks_seen")?;
            if ranks_seen == 0 {
                return Err("ranks_seen must be positive".to_string());
            }
            let wall_max = require_num(v, "wall_max_s")?;
            let wall_mean = require_num(v, "wall_mean_s")?;
            if wall_max < 0.0 || wall_mean < 0.0 {
                return Err("wall times must be non-negative".to_string());
            }
            let imb = require_num(v, "imbalance")?;
            if imb.is_finite() && imb < 1.0 - 1e-9 {
                return Err(format!("imbalance is max/mean, must be >= 1, got {imb}"));
            }
            let straggler = require_int(v, "straggler")?;
            if straggler >= ranks_seen {
                return Err(format!(
                    "straggler rank {straggler} out of range for {ranks_seen} ranks seen"
                ));
            }
            require_num_or_null(v, "comm_ratio")?;
            require_num_or_null(v, "gs_skew")?;
            require_int(v, "phase_gap_ranks")?;
            let phases = require(v, "phases")?;
            phases
                .as_obj()
                .ok_or_else(|| "field \"phases\" must be an object".to_string())?;
            for name in ["pressure", "velocity", "temperature", "other"] {
                phases
                    .get(name)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("phases.{name} must be a number"))?;
            }
            Ok(())
        }
        "tsummary" => {
            require_int(v, "steps")?;
            require_int(v, "ranks")?;
            require_num_or_null(v, "imbalance_mean")?;
            require_num_or_null(v, "imbalance_max")?;
            require_int(v, "phase_gap_total")?;
            require_int(v, "replayed_records")?;
            Ok(())
        }
        other => Err(format!("unknown timeline record kind {other:?}")),
    }
}

/// Detector names the health schema admits.
pub const HEALTH_DETECTORS: [&str; 8] = [
    "cfl_spike",
    "residual_stall",
    "iteration_drift",
    "imbalance",
    "checkpoint_latency",
    "shrink",
    "insitu_drops",
    "insitu_dead",
];

/// Validate one `rbx.health.v1` event record.
pub fn validate_health(v: &Value) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != HEALTH_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?} (expected {HEALTH_SCHEMA:?})"
        ));
    }
    let kind = require_str(v, "kind")?;
    if kind != "health" {
        return Err(format!(
            "health record kind must be \"health\", got {kind:?}"
        ));
    }
    let detector = require_str(v, "detector")?;
    if !HEALTH_DETECTORS.contains(&detector) {
        return Err(format!("unknown detector {detector:?}"));
    }
    let severity = require_str(v, "severity")?;
    if !matches!(severity, "info" | "warn" | "critical") {
        return Err(format!("unknown severity {severity:?}"));
    }
    let state = require_str(v, "state")?;
    if !matches!(state, "raise" | "clear") {
        return Err(format!("state must be raise|clear, got {state:?}"));
    }
    require_int(v, "step")?;
    require_num_or_null(v, "value")?;
    require_num_or_null(v, "threshold")?;
    require_str(v, "detail")?;
    Ok(())
}

/// Build a `rbx.health.v1` event record.
pub fn health_record(
    detector: &str,
    severity: &str,
    state: &str,
    step: u64,
    value: f64,
    threshold: f64,
    detail: &str,
) -> Value {
    Value::obj([
        ("schema", Value::str(HEALTH_SCHEMA)),
        ("kind", Value::str("health")),
        ("detector", Value::str(detector)),
        ("severity", Value::str(severity)),
        ("state", Value::str(state)),
        ("step", Value::int(step)),
        ("value", Value::num(value)),
        ("threshold", Value::num(threshold)),
        ("detail", Value::str(detail)),
    ])
}

/// Validate one `rbx.insitu.v1` record.
pub fn validate_insitu(v: &Value) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != INSITU_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?} (expected {INSITU_SCHEMA:?})"
        ));
    }
    match require_str(v, "kind")? {
        "sender" => {
            require_int(v, "step")?;
            require_int(v, "rank")?;
            require_int(v, "dest")?;
            let sent = require_int(v, "sent")?;
            require_int(v, "dropped")?;
            let acked = require_int(v, "acked")?;
            if acked > sent {
                return Err(format!("acked {acked} exceeds sent {sent}"));
            }
            require_int(v, "inflight_hw")?;
            require(v, "stalled")?
                .as_bool()
                .ok_or_else(|| "field \"stalled\" must be a boolean".to_string())?;
            Ok(())
        }
        "slab" => {
            require_int(v, "step")?;
            require_int(v, "src")?;
            require_num(v, "time")?;
            require_str(v, "var")?;
            let points = require_int(v, "points")?;
            if points == 0 {
                return Err("points must be positive".to_string());
            }
            for key in ["min", "max", "mean", "l2"] {
                require_num_or_null(v, key)?;
            }
            Ok(())
        }
        "analysis_summary" => {
            require_int(v, "rank")?;
            require_int(v, "received")?;
            require_int(v, "corrupt")?;
            require_int(v, "gaps")?;
            require_int(v, "pod_count")?;
            require_int(v, "pod_rank")?;
            Ok(())
        }
        other => Err(format!("unknown insitu record kind {other:?}")),
    }
}

/// Build the solver-side `sender` record of `rbx.insitu.v1`: slab-channel
/// counters of one solver rank at one sample point.
#[allow(clippy::too_many_arguments)]
pub fn insitu_sender_record(
    step: u64,
    rank: u64,
    dest: u64,
    sent: u64,
    dropped: u64,
    acked: u64,
    inflight_hw: u64,
    stalled: bool,
) -> Value {
    Value::obj([
        ("schema", Value::str(INSITU_SCHEMA)),
        ("kind", Value::str("sender")),
        ("step", Value::int(step)),
        ("rank", Value::int(rank)),
        ("dest", Value::int(dest)),
        ("sent", Value::int(sent)),
        ("dropped", Value::int(dropped)),
        ("acked", Value::int(acked)),
        ("inflight_hw", Value::int(inflight_hw)),
        ("stalled", Value::Bool(stalled)),
    ])
}

/// Build the analysis-side `slab` record of `rbx.insitu.v1`: one decoded
/// slab with its field statistics.
#[allow(clippy::too_many_arguments)]
pub fn insitu_slab_record(
    step: u64,
    src: u64,
    time: f64,
    var: &str,
    points: u64,
    min: f64,
    max: f64,
    mean: f64,
    l2: f64,
) -> Value {
    Value::obj([
        ("schema", Value::str(INSITU_SCHEMA)),
        ("kind", Value::str("slab")),
        ("step", Value::int(step)),
        ("src", Value::int(src)),
        ("time", Value::num(time)),
        ("var", Value::str(var)),
        ("points", Value::int(points)),
        ("min", Value::num(min)),
        ("max", Value::num(max)),
        ("mean", Value::num(mean)),
        ("l2", Value::num(l2)),
    ])
}

/// Build the end-of-run `analysis_summary` record of `rbx.insitu.v1`.
pub fn insitu_summary_record(
    rank: u64,
    received: u64,
    corrupt: u64,
    gaps: u64,
    pod_count: u64,
    pod_rank: u64,
) -> Value {
    Value::obj([
        ("schema", Value::str(INSITU_SCHEMA)),
        ("kind", Value::str("analysis_summary")),
        ("rank", Value::int(rank)),
        ("received", Value::int(received)),
        ("corrupt", Value::int(corrupt)),
        ("gaps", Value::int(gaps)),
        ("pod_count", Value::int(pod_count)),
        ("pod_rank", Value::int(pod_rank)),
    ])
}

/// Validate a `rbx.bench.v1` benchmark record.
pub fn validate_bench(v: &Value) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?} (expected {BENCH_SCHEMA:?})"
        ));
    }
    require_str(v, "name")?;
    let columns = require(v, "columns")?
        .as_arr()
        .ok_or_else(|| "field \"columns\" must be an array".to_string())?;
    for (i, c) in columns.iter().enumerate() {
        if c.as_str().is_none() {
            return Err(format!("columns[{i}] must be a string"));
        }
    }
    let rows = require(v, "rows")?
        .as_arr()
        .ok_or_else(|| "field \"rows\" must be an array".to_string())?;
    for (i, row) in rows.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or_else(|| format!("rows[{i}] must be an array"))?;
        if row.len() != columns.len() {
            return Err(format!(
                "rows[{i}] has {} entries for {} columns",
                row.len(),
                columns.len()
            ));
        }
        for (j, cell) in row.iter().enumerate() {
            if cell.as_f64().is_none() && cell.as_str().is_none() {
                return Err(format!("rows[{i}][{j}] must be a number or string"));
            }
        }
    }
    if v.get("meta").map(|m| m.as_obj().is_none()) == Some(true) {
        return Err("field \"meta\" must be an object when present".to_string());
    }
    Ok(())
}

/// Build the skeleton of a bench record; callers fill `rows` and `meta`.
pub fn bench_record(
    name: &str,
    columns: &[&str],
    rows: Vec<Vec<Value>>,
    meta: Vec<(&'static str, Value)>,
) -> Value {
    Value::obj([
        ("schema", Value::str(BENCH_SCHEMA)),
        ("name", Value::str(name)),
        (
            "columns",
            Value::arr(columns.iter().map(|c| Value::str(*c))),
        ),
        ("rows", Value::arr(rows.into_iter().map(Value::Arr))),
        ("meta", Value::obj(meta)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_record() -> Value {
        Value::obj([
            ("schema", Value::str(TELEMETRY_SCHEMA)),
            ("kind", Value::str("step")),
            ("step", Value::int(12)),
            ("time", Value::num(0.012)),
            ("dt", Value::num(1e-3)),
            ("wall_s", Value::num(0.05)),
            (
                "phases",
                Value::obj([
                    ("pressure", Value::num(0.04)),
                    ("velocity", Value::num(0.005)),
                    ("temperature", Value::num(0.003)),
                    ("other", Value::num(0.002)),
                ]),
            ),
            ("p_iters", Value::int(19)),
            (
                "v_iters",
                Value::arr([Value::int(4), Value::int(4), Value::int(5)]),
            ),
            ("t_iters", Value::int(4)),
            ("verdict", Value::str("healthy")),
        ])
    }

    #[test]
    fn valid_step_roundtrips_through_text() {
        let rec = step_record();
        validate_record(&rec).unwrap();
        validate_line(&rec.to_string()).unwrap();
    }

    #[test]
    fn step_missing_phase_rejected() {
        let mut rec = step_record();
        if let Value::Obj(fields) = &mut rec {
            for (k, v) in fields.iter_mut() {
                if k == "phases" {
                    *v = Value::obj([("pressure", Value::num(1.0))]);
                }
            }
        }
        assert!(validate_record(&rec).is_err());
    }

    #[test]
    fn wrong_schema_rejected() {
        let rec = Value::obj([
            ("schema", Value::str("rbx.telemetry.v999")),
            ("kind", Value::str("step")),
        ]);
        let err = validate_record(&rec).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
    }

    #[test]
    fn solve_history_bound_enforced() {
        let mut hist = Vec::new();
        for i in 0..17 {
            hist.push(Value::num(1.0 / (i + 1) as f64));
        }
        let rec = Value::obj([
            ("schema", Value::str(TELEMETRY_SCHEMA)),
            ("kind", Value::str("solve")),
            ("solver", Value::str("fgmres")),
            ("label", Value::str("pressure")),
            ("iterations", Value::int(17)),
            ("initial_residual", Value::num(1.0)),
            ("final_residual", Value::num(1e-8)),
            ("converged", Value::Bool(true)),
            ("health", Value::str("healthy")),
            ("residual_history", Value::Arr(hist)),
        ]);
        let err = validate_record(&rec).unwrap_err();
        assert!(err.contains("at most 16"), "{err}");
    }

    #[test]
    fn broken_solve_with_null_residuals_is_valid() {
        // A NaN residual round-trips as null through the writer; the record
        // of a broken solve must still validate (it is the interesting one).
        let rec = Value::obj([
            ("schema", Value::str(TELEMETRY_SCHEMA)),
            ("kind", Value::str("solve")),
            ("solver", Value::str("fgmres")),
            ("label", Value::str("pressure")),
            ("iterations", Value::int(0)),
            ("initial_residual", Value::Null),
            ("final_residual", Value::Null),
            ("converged", Value::Bool(false)),
            ("health", Value::str("non_finite")),
            ("residual_history", Value::Arr(vec![Value::Null])),
        ]);
        validate_record(&rec).unwrap();
        validate_line(&rec.to_string()).unwrap();
        // But a string there is still rejected.
        let bad = Value::obj([
            ("schema", Value::str(TELEMETRY_SCHEMA)),
            ("kind", Value::str("solve")),
            ("solver", Value::str("pcg")),
            ("label", Value::str("t")),
            ("iterations", Value::int(1)),
            ("initial_residual", Value::str("oops")),
            ("final_residual", Value::num(1.0)),
            ("converged", Value::Bool(true)),
            ("health", Value::str("healthy")),
            ("residual_history", Value::Arr(vec![])),
        ]);
        assert!(validate_record(&bad).is_err());
    }

    #[test]
    fn recovery_event_names_checked() {
        let ok = Value::obj([
            ("schema", Value::str(TELEMETRY_SCHEMA)),
            ("kind", Value::str("recovery")),
            ("event", Value::str("rolled_back")),
            ("detail", Value::str("rolled back to step 40")),
            ("step", Value::int(44)),
        ]);
        validate_record(&ok).unwrap();
        let bad = Value::obj([
            ("schema", Value::str(TELEMETRY_SCHEMA)),
            ("kind", Value::str("recovery")),
            ("event", Value::str("exploded")),
            ("detail", Value::str("boom")),
        ]);
        assert!(validate_record(&bad).is_err());
    }

    #[test]
    fn step_optional_obs_fields_typed() {
        let mut rec = step_record();
        if let Value::Obj(fields) = &mut rec {
            fields.push(("rank".to_string(), Value::int(2)));
            fields.push(("cfl".to_string(), Value::num(0.31)));
            fields.push(("gs_bytes".to_string(), Value::int(8192)));
            fields.push(("comm_s".to_string(), Value::num(0.004)));
        }
        validate_record(&rec).unwrap();
        validate_line(&rec.to_string()).unwrap();
        if let Value::Obj(fields) = &mut rec {
            for (k, v) in fields.iter_mut() {
                if k == "cfl" {
                    *v = Value::str("fast");
                }
            }
        }
        assert!(validate_record(&rec).is_err());
    }

    fn flight_header() -> Value {
        Value::obj([
            ("schema", Value::str(FLIGHT_SCHEMA)),
            ("kind", Value::str("flight_header")),
            ("rank", Value::int(1)),
            ("ranks", Value::int(4)),
            ("reason", Value::str("shrink")),
            ("step", Value::int(57)),
            ("records", Value::int(64)),
            ("overwritten", Value::int(120)),
        ])
    }

    #[test]
    fn flight_header_roundtrips() {
        let rec = flight_header();
        validate_flight_header(&rec).unwrap();
        let parsed = Value::parse(&rec.to_string()).unwrap();
        validate_flight_header(&parsed).unwrap();
    }

    #[test]
    fn flight_header_rank_range_checked() {
        let mut rec = flight_header();
        if let Value::Obj(fields) = &mut rec {
            for (k, v) in fields.iter_mut() {
                if k == "rank" {
                    *v = Value::int(4);
                }
            }
        }
        let err = validate_flight_header(&rec).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let mut rec = flight_header();
        if let Value::Obj(fields) = &mut rec {
            for (k, v) in fields.iter_mut() {
                if k == "reason" {
                    *v = Value::str("");
                }
            }
        }
        assert!(validate_flight_header(&rec).is_err());
    }

    fn tstep_record() -> Value {
        Value::obj([
            ("schema", Value::str(TIMELINE_SCHEMA)),
            ("kind", Value::str("tstep")),
            ("step", Value::int(9)),
            ("ranks_seen", Value::int(4)),
            ("wall_max_s", Value::num(0.031)),
            ("wall_mean_s", Value::num(0.027)),
            ("imbalance", Value::num(0.031 / 0.027)),
            ("straggler", Value::int(2)),
            ("comm_ratio", Value::num(0.18)),
            ("gs_skew", Value::num(1.4)),
            ("phase_gap_ranks", Value::int(0)),
            (
                "phases",
                Value::obj([
                    ("pressure", Value::num(0.02)),
                    ("velocity", Value::num(0.004)),
                    ("temperature", Value::num(0.002)),
                    ("other", Value::num(0.001)),
                ]),
            ),
        ])
    }

    #[test]
    fn timeline_records_roundtrip() {
        let header = Value::obj([
            ("schema", Value::str(TIMELINE_SCHEMA)),
            ("kind", Value::str("timeline_header")),
            ("ranks", Value::int(4)),
            ("streams", Value::int(4)),
        ]);
        validate_timeline_record(&header).unwrap();
        validate_timeline_record(&Value::parse(&header.to_string()).unwrap()).unwrap();

        let tstep = tstep_record();
        validate_timeline_record(&tstep).unwrap();
        validate_timeline_record(&Value::parse(&tstep.to_string()).unwrap()).unwrap();

        let summary = Value::obj([
            ("schema", Value::str(TIMELINE_SCHEMA)),
            ("kind", Value::str("tsummary")),
            ("steps", Value::int(40)),
            ("ranks", Value::int(4)),
            ("imbalance_mean", Value::num(1.12)),
            ("imbalance_max", Value::num(1.55)),
            ("phase_gap_total", Value::int(1)),
            ("replayed_records", Value::int(3)),
        ]);
        validate_timeline_record(&summary).unwrap();
        validate_timeline_record(&Value::parse(&summary.to_string()).unwrap()).unwrap();
    }

    #[test]
    fn timeline_tstep_invariants_checked() {
        // imbalance below 1 is impossible for max/mean.
        let mut rec = tstep_record();
        if let Value::Obj(fields) = &mut rec {
            for (k, v) in fields.iter_mut() {
                if k == "imbalance" {
                    *v = Value::num(0.5);
                }
            }
        }
        assert!(validate_timeline_record(&rec).is_err());
        // straggler must index a seen rank.
        let mut rec = tstep_record();
        if let Value::Obj(fields) = &mut rec {
            for (k, v) in fields.iter_mut() {
                if k == "straggler" {
                    *v = Value::int(9);
                }
            }
        }
        assert!(validate_timeline_record(&rec).is_err());
    }

    #[test]
    fn health_record_roundtrips_and_rejects_unknown_detector() {
        let rec = health_record(
            "cfl_spike",
            "warn",
            "raise",
            42,
            0.92,
            0.65,
            "cfl 0.92 > 2x median",
        );
        validate_health(&rec).unwrap();
        validate_health(&Value::parse(&rec.to_string()).unwrap()).unwrap();
        let bad = health_record("vibes", "warn", "raise", 1, 0.0, 0.0, "");
        assert!(validate_health(&bad).is_err());
        let bad_sev = health_record("imbalance", "catastrophic", "raise", 1, 2.0, 1.5, "x");
        assert!(validate_health(&bad_sev).is_err());
        let bad_state = health_record("imbalance", "warn", "flap", 1, 2.0, 1.5, "x");
        assert!(validate_health(&bad_state).is_err());
    }

    #[test]
    fn insitu_records_roundtrip_and_reject_bad_shapes() {
        let sender = insitu_sender_record(7, 1, 4, 20, 3, 18, 2, false);
        validate_insitu(&sender).unwrap();
        validate_line(&sender.to_string()).unwrap();

        let slab = insitu_slab_record(7, 1, 0.014, "uz", 4096, -0.9, 1.1, 0.02, 0.4);
        validate_insitu(&slab).unwrap();
        validate_line(&slab.to_string()).unwrap();

        let summary = insitu_summary_record(4, 57, 1, 2, 19, 6);
        validate_insitu(&summary).unwrap();
        validate_line(&summary.to_string()).unwrap();

        // acked can never exceed sent.
        let bad = insitu_sender_record(7, 1, 4, 5, 0, 9, 2, false);
        assert!(validate_insitu(&bad).is_err());
        // Empty slabs are impossible.
        let bad = insitu_slab_record(7, 1, 0.0, "uz", 0, 0.0, 0.0, 0.0, 0.0);
        assert!(validate_insitu(&bad).is_err());
        let bad = Value::obj([
            ("schema", Value::str(INSITU_SCHEMA)),
            ("kind", Value::str("vibes")),
        ]);
        assert!(validate_insitu(&bad).is_err());
    }

    #[test]
    fn mixed_streams_dispatch_by_schema() {
        // A health event and an insitu record in a telemetry stream both
        // validate line-by-line.
        let health = health_record("insitu_drops", "warn", "raise", 9, 12.0, 5.0, "drops");
        validate_line(&health.to_string()).unwrap();
        let new_detectors = ["insitu_drops", "insitu_dead"];
        for d in new_detectors {
            validate_health(&health_record(d, "critical", "raise", 1, 1.0, 0.0, "x")).unwrap();
        }
        assert!(validate_line("{\"schema\":\"rbx.insitu.v1\",\"kind\":\"nope\"}").is_err());
    }

    #[test]
    fn bench_rows_must_match_columns() {
        let good = bench_record(
            "fig2_overlap",
            &["mode", "seconds"],
            vec![vec![Value::str("serial"), Value::num(1.25)]],
            vec![("order", Value::int(7))],
        );
        validate_bench(&good).unwrap();
        let bad = bench_record(
            "fig2_overlap",
            &["mode", "seconds"],
            vec![vec![Value::str("serial")]],
            vec![],
        );
        assert!(validate_bench(&bad).is_err());
    }
}
