//! Versioned record schemas and validators.
//!
//! Every record the telemetry sinks emit carries a `schema` field so
//! consumers (and CI) can check compatibility before reading anything
//! else. Two schemas exist:
//!
//! * `rbx.telemetry.v1` — the JSONL event stream from a run: one record
//!   per time step (`kind: "step"`), per Krylov solve (`"solve"`), per
//!   resilience event (`"recovery"`), plus one end-of-run `"summary"`.
//! * `rbx.bench.v1` — versioned benchmark results from the figure bins
//!   (`fig2_overlap`, `fig4_breakdown`): a column-major table plus
//!   free-form metadata, consumed as-is by the CI artifact step.

use crate::json::Value;

/// Telemetry event-stream schema identifier.
pub const TELEMETRY_SCHEMA: &str = "rbx.telemetry.v1";

/// Benchmark record schema identifier.
pub const BENCH_SCHEMA: &str = "rbx.bench.v1";

fn require<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn require_num(v: &Value, key: &str) -> Result<f64, String> {
    require(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} must be a number"))
}

fn require_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    require(v, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} must be a string"))
}

fn require_int(v: &Value, key: &str) -> Result<u64, String> {
    require(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
}

/// Residual fields may be non-finite on a broken solve; the JSON writer
/// serializes NaN/Inf as `null`, so the schema admits both.
fn require_num_or_null(v: &Value, key: &str) -> Result<(), String> {
    let f = require(v, key)?;
    if f.as_f64().is_none() && !matches!(f, Value::Null) {
        return Err(format!(
            "field {key:?} must be a number or null (non-finite)"
        ));
    }
    Ok(())
}

fn require_num_arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    let arr = require(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} must be an array"))?;
    for (i, item) in arr.iter().enumerate() {
        if item.as_f64().is_none() {
            return Err(format!("field {key:?}[{i}] must be a number"));
        }
    }
    Ok(arr)
}

/// Validate one line of a `rbx.telemetry.v1` JSONL stream.
pub fn validate_line(line: &str) -> Result<(), String> {
    let v = Value::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    validate_record(&v)
}

/// Validate one parsed `rbx.telemetry.v1` record.
pub fn validate_record(v: &Value) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != TELEMETRY_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?} (expected {TELEMETRY_SCHEMA:?})"
        ));
    }
    let kind = require_str(v, "kind")?;
    match kind {
        "step" => validate_step(v),
        "solve" => validate_solve(v),
        "recovery" => validate_recovery(v),
        "summary" => validate_summary(v),
        other => Err(format!("unknown record kind {other:?}")),
    }
}

fn validate_step(v: &Value) -> Result<(), String> {
    require_int(v, "step")?;
    require_num(v, "time")?;
    require_num(v, "dt")?;
    let wall = require_num(v, "wall_s")?;
    if wall < 0.0 {
        return Err("wall_s must be non-negative".to_string());
    }
    let phases = require(v, "phases")?;
    let fields = phases
        .as_obj()
        .ok_or_else(|| "field \"phases\" must be an object".to_string())?;
    for name in ["pressure", "velocity", "temperature", "other"] {
        let val = phases
            .get(name)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("phases.{name} must be a number"))?;
        if val < 0.0 {
            return Err(format!("phases.{name} must be non-negative"));
        }
    }
    if fields.len() != 4 {
        return Err("phases must have exactly the four Fig. 4 bins".to_string());
    }
    require_int(v, "p_iters")?;
    let v_iters = require_num_arr(v, "v_iters")?;
    if v_iters.len() != 3 {
        return Err("v_iters must have 3 entries".to_string());
    }
    require_int(v, "t_iters")?;
    require_str(v, "verdict")?;
    Ok(())
}

fn validate_solve(v: &Value) -> Result<(), String> {
    let solver = require_str(v, "solver")?;
    if !matches!(solver, "pcg" | "fgmres") {
        return Err(format!("unknown solver {solver:?}"));
    }
    require_str(v, "label")?;
    require_int(v, "iterations")?;
    require_num_or_null(v, "initial_residual")?;
    require_num_or_null(v, "final_residual")?;
    require(v, "converged")?
        .as_bool()
        .ok_or_else(|| "field \"converged\" must be a boolean".to_string())?;
    require_str(v, "health")?;
    let hist = require(v, "residual_history")?
        .as_arr()
        .ok_or_else(|| "field \"residual_history\" must be an array".to_string())?;
    for (i, item) in hist.iter().enumerate() {
        if item.as_f64().is_none() && !matches!(item, Value::Null) {
            return Err(format!("residual_history[{i}] must be a number or null"));
        }
    }
    if hist.len() > 16 {
        return Err(format!(
            "residual_history holds at most 16 entries, got {}",
            hist.len()
        ));
    }
    Ok(())
}

fn validate_recovery(v: &Value) -> Result<(), String> {
    let event = require_str(v, "event")?;
    const EVENTS: [&str; 8] = [
        "checkpoint_written",
        "checkpoint_write_failed",
        "degraded_step",
        "divergence",
        "generation_rejected",
        "comm_recovered",
        "shrink",
        "rolled_back",
    ];
    if !EVENTS.contains(&event) {
        return Err(format!("unknown recovery event {event:?}"));
    }
    require_str(v, "detail")?;
    Ok(())
}

fn validate_summary(v: &Value) -> Result<(), String> {
    require_int(v, "steps")?;
    require_num(v, "wall_s")?;
    require(v, "recovery_events")?
        .as_arr()
        .ok_or_else(|| "field \"recovery_events\" must be an array".to_string())?;
    Ok(())
}

/// Validate a `rbx.bench.v1` benchmark record.
pub fn validate_bench(v: &Value) -> Result<(), String> {
    let schema = require_str(v, "schema")?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "unknown schema {schema:?} (expected {BENCH_SCHEMA:?})"
        ));
    }
    require_str(v, "name")?;
    let columns = require(v, "columns")?
        .as_arr()
        .ok_or_else(|| "field \"columns\" must be an array".to_string())?;
    for (i, c) in columns.iter().enumerate() {
        if c.as_str().is_none() {
            return Err(format!("columns[{i}] must be a string"));
        }
    }
    let rows = require(v, "rows")?
        .as_arr()
        .ok_or_else(|| "field \"rows\" must be an array".to_string())?;
    for (i, row) in rows.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or_else(|| format!("rows[{i}] must be an array"))?;
        if row.len() != columns.len() {
            return Err(format!(
                "rows[{i}] has {} entries for {} columns",
                row.len(),
                columns.len()
            ));
        }
        for (j, cell) in row.iter().enumerate() {
            if cell.as_f64().is_none() && cell.as_str().is_none() {
                return Err(format!("rows[{i}][{j}] must be a number or string"));
            }
        }
    }
    if v.get("meta").map(|m| m.as_obj().is_none()) == Some(true) {
        return Err("field \"meta\" must be an object when present".to_string());
    }
    Ok(())
}

/// Build the skeleton of a bench record; callers fill `rows` and `meta`.
pub fn bench_record(
    name: &str,
    columns: &[&str],
    rows: Vec<Vec<Value>>,
    meta: Vec<(&'static str, Value)>,
) -> Value {
    Value::obj([
        ("schema", Value::str(BENCH_SCHEMA)),
        ("name", Value::str(name)),
        (
            "columns",
            Value::arr(columns.iter().map(|c| Value::str(*c))),
        ),
        ("rows", Value::arr(rows.into_iter().map(Value::Arr))),
        ("meta", Value::obj(meta)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_record() -> Value {
        Value::obj([
            ("schema", Value::str(TELEMETRY_SCHEMA)),
            ("kind", Value::str("step")),
            ("step", Value::int(12)),
            ("time", Value::num(0.012)),
            ("dt", Value::num(1e-3)),
            ("wall_s", Value::num(0.05)),
            (
                "phases",
                Value::obj([
                    ("pressure", Value::num(0.04)),
                    ("velocity", Value::num(0.005)),
                    ("temperature", Value::num(0.003)),
                    ("other", Value::num(0.002)),
                ]),
            ),
            ("p_iters", Value::int(19)),
            (
                "v_iters",
                Value::arr([Value::int(4), Value::int(4), Value::int(5)]),
            ),
            ("t_iters", Value::int(4)),
            ("verdict", Value::str("healthy")),
        ])
    }

    #[test]
    fn valid_step_roundtrips_through_text() {
        let rec = step_record();
        validate_record(&rec).unwrap();
        validate_line(&rec.to_string()).unwrap();
    }

    #[test]
    fn step_missing_phase_rejected() {
        let mut rec = step_record();
        if let Value::Obj(fields) = &mut rec {
            for (k, v) in fields.iter_mut() {
                if k == "phases" {
                    *v = Value::obj([("pressure", Value::num(1.0))]);
                }
            }
        }
        assert!(validate_record(&rec).is_err());
    }

    #[test]
    fn wrong_schema_rejected() {
        let rec = Value::obj([
            ("schema", Value::str("rbx.telemetry.v999")),
            ("kind", Value::str("step")),
        ]);
        let err = validate_record(&rec).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
    }

    #[test]
    fn solve_history_bound_enforced() {
        let mut hist = Vec::new();
        for i in 0..17 {
            hist.push(Value::num(1.0 / (i + 1) as f64));
        }
        let rec = Value::obj([
            ("schema", Value::str(TELEMETRY_SCHEMA)),
            ("kind", Value::str("solve")),
            ("solver", Value::str("fgmres")),
            ("label", Value::str("pressure")),
            ("iterations", Value::int(17)),
            ("initial_residual", Value::num(1.0)),
            ("final_residual", Value::num(1e-8)),
            ("converged", Value::Bool(true)),
            ("health", Value::str("healthy")),
            ("residual_history", Value::Arr(hist)),
        ]);
        let err = validate_record(&rec).unwrap_err();
        assert!(err.contains("at most 16"), "{err}");
    }

    #[test]
    fn broken_solve_with_null_residuals_is_valid() {
        // A NaN residual round-trips as null through the writer; the record
        // of a broken solve must still validate (it is the interesting one).
        let rec = Value::obj([
            ("schema", Value::str(TELEMETRY_SCHEMA)),
            ("kind", Value::str("solve")),
            ("solver", Value::str("fgmres")),
            ("label", Value::str("pressure")),
            ("iterations", Value::int(0)),
            ("initial_residual", Value::Null),
            ("final_residual", Value::Null),
            ("converged", Value::Bool(false)),
            ("health", Value::str("non_finite")),
            ("residual_history", Value::Arr(vec![Value::Null])),
        ]);
        validate_record(&rec).unwrap();
        validate_line(&rec.to_string()).unwrap();
        // But a string there is still rejected.
        let bad = Value::obj([
            ("schema", Value::str(TELEMETRY_SCHEMA)),
            ("kind", Value::str("solve")),
            ("solver", Value::str("pcg")),
            ("label", Value::str("t")),
            ("iterations", Value::int(1)),
            ("initial_residual", Value::str("oops")),
            ("final_residual", Value::num(1.0)),
            ("converged", Value::Bool(true)),
            ("health", Value::str("healthy")),
            ("residual_history", Value::Arr(vec![])),
        ]);
        assert!(validate_record(&bad).is_err());
    }

    #[test]
    fn recovery_event_names_checked() {
        let ok = Value::obj([
            ("schema", Value::str(TELEMETRY_SCHEMA)),
            ("kind", Value::str("recovery")),
            ("event", Value::str("rolled_back")),
            ("detail", Value::str("rolled back to step 40")),
            ("step", Value::int(44)),
        ]);
        validate_record(&ok).unwrap();
        let bad = Value::obj([
            ("schema", Value::str(TELEMETRY_SCHEMA)),
            ("kind", Value::str("recovery")),
            ("event", Value::str("exploded")),
            ("detail", Value::str("boom")),
        ]);
        assert!(validate_record(&bad).is_err());
    }

    #[test]
    fn bench_rows_must_match_columns() {
        let good = bench_record(
            "fig2_overlap",
            &["mode", "seconds"],
            vec![vec![Value::str("serial"), Value::num(1.25)]],
            vec![("order", Value::int(7))],
        );
        validate_bench(&good).unwrap();
        let bad = bench_record(
            "fig2_overlap",
            &["mode", "seconds"],
            vec![vec![Value::str("serial")]],
            vec![],
        );
        assert!(validate_bench(&bad).is_err());
    }
}
