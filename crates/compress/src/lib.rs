// Index-style loops mirror the tensor/lattice math throughout; the
// iterator forms clippy suggests would obscure the stencil structure.
#![allow(clippy::needless_range_loop)]

//! # rbx-compress — in-situ lossy compression of spectral-element fields
//!
//! Implements the paper's §5.2 compression scheme (Eq. 2): each element's
//! nodal field is L²-projected onto the orthogonal Legendre basis,
//! coefficients are truncated under a user-specified error bound (optimal
//! greedy truncation of the smallest-energy modes), optionally quantized,
//! and finally passed through a lossless encoder. Because turbulence data
//! has high Shannon entropy in nodal space but strong spectral decay in
//! modal space, the transform+truncate step is what makes the lossless
//! stage effective — the paper reports 97 % reduction at 2.5 % relative
//! error, with 85–90 % as conservative production levels.
//!
//! The decompression path reconstructs the nodal field; the weighted-L²
//! (RMS) error measure of the paper's §6.2 is provided for evaluation.

pub mod async_stage;
pub mod codec;
pub mod pipeline;

pub use async_stage::{AsyncCompressorStats, AsyncFieldCompressor, CompressedField};
pub use codec::{lossless_decode, lossless_encode, Codec};
pub use pipeline::{
    compress_field, decompress_field, weighted_l2_error, Compressed, CompressionConfig,
};
