//! The compression pipeline: modal transform → truncation → quantization →
//! lossless encode, and the exact inverse.

use crate::codec::{
    lossless_decode, lossless_encode, read_varint, try_read_varint, write_varint, Codec,
};
use rbx_basis::tensor::TensorScratch;
use rbx_basis::ModalBasis;
use rbx_mesh::GeomFactors;

/// User-facing knobs of the compressor.
#[derive(Debug, Clone, Copy)]
pub struct CompressionConfig {
    /// Relative L² error budget of the truncation stage (e.g. 0.025 for
    /// the paper's 2.5 % operating point).
    pub error_bound: f64,
    /// Optional uniform quantization of the kept coefficients (bits per
    /// coefficient, 8..=32). `None` keeps full f64 coefficients and makes
    /// the error bound exact.
    pub quant_bits: Option<u8>,
    /// Lossless back end.
    pub codec: Codec,
}

impl Default for CompressionConfig {
    fn default() -> Self {
        Self {
            error_bound: 0.025,
            quant_bits: Some(16),
            codec: Codec::Range,
        }
    }
}

/// A compressed field with enough metadata to reconstruct it.
#[derive(Debug, Clone)]
pub struct Compressed {
    /// Encoded payload.
    pub data: Vec<u8>,
    /// Nodes per direction of the source field.
    pub n: usize,
    /// Elements in the source field.
    pub nelv: usize,
    /// Codec used for the payload.
    pub codec: Codec,
    /// Fraction of modal coefficients kept.
    pub kept_fraction: f64,
}

impl Compressed {
    /// Size of the original field in bytes (`nelv · n³ · 8`).
    pub fn original_bytes(&self) -> usize {
        self.nelv * self.n * self.n * self.n * 8
    }

    /// Serialize into a self-describing byte blob (the slab payload the
    /// in-situ analysis plane ships between ranks). Layout:
    /// `[n varint][nelv varint][codec u8][kept_fraction f64][data ...]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() + 32);
        write_varint(&mut out, self.n as u64);
        write_varint(&mut out, self.nelv as u64);
        out.push(self.codec.id());
        out.extend_from_slice(&self.kept_fraction.to_le_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Deserialize a blob produced by [`Compressed::to_bytes`]. Returns
    /// `None` on anything malformed — the analysis plane counts and
    /// skips bad slabs instead of unwinding.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let (n, used) = try_read_varint(bytes)?;
        let mut pos = used;
        if pos >= bytes.len() {
            return None;
        }
        let (nelv, used) = try_read_varint(&bytes[pos..])?;
        pos += used;
        if pos + 9 > bytes.len() {
            return None;
        }
        let codec = Codec::from_id(bytes[pos])?;
        pos += 1;
        let mut f = [0u8; 8];
        f.copy_from_slice(&bytes[pos..pos + 8]);
        let kept_fraction = f64::from_le_bytes(f);
        pos += 8;
        if n == 0 || nelv == 0 || !kept_fraction.is_finite() {
            return None;
        }
        Some(Self {
            data: bytes[pos..].to_vec(),
            n: n as usize,
            nelv: nelv as usize,
            codec,
            kept_fraction,
        })
    }

    /// Compression ratio `compressed/original` (smaller is better).
    pub fn ratio(&self) -> f64 {
        self.data.len() as f64 / self.original_bytes() as f64
    }

    /// Data reduction percentage (the paper's "97 % of data reduction").
    pub fn reduction_percent(&self) -> f64 {
        100.0 * (1.0 - self.ratio())
    }
}

/// Compress one scalar field defined on `geom`.
///
/// ```
/// use rbx_compress::{compress_field, decompress_field, weighted_l2_error, CompressionConfig};
/// use rbx_basis::ModalBasis;
/// use rbx_mesh::{generators::box_mesh, GeomFactors};
///
/// let mesh = box_mesh(2, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
/// let geom = GeomFactors::new(&mesh, 5);
/// let basis = ModalBasis::new(6);
/// let field: Vec<f64> = geom.coords[0].iter().map(|&x| (3.0 * x).sin()).collect();
///
/// let cfg = CompressionConfig::default(); // 2.5 % bound, 16-bit, range coder
/// let compressed = compress_field(&field, &geom, &basis, &cfg);
/// let restored = decompress_field(&compressed, &basis);
/// let err = weighted_l2_error(&field, &restored, &geom.mass);
/// assert!(compressed.reduction_percent() > 80.0);
/// assert!(err < 0.03);
/// ```
pub fn compress_field(
    field: &[f64],
    geom: &GeomFactors,
    basis: &ModalBasis,
    cfg: &CompressionConfig,
) -> Compressed {
    let n = geom.nx1;
    let nn = n * n * n;
    let nelv = geom.nelv;
    assert_eq!(field.len(), nelv * nn, "field length mismatch");
    assert_eq!(basis.n(), n, "basis size mismatch");
    assert!(cfg.error_bound >= 0.0);
    if let Some(bits) = cfg.quant_bits {
        assert!((8..=32).contains(&bits), "quant_bits must be in 8..=32");
    }

    // 1. Modal transform and per-coefficient energy contributions.
    let mut modal = vec![0.0; nelv * nn];
    let mut scratch = TensorScratch::new();
    // Reference-element mode norms γ̃_p·γ̃_q·γ̃_r under the *discrete* GLL
    // rule, so the energy budget matches the weighted-L2 norm the error is
    // measured in (the continuous norms under-count the highest mode by
    // ~2× and would let the truncation overshoot the bound).
    let mut gamma = vec![0.0; nn];
    for r in 0..n {
        for q in 0..n {
            for p in 0..n {
                gamma[p + n * (q + n * r)] =
                    basis.discrete_norms[p] * basis.discrete_norms[q] * basis.discrete_norms[r];
            }
        }
    }
    let mut contributions: Vec<(f64, u32)> = Vec::with_capacity(nelv * nn);
    let mut total_energy = 0.0;
    for e in 0..nelv {
        basis.to_modal(
            &field[e * nn..(e + 1) * nn],
            &mut modal[e * nn..(e + 1) * nn],
            &mut scratch,
        );
        // Mean Jacobian of the element scales reference L² to physical L².
        let scale: f64 = geom.jac[e * nn..(e + 1) * nn].iter().sum::<f64>() / nn as f64;
        for idx in 0..nn {
            let c = modal[e * nn + idx];
            let energy = c * c * gamma[idx] * scale;
            total_energy += energy;
            contributions.push((energy, (e * nn + idx) as u32));
        }
    }

    // 2. Optimal greedy truncation: drop the smallest contributions until
    //    the error budget ε²·‖u‖² is exhausted.
    let budget = cfg.error_bound * cfg.error_bound * total_energy;
    // audit:allow(no-panic): energies are sums of squares of finite modal
    // coefficients; a NaN here means the input field itself was non-finite,
    // which the solver's own guards catch long before compression.
    contributions.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("non-finite energy"));
    let mut dropped = 0.0;
    let mut kept = vec![true; nelv * nn];
    let mut n_dropped = 0usize;
    for &(energy, idx) in &contributions {
        if dropped + energy > budget {
            break;
        }
        dropped += energy;
        kept[idx as usize] = false;
        n_dropped += 1;
    }
    let kept_count = nelv * nn - n_dropped;

    // 3. Serialize: header, per-element bitmap + coefficients.
    let mut raw = Vec::with_capacity(kept_count * 8 + nelv * nn / 8 + 64);
    write_varint(&mut raw, n as u64);
    write_varint(&mut raw, nelv as u64);
    raw.push(cfg.quant_bits.unwrap_or(0));
    for e in 0..nelv {
        // Bitmap.
        let mut byte = 0u8;
        let mut nbits = 0;
        let mut bitmap = Vec::with_capacity(nn / 8 + 1);
        for idx in 0..nn {
            if kept[e * nn + idx] {
                byte |= 1 << nbits;
            }
            nbits += 1;
            if nbits == 8 {
                bitmap.push(byte);
                byte = 0;
                nbits = 0;
            }
        }
        if nbits > 0 {
            bitmap.push(byte);
        }
        raw.extend_from_slice(&bitmap);
        // Coefficients.
        match cfg.quant_bits {
            None => {
                for idx in 0..nn {
                    if kept[e * nn + idx] {
                        raw.extend_from_slice(&modal[e * nn + idx].to_le_bytes());
                    }
                }
            }
            Some(bits) => {
                // Per-element scale, then signed fixed-point values packed
                // into ceil(bits/8) little-endian bytes each.
                let maxabs = (0..nn)
                    .filter(|&i| kept[e * nn + i])
                    .map(|i| modal[e * nn + i].abs())
                    .fold(0.0f64, f64::max);
                raw.extend_from_slice(&maxabs.to_le_bytes());
                let qmax = ((1u64 << (bits - 1)) - 1) as f64;
                let nbytes = bits.div_ceil(8) as usize;
                for idx in 0..nn {
                    if kept[e * nn + idx] {
                        let v = if maxabs > 0.0 {
                            (modal[e * nn + idx] / maxabs * qmax).round() as i64
                        } else {
                            0
                        };
                        let u = (v as u64) & ((1u64 << bits) - 1);
                        raw.extend_from_slice(&u.to_le_bytes()[..nbytes]);
                    }
                }
            }
        }
    }

    let data = lossless_encode(cfg.codec, &raw);
    Compressed {
        data,
        n,
        nelv,
        codec: cfg.codec,
        kept_fraction: kept_count as f64 / (nelv * nn) as f64,
    }
}

/// Reconstruct the nodal field from a [`Compressed`] payload.
pub fn decompress_field(compressed: &Compressed, basis: &ModalBasis) -> Vec<f64> {
    let raw = lossless_decode(compressed.codec, &compressed.data);
    let mut pos = 0;
    let (n64, used) = read_varint(&raw[pos..]);
    pos += used;
    let (nelv64, used) = read_varint(&raw[pos..]);
    pos += used;
    let n = n64 as usize;
    let nelv = nelv64 as usize;
    assert_eq!(n, compressed.n);
    assert_eq!(nelv, compressed.nelv);
    assert_eq!(basis.n(), n);
    let quant_bits = raw[pos];
    pos += 1;
    let nn = n * n * n;
    let bitmap_bytes = nn.div_ceil(8);

    let mut modal = vec![0.0; nelv * nn];
    for e in 0..nelv {
        let bitmap = &raw[pos..pos + bitmap_bytes];
        pos += bitmap_bytes;
        let is_kept = |idx: usize| -> bool { bitmap[idx / 8] & (1 << (idx % 8)) != 0 };
        if quant_bits == 0 {
            for idx in 0..nn {
                if is_kept(idx) {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(&raw[pos..pos + 8]);
                    pos += 8;
                    modal[e * nn + idx] = f64::from_le_bytes(b);
                }
            }
        } else {
            let mut b = [0u8; 8];
            b.copy_from_slice(&raw[pos..pos + 8]);
            pos += 8;
            let maxabs = f64::from_le_bytes(b);
            let bits = quant_bits as u32;
            let qmax = ((1u64 << (bits - 1)) - 1) as f64;
            let nbytes = (quant_bits as usize).div_ceil(8);
            for idx in 0..nn {
                if is_kept(idx) {
                    let mut u = 0u64;
                    for (byte_i, &byte) in raw[pos..pos + nbytes].iter().enumerate() {
                        u |= (byte as u64) << (8 * byte_i);
                    }
                    pos += nbytes;
                    // Sign-extend.
                    let shift = 64 - bits;
                    let v = ((u << shift) as i64) >> shift;
                    modal[e * nn + idx] = v as f64 / qmax * maxabs;
                }
            }
        }
    }

    let mut field = vec![0.0; nelv * nn];
    let mut scratch = TensorScratch::new();
    for e in 0..nelv {
        basis.to_nodal(
            &modal[e * nn..(e + 1) * nn],
            &mut field[e * nn..(e + 1) * nn],
            &mut scratch,
        );
    }
    field
}

/// Relative weighted-L² (RMS) reconstruction error (paper §6.2): the norm
/// accounts "for the nonuniform nature of the mesh" through the diagonal
/// mass.
pub fn weighted_l2_error(original: &[f64], reconstructed: &[f64], mass: &[f64]) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    assert_eq!(original.len(), mass.len());
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..original.len() {
        let d = original[i] - reconstructed[i];
        num += mass[i] * d * d;
        den += mass[i] * original[i] * original[i];
    }
    (num / den.max(1e-300)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbx_mesh::generators::box_mesh;

    fn setup(p: usize, nx: usize) -> (GeomFactors, ModalBasis) {
        let mesh = box_mesh(nx, nx, nx, [0., 1.], [0., 1.], [0., 1.], false, false);
        let geom = GeomFactors::new(&mesh, p);
        let basis = ModalBasis::new(p + 1);
        (geom, basis)
    }

    fn smooth_field(geom: &GeomFactors) -> Vec<f64> {
        (0..geom.total_nodes())
            .map(|i| {
                let (x, y, z) = (geom.coords[0][i], geom.coords[1][i], geom.coords[2][i]);
                (3.0 * x).sin() * (2.0 * y).cos() + 0.5 * (4.0 * z).sin()
            })
            .collect()
    }

    #[test]
    fn zero_error_bound_roundtrips_exactly() {
        let (geom, basis) = setup(5, 2);
        let field = smooth_field(&geom);
        let cfg = CompressionConfig {
            error_bound: 0.0,
            quant_bits: None,
            codec: Codec::Range,
        };
        let c = compress_field(&field, &geom, &basis, &cfg);
        // Only exactly-zero-energy coefficients may be dropped at ε = 0.
        assert!(c.kept_fraction > 0.5);
        let back = decompress_field(&c, &basis);
        for (a, b) in field.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn error_bound_is_respected_without_quantization() {
        let (geom, basis) = setup(6, 2);
        let field = smooth_field(&geom);
        for eps in [1e-4, 1e-3, 1e-2, 5e-2] {
            let cfg = CompressionConfig {
                error_bound: eps,
                quant_bits: None,
                codec: Codec::Range,
            };
            let c = compress_field(&field, &geom, &basis, &cfg);
            let back = decompress_field(&c, &basis);
            let err = weighted_l2_error(&field, &back, &geom.mass);
            assert!(err <= eps * 1.2 + 1e-12, "ε = {eps}: measured {err}");
        }
    }

    #[test]
    fn tighter_bound_keeps_more_coefficients() {
        let (geom, basis) = setup(6, 2);
        let field = smooth_field(&geom);
        let mut prev_kept = 0.0;
        for eps in [0.1, 0.01, 0.001] {
            let cfg = CompressionConfig {
                error_bound: eps,
                quant_bits: None,
                codec: Codec::Raw,
            };
            let c = compress_field(&field, &geom, &basis, &cfg);
            assert!(
                c.kept_fraction >= prev_kept,
                "ε = {eps}: kept {} < previous {}",
                c.kept_fraction,
                prev_kept
            );
            prev_kept = c.kept_fraction;
        }
    }

    #[test]
    fn smooth_fields_compress_strongly() {
        // A smooth field at moderate error bound should reach the paper's
        // regime of > 90 % reduction.
        let (geom, basis) = setup(7, 2);
        let field = smooth_field(&geom);
        let cfg = CompressionConfig::default(); // 2.5 %, 16-bit, range coder
        let c = compress_field(&field, &geom, &basis, &cfg);
        let back = decompress_field(&c, &basis);
        let err = weighted_l2_error(&field, &back, &geom.mass);
        assert!(
            c.reduction_percent() > 90.0,
            "reduction {:.1} %",
            c.reduction_percent()
        );
        assert!(err < 0.05, "error {err}");
    }

    #[test]
    fn quantization_roundtrip_with_various_bit_widths() {
        let (geom, basis) = setup(4, 2);
        let field = smooth_field(&geom);
        for bits in [8u8, 12, 16, 24, 32] {
            let cfg = CompressionConfig {
                error_bound: 1e-3,
                quant_bits: Some(bits),
                codec: Codec::Rle,
            };
            let c = compress_field(&field, &geom, &basis, &cfg);
            let back = decompress_field(&c, &basis);
            let err = weighted_l2_error(&field, &back, &geom.mass);
            // Quantization adds error that shrinks with bit width.
            // Truncation gives ~ε (up to discrete-norm slack); quantization
            // adds a contribution that decays with bit width.
            let allowance = 1.5e-3 + 16.0 * 2f64.powi(-(bits as i32 - 1));
            assert!(err < allowance, "{bits}-bit: error {err} > {allowance}");
        }
    }

    #[test]
    fn constant_field_compresses_to_almost_nothing() {
        let (geom, basis) = setup(6, 2);
        let field = vec![2.5; geom.total_nodes()];
        let cfg = CompressionConfig {
            error_bound: 1e-6,
            quant_bits: None,
            codec: Codec::Range,
        };
        let c = compress_field(&field, &geom, &basis, &cfg);
        assert!(
            c.reduction_percent() > 99.0,
            "constant field reduced only {:.1} %",
            c.reduction_percent()
        );
        let back = decompress_field(&c, &basis);
        let err = weighted_l2_error(&field, &back, &geom.mass);
        assert!(err < 1e-9);
    }

    #[test]
    fn compressed_byte_blob_round_trips() {
        let (geom, basis) = setup(4, 2);
        let field = smooth_field(&geom);
        let c = compress_field(&field, &geom, &basis, &CompressionConfig::default());
        let blob = c.to_bytes();
        let back = Compressed::from_bytes(&blob).expect("valid blob");
        assert_eq!(back.n, c.n);
        assert_eq!(back.nelv, c.nelv);
        assert_eq!(back.codec, c.codec);
        assert_eq!(back.data, c.data);
        assert!((back.kept_fraction - c.kept_fraction).abs() < 1e-15);
        let a = decompress_field(&c, &basis);
        let b = decompress_field(&back, &basis);
        assert_eq!(a, b);
        // Malformed blobs are rejected, not panicked on.
        assert!(Compressed::from_bytes(&[]).is_none());
        assert!(Compressed::from_bytes(&[6]).is_none());
        assert!(Compressed::from_bytes(&blob[..8]).is_none());
        let mut bad_codec = blob.clone();
        bad_codec[2] = 0xEE;
        assert!(Compressed::from_bytes(&bad_codec).is_none());
    }

    #[test]
    fn ratio_metadata_consistent() {
        let (geom, basis) = setup(4, 1);
        let field = smooth_field(&geom);
        let c = compress_field(&field, &geom, &basis, &CompressionConfig::default());
        assert_eq!(c.original_bytes(), geom.total_nodes() * 8);
        assert!((c.ratio() - c.data.len() as f64 / c.original_bytes() as f64).abs() < 1e-15);
        assert!(c.reduction_percent() <= 100.0);
    }
}
