//! Asynchronous compression stage: encoding off the solver's critical
//! path.
//!
//! The solver thread's only obligations are (a) a double-buffered
//! snapshot copy of the field and (b) a non-blocking queue handoff; the
//! modal transform, truncation, quantization and entropy coding all run
//! on a dedicated encoder thread. "Double-buffered" is literal: at most
//! one snapshot waits in the queue while one is being encoded, so the
//! stage holds at most two field copies and [`AsyncFieldCompressor::
//! try_submit`] can decide instantly. When both slots are occupied the
//! snapshot is *dropped and counted* (`rbx_insitu_compress_busy_total`
//! at the call site) — the same drop-with-counter degradation ladder as
//! the slab channel (DESIGN.md §16): the solver never waits for the
//! encoder.

use crate::pipeline::{compress_field, Compressed, CompressionConfig};
use rbx_basis::ModalBasis;
use rbx_mesh::GeomFactors;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError, TrySendError};
use std::thread::JoinHandle;

struct Job {
    step: u64,
    time: f64,
    var: String,
    field: Vec<f64>,
}

/// One finished encoding: the compressed field plus its provenance.
#[derive(Debug, Clone)]
pub struct CompressedField {
    /// Solver step the snapshot was taken at.
    pub step: u64,
    /// Simulation time of the snapshot.
    pub time: f64,
    /// Variable name ("uz", "temperature", …).
    pub var: String,
    /// The compressed payload.
    pub compressed: Compressed,
}

/// Counters of one async compressor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncCompressorStats {
    /// Snapshots accepted into the stage.
    pub submitted: u64,
    /// Snapshots dropped because both buffer slots were busy.
    pub busy_dropped: u64,
}

/// Background-thread field compressor with a two-slot (double-buffered)
/// queue and a drop-don't-block submit path.
pub struct AsyncFieldCompressor {
    tx: Option<SyncSender<Job>>,
    rx: Receiver<CompressedField>,
    handle: Option<JoinHandle<()>>,
    stats: AsyncCompressorStats,
}

impl AsyncFieldCompressor {
    /// Spawn the encoder thread. `geom` is cloned into the thread (the
    /// encoder needs the Jacobians and sizes); `basis_n` must equal the
    /// field's nodes-per-direction (`order + 1`).
    pub fn new(geom: &GeomFactors, basis_n: usize, cfg: CompressionConfig) -> Self {
        assert_eq!(basis_n, geom.nx1, "basis size must match the geometry");
        // One slot in the channel + one job inside the encoder = the two
        // snapshot buffers of the double-buffering contract.
        let (tx, job_rx) = sync_channel::<Job>(1);
        let (out_tx, rx) = sync_channel::<CompressedField>(64);
        let geom = geom.clone();
        let handle = std::thread::Builder::new()
            .name("rbx-compress-async".into())
            .spawn(move || {
                let basis = ModalBasis::new(basis_n);
                for job in job_rx.iter() {
                    let compressed = compress_field(&job.field, &geom, &basis, &cfg);
                    let done = CompressedField {
                        step: job.step,
                        time: job.time,
                        var: job.var,
                        compressed,
                    };
                    // A gone consumer just means results are discarded;
                    // keep draining jobs so the producer side stays cheap.
                    if out_tx.send(done).is_err() {
                        break;
                    }
                }
            })
            // audit:allow(no-panic): thread spawn fails only on resource exhaustion at stage construction — before any data is at risk
            .expect("spawn async compressor");
        Self {
            tx: Some(tx),
            rx,
            handle: Some(handle),
            stats: AsyncCompressorStats::default(),
        }
    }

    /// Offer one snapshot. Copies the field (the snapshot) and returns
    /// `true` if a buffer slot was free; returns `false` — dropping the
    /// snapshot — when the stage is busy or the encoder thread has died.
    /// Never blocks.
    pub fn try_submit(&mut self, step: u64, time: f64, var: &str, field: &[f64]) -> bool {
        let Some(tx) = self.tx.as_ref() else {
            self.stats.busy_dropped += 1;
            return false;
        };
        let job = Job {
            step,
            time,
            var: var.to_string(),
            field: field.to_vec(),
        };
        match tx.try_send(job) {
            Ok(()) => {
                self.stats.submitted += 1;
                true
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.stats.busy_dropped += 1;
                false
            }
        }
    }

    /// Collect one finished encoding, if any. Never blocks.
    pub fn poll(&mut self) -> Option<CompressedField> {
        match self.rx.try_recv() {
            Ok(done) => Some(done),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Stage counters.
    pub fn stats(&self) -> AsyncCompressorStats {
        self.stats
    }

    /// Close the stage: wait for in-flight encodings and return them
    /// (with any still-unpolled earlier results) plus the counters.
    pub fn finish(mut self) -> (Vec<CompressedField>, AsyncCompressorStats) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            // A panicked encoder loses pending results but must not
            // unwind the solver thread; whatever reached the output
            // queue is still returned.
            let _ = handle.join();
        }
        let mut out = Vec::new();
        while let Ok(done) = self.rx.try_recv() {
            out.push(done);
        }
        (out, self.stats)
    }
}

impl Drop for AsyncFieldCompressor {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{decompress_field, weighted_l2_error};
    use rbx_mesh::generators::box_mesh;
    use std::time::{Duration, Instant};

    fn setup(p: usize) -> (GeomFactors, ModalBasis) {
        let mesh = box_mesh(2, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let geom = GeomFactors::new(&mesh, p);
        let basis = ModalBasis::new(p + 1);
        (geom, basis)
    }

    fn smooth_field(geom: &GeomFactors, phase: f64) -> Vec<f64> {
        (0..geom.total_nodes())
            .map(|i| {
                let (x, y, z) = (geom.coords[0][i], geom.coords[1][i], geom.coords[2][i]);
                (3.0 * x + phase).sin() * (2.0 * y).cos() + 0.5 * (4.0 * z).sin()
            })
            .collect()
    }

    #[test]
    fn async_results_match_synchronous_compression() {
        let (geom, basis) = setup(5);
        let cfg = CompressionConfig::default();
        let mut stage = AsyncFieldCompressor::new(&geom, basis.n(), cfg);
        let mut fields = Vec::new();
        let mut submitted = Vec::new();
        for i in 0..6u64 {
            let f = smooth_field(&geom, i as f64 * 0.3);
            // Retry-with-backoff here is test-only pacing; the solver
            // path drops instead.
            let deadline = Instant::now() + Duration::from_secs(20);
            while !stage.try_submit(i, i as f64 * 0.01, "uz", &f) {
                assert!(Instant::now() < deadline, "encoder wedged");
                std::thread::sleep(Duration::from_millis(1));
            }
            submitted.push(i);
            fields.push(f);
        }
        let (mut done, stats) = stage.finish();
        assert_eq!(stats.submitted, 6);
        done.sort_by_key(|d| d.step);
        assert_eq!(done.len(), 6);
        for d in &done {
            let sync = compress_field(&fields[d.step as usize], &geom, &basis, &cfg);
            assert_eq!(d.compressed.data, sync.data, "step {}", d.step);
            assert_eq!(d.var, "uz");
            let back = decompress_field(&d.compressed, &basis);
            let err = weighted_l2_error(&fields[d.step as usize], &back, &geom.mass);
            assert!(err < 0.05, "step {}: error {err}", d.step);
        }
    }

    #[test]
    fn busy_stage_drops_with_counter_instead_of_blocking() {
        let (geom, _) = setup(6);
        let mut stage = AsyncFieldCompressor::new(&geom, 7, CompressionConfig::default());
        let f = smooth_field(&geom, 0.0);
        let t0 = Instant::now();
        let mut accepted = 0;
        for i in 0..50u64 {
            if stage.try_submit(i, 0.0, "uz", &f) {
                accepted += 1;
            }
        }
        let elapsed = t0.elapsed();
        let (_, stats) = stage.finish();
        assert_eq!(stats.submitted + stats.busy_dropped, 50);
        assert_eq!(stats.submitted, accepted);
        assert!(
            stats.busy_dropped > 0,
            "50 immediate submits must overrun two buffer slots"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "submit path blocked: {elapsed:?}"
        );
    }

    #[test]
    fn poll_streams_results_while_running() {
        let (geom, _) = setup(4);
        let mut stage = AsyncFieldCompressor::new(&geom, 5, CompressionConfig::default());
        let f = smooth_field(&geom, 0.5);
        assert!(stage.try_submit(1, 0.1, "t", &f));
        let deadline = Instant::now() + Duration::from_secs(20);
        let done = loop {
            if let Some(d) = stage.poll() {
                break d;
            }
            assert!(Instant::now() < deadline, "no result from encoder");
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(done.step, 1);
        assert_eq!(done.var, "t");
        let (rest, _) = stage.finish();
        assert!(rest.is_empty());
    }
}
