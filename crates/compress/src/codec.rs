//! Lossless byte codecs for the final encoding stage.
//!
//! Two in-repo codecs (no external compression libraries in the offline
//! dependency set):
//!
//! * [`Codec::Rle`] — zero-run-length encoding with varint run lengths;
//!   effective on the sparse-bitmap + zero-padded streams the truncation
//!   stage produces.
//! * [`Codec::Range`] — an adaptive order-0 range coder (arithmetic
//!   coding with per-byte adaptive frequencies), the stronger general
//!   entropy stage.
//! * [`Codec::Raw`] — passthrough, for ablation.

/// Lossless codec selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// No entropy coding.
    Raw,
    /// Zero-run-length + varint.
    Rle,
    /// Adaptive order-0 range coder.
    #[default]
    Range,
}

impl Codec {
    /// Stable on-disk id.
    pub fn id(self) -> u8 {
        match self {
            Codec::Raw => 0,
            Codec::Rle => 1,
            Codec::Range => 2,
        }
    }

    /// Reverse of [`Codec::id`].
    pub fn from_id(id: u8) -> Option<Codec> {
        match id {
            0 => Some(Codec::Raw),
            1 => Some(Codec::Rle),
            2 => Some(Codec::Range),
            _ => None,
        }
    }
}

/// Encode `data` with the selected codec.
pub fn lossless_encode(codec: Codec, data: &[u8]) -> Vec<u8> {
    match codec {
        Codec::Raw => data.to_vec(),
        Codec::Rle => rle_encode(data),
        Codec::Range => range_encode(data),
    }
}

/// Decode a buffer produced by [`lossless_encode`] with the same codec.
pub fn lossless_decode(codec: Codec, data: &[u8]) -> Vec<u8> {
    match codec {
        Codec::Raw => data.to_vec(),
        Codec::Rle => rle_decode(data),
        Codec::Range => range_decode(data),
    }
}

// ---------------------------------------------------------------------------
// varint
// ---------------------------------------------------------------------------

/// LEB128-style varint append.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Non-panicking varint read for untrusted input (slab payloads off the
/// wire); `None` on truncation or a continuation run past 64 bits.
pub fn try_read_varint(data: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0;
    for (i, &b) in data.iter().enumerate() {
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
    None
}

/// Varint read; returns `(value, bytes_consumed)`.
pub fn read_varint(data: &[u8]) -> (u64, usize) {
    let mut v = 0u64;
    let mut shift = 0;
    for (i, &b) in data.iter().enumerate() {
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return (v, i + 1);
        }
        shift += 7;
        assert!(shift < 64, "varint too long");
    }
    // audit:allow(no-panic): decode of CRC-verified payloads only — the slab
    // channel discards corrupt frames before decode, so truncation here is an
    // encoder implementation bug, not remote input.
    panic!("truncated varint");
}

// ---------------------------------------------------------------------------
// zero-RLE
// ---------------------------------------------------------------------------

/// Format: sequence of tokens. Token `0x00` + varint n = run of n zero
/// bytes; token `0x01` + varint n + n literal bytes.
fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 16);
    let mut i = 0;
    while i < data.len() {
        if data[i] == 0 {
            let start = i;
            while i < data.len() && data[i] == 0 {
                i += 1;
            }
            out.push(0x00);
            write_varint(&mut out, (i - start) as u64);
        } else {
            let start = i;
            // Literal run ends at the next run of ≥ 4 zeros (short zero
            // runs are cheaper inline than as tokens).
            let mut zeros = 0;
            while i < data.len() {
                if data[i] == 0 {
                    zeros += 1;
                    if zeros >= 4 {
                        i -= 3;
                        break;
                    }
                } else {
                    zeros = 0;
                }
                i += 1;
            }
            out.push(0x01);
            write_varint(&mut out, (i - start) as u64);
            out.extend_from_slice(&data[start..i]);
        }
    }
    out
}

fn rle_decode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let token = data[i];
        i += 1;
        let (n, used) = read_varint(&data[i..]);
        i += used;
        match token {
            0x00 => out.extend(std::iter::repeat_n(0u8, n as usize)),
            0x01 => {
                out.extend_from_slice(&data[i..i + n as usize]);
                i += n as usize;
            }
            // audit:allow(no-panic): same contract as read_varint — RLE tokens
            // come from our own encoder behind a CRC; an unknown token is an
            // implementation bug.
            other => panic!("bad RLE token {other}"),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// adaptive order-0 range coder
// ---------------------------------------------------------------------------

const TOP: u64 = 1 << 48;
const BOT: u64 = 1 << 40;
const MAX_TOTAL: u32 = 1 << 16;

struct ByteModel {
    freq: [u32; 256],
    total: u32,
}

impl ByteModel {
    fn new() -> Self {
        Self {
            freq: [1; 256],
            total: 256,
        }
    }

    fn cumulative(&self, sym: usize) -> (u32, u32) {
        let mut low = 0;
        for f in &self.freq[..sym] {
            low += f;
        }
        (low, self.freq[sym])
    }

    fn find(&self, target: u32) -> (usize, u32, u32) {
        let mut low = 0;
        for (sym, &f) in self.freq.iter().enumerate() {
            if target < low + f {
                return (sym, low, f);
            }
            low += f;
        }
        // `target < total` by construction of the range coder, so the
        // loop always returns; clamp to the last symbol rather than
        // panic inside the hot decode loop if state is ever corrupt.
        debug_assert!(false, "target below total by construction");
        let last = self.freq.len() - 1;
        let f = self.freq[last];
        (last, low - f, f)
    }

    fn update(&mut self, sym: usize) {
        self.freq[sym] += 32;
        self.total += 32;
        if self.total >= MAX_TOTAL {
            self.total = 0;
            for f in &mut self.freq {
                *f = (*f >> 1) | 1;
                self.total += *f;
            }
        }
    }
}

/// Header: varint original length, then the coded stream.
fn range_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    write_varint(&mut out, data.len() as u64);
    let mut model = ByteModel::new();
    let mut low: u64 = 0;
    let mut range: u64 = !0;
    for &b in data {
        let (cum, freq) = model.cumulative(b as usize);
        let r = range / model.total as u64;
        low = low.wrapping_add(r * cum as u64);
        range = r * freq as u64;
        // Renormalize.
        loop {
            if (low ^ low.wrapping_add(range)) < TOP {
                // Top byte settled.
            } else if range < BOT {
                range = low.wrapping_neg() & (BOT - 1);
            } else {
                break;
            }
            out.push((low >> 56) as u8);
            low <<= 8;
            range <<= 8;
        }
        model.update(b as usize);
    }
    for _ in 0..8 {
        out.push((low >> 56) as u8);
        low <<= 8;
    }
    out
}

fn range_decode(data: &[u8]) -> Vec<u8> {
    let (len, mut pos) = read_varint(data);
    let mut out = Vec::with_capacity(len as usize);
    let mut model = ByteModel::new();
    let mut low: u64 = 0;
    let mut range: u64 = !0;
    let mut code: u64 = 0;
    for _ in 0..8 {
        code = (code << 8) | *data.get(pos).unwrap_or(&0) as u64;
        pos += 1;
    }
    for _ in 0..len {
        let r = range / model.total as u64;
        let target = ((code.wrapping_sub(low)) / r).min(model.total as u64 - 1) as u32;
        let (sym, cum, freq) = model.find(target);
        low = low.wrapping_add(r * cum as u64);
        range = r * freq as u64;
        loop {
            if (low ^ low.wrapping_add(range)) < TOP {
            } else if range < BOT {
                range = low.wrapping_neg() & (BOT - 1);
            } else {
                break;
            }
            code = (code << 8) | *data.get(pos).unwrap_or(&0) as u64;
            pos += 1;
            low <<= 8;
            range <<= 8;
        }
        out.push(sym as u8);
        model.update(sym);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: Codec, data: &[u8]) {
        let enc = lossless_encode(codec, data);
        let dec = lossless_decode(codec, &enc);
        assert_eq!(dec, data, "{codec:?} roundtrip failed (len {})", data.len());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, used) = read_varint(&buf);
            assert_eq!(back, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn all_codecs_roundtrip_patterns() {
        let patterns: Vec<Vec<u8>> = vec![
            vec![],
            vec![0; 1000],
            vec![255; 257],
            (0..=255u8).collect(),
            (0..5000).map(|i| ((i * 7 + i / 13) % 256) as u8).collect(),
            {
                // Sparse: mostly zeros with occasional values (like
                // truncated modal data).
                let mut v = vec![0u8; 4096];
                for i in (0..4096).step_by(97) {
                    v[i] = (i % 255) as u8 + 1;
                }
                v
            },
        ];
        for codec in [Codec::Raw, Codec::Rle, Codec::Range] {
            for p in &patterns {
                roundtrip(codec, p);
            }
        }
    }

    #[test]
    fn rle_compresses_zero_runs() {
        let data = vec![0u8; 10_000];
        let enc = lossless_encode(Codec::Rle, &data);
        assert!(enc.len() < 10, "RLE of zeros took {} bytes", enc.len());
    }

    #[test]
    fn range_coder_compresses_skewed_data() {
        // Heavily skewed distribution: mostly byte 7.
        let data: Vec<u8> = (0..20_000)
            .map(|i| if i % 50 == 0 { (i % 256) as u8 } else { 7 })
            .collect();
        let enc = lossless_encode(Codec::Range, &data);
        assert!(
            enc.len() < data.len() / 4,
            "range coder achieved only {} / {}",
            enc.len(),
            data.len()
        );
        roundtrip(Codec::Range, &data);
    }

    #[test]
    fn range_coder_handles_uniform_random() {
        // Incompressible data must still round-trip (with small expansion).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let data: Vec<u8> = (0..8192).map(|_| rng.gen()).collect();
        roundtrip(Codec::Range, &data);
        roundtrip(Codec::Rle, &data);
    }

    #[test]
    fn codec_ids_stable() {
        for codec in [Codec::Raw, Codec::Rle, Codec::Range] {
            assert_eq!(Codec::from_id(codec.id()), Some(codec));
        }
        assert_eq!(Codec::from_id(99), None);
    }
}
