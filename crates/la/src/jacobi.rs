//! Assembled-diagonal (Jacobi) preconditioner.
//!
//! The diagonal of the unassembled Helmholtz operator is computed
//! analytically from the tensor-product structure (no operator probes),
//! then assembled with a gather-scatter `Add`. This is the "element-wise
//! block Jacobi" preconditioner the paper uses for the velocity and
//! temperature Helmholtz solves and inside the coarse-grid PCG.

use rbx_comm::Communicator;
use rbx_gs::{GatherScatter, GsOp};
use rbx_mesh::GeomFactors;

/// Assembled diagonal of `H = h₁·A + h₂·B`.
///
/// Per element, the stiffness diagonal at node `(i,j,k)` is
/// `Σ_m D[m,i]²·G11[m,j,k] + Σ_m D[m,j]²·G22[i,m,k] + Σ_m D[m,k]²·G33[i,j,m]
///  + 2·D[i,i]·D[j,j]·G12[i,j,k] + 2·D[i,i]·D[k,k]·G13 + 2·D[j,j]·D[k,k]·G23`.
pub fn assembled_diagonal(
    geom: &GeomFactors,
    gs: &GatherScatter,
    h1: f64,
    h2: f64,
    comm: &dyn Communicator,
) -> Vec<f64> {
    let n = geom.nx1;
    let nn = n * n * n;
    let d = &geom.d;
    let mut diag = vec![0.0; geom.total_nodes()];
    // Precompute columns of squared derivative entries.
    let mut dsq = vec![0.0; n * n]; // dsq[m + n*i] = D[m,i]²
    for i in 0..n {
        for m in 0..n {
            dsq[m + n * i] = d[(m, i)] * d[(m, i)];
        }
    }
    for e in 0..geom.nelv {
        let base = e * nn;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let gi = base + i + n * (j + n * k);
                    let mut a = 0.0;
                    if h1 != 0.0 {
                        for m in 0..n {
                            a += dsq[m + n * i] * geom.g[0][base + m + n * (j + n * k)];
                            a += dsq[m + n * j] * geom.g[3][base + i + n * (m + n * k)];
                            a += dsq[m + n * k] * geom.g[5][base + i + n * (j + n * m)];
                        }
                        a += 2.0 * d[(i, i)] * d[(j, j)] * geom.g[1][gi];
                        a += 2.0 * d[(i, i)] * d[(k, k)] * geom.g[2][gi];
                        a += 2.0 * d[(j, j)] * d[(k, k)] * geom.g[4][gi];
                        a *= h1;
                    }
                    diag[gi] = a + h2 * geom.mass[gi];
                }
            }
        }
    }
    gs.apply(&mut diag, GsOp::Add, comm);
    diag
}

/// Apply the Jacobi preconditioner `z = diag⁻¹ r`, masked so constrained
/// nodes stay zero.
pub fn jacobi_apply(diag: &[f64], mask: &[f64], r: &[f64], z: &mut [f64]) {
    debug_assert_eq!(diag.len(), r.len());
    debug_assert_eq!(z.len(), r.len());
    for i in 0..r.len() {
        z[i] = if mask[i] != 0.0 { r[i] / diag[i] } else { 0.0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helmholtz::{HelmholtzOp, HelmholtzScratch};
    use rbx_comm::SingleComm;
    use rbx_mesh::generators::box_mesh;

    #[test]
    fn diagonal_matches_operator_probe() {
        // diag(H)_ii = eᵢᵀ H eᵢ: probe with unit vectors (small case).
        let p = 3;
        let mesh = box_mesh(2, 1, 1, [0., 2.], [0., 1.], [0., 1.], false, false);
        let geom = rbx_mesh::GeomFactors::new(&mesh, p);
        let comm = SingleComm::new();
        let part = vec![0; 2];
        let my = vec![0, 1];
        let gs = GatherScatter::build(&mesh, p, &part, &my, &comm);
        let mask = vec![1.0; geom.total_nodes()];
        let (h1, h2) = (1.3, 0.7);
        let op = HelmholtzOp {
            geom: &geom,
            gs: &gs,
            mask: &mask,
            h1,
            h2,
        };
        let diag = assembled_diagonal(&geom, &gs, h1, h2, &comm);

        let ntot = geom.total_nodes();
        let mut e = vec![0.0; ntot];
        let mut he = vec![0.0; ntot];
        let mut scratch = HelmholtzScratch::default();
        let mult = gs.multiplicity(&comm);
        for i in (0..ntot).step_by(7) {
            e.fill(0.0);
            e[i] = 1.0;
            // Make the probe continuous: copy to all shared images.
            gs.apply(&mut e, rbx_gs::GsOp::Max, &comm);
            op.apply(&e, &mut he, &mut scratch, &comm);
            // For a continuous unit probe the operator diagonal entry is
            // he[i] (assembled), which must match the assembled diagonal.
            assert!(
                (he[i] - diag[i]).abs() <= 1e-9 * diag[i].abs().max(1.0),
                "node {i}: probe {} vs analytic {} (mult {})",
                he[i],
                diag[i],
                mult[i]
            );
        }
    }

    #[test]
    fn jacobi_apply_respects_mask() {
        let diag = vec![2.0, 4.0, 8.0];
        let mask = vec![1.0, 0.0, 1.0];
        let r = vec![2.0, 2.0, 2.0];
        let mut z = vec![9.0; 3];
        jacobi_apply(&diag, &mask, &r, &mut z);
        assert_eq!(z, vec![1.0, 0.0, 0.25]);
    }
}
