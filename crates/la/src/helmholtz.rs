//! Matrix-free spectral-element Helmholtz operator.
//!
//! `H u = h₁·A u + h₂·B u`, with the stiffness `A` applied per element by
//! sum-factorized tensor contractions — `w_i = Σ_j G_ij (D_j u)`, then
//! `Σ_i D_iᵀ w_i` — the "unassembled matrix on a per-element basis"
//! formulation the paper credits for SEM's high operational intensity.
//! The element kernel is the degree-specialized fused apply from
//! [`rbx_basis::fused`]: one pass grad → geometric factors, one pass
//! gradᵀ → mass, instead of six separate sweeps over element data.
//! Assembly across elements/ranks is a gather-scatter `Add`, and Dirichlet
//! conditions are imposed by masking.

use crate::ops::hadamard;
use rbx_basis::fused::{self, FusedScratch};
use rbx_comm::Communicator;
use rbx_device::{loop_chunk, tuning, RangePtr, WorkerPool};
use rbx_gs::{GatherScatter, GsOp};
use rbx_mesh::GeomFactors;
use std::cell::RefCell;

thread_local! {
    /// Per-thread element scratch for the pooled apply: allocated on a
    /// thread's first range and resized only on a polynomial-order change,
    /// keeping the pool dispatch path allocation-free in the steady state.
    static POOL_SCRATCH: RefCell<HelmholtzScratch> = RefCell::new(HelmholtzScratch::default());
}

/// The assembled (in the weak sense) Helmholtz operator
/// `H = h₁·A + h₂·B` on the masked continuous subspace.
pub struct HelmholtzOp<'a> {
    /// Geometry and metric factors.
    pub geom: &'a GeomFactors,
    /// Gather-scatter operator for direct stiffness summation.
    pub gs: &'a GatherScatter,
    /// Dirichlet mask: 1.0 on free nodes, 0.0 on constrained nodes.
    pub mask: &'a [f64],
    /// Stiffness coefficient (e.g. viscosity).
    pub h1: f64,
    /// Mass coefficient (e.g. `bd/Δt`); 0 for a pure Laplacian.
    pub h2: f64,
}

/// Reusable per-apply scratch buffers (sized to one element); wraps the
/// fused kernel's scratch so the pooled path stays allocation-free in the
/// steady state.
#[derive(Debug, Default)]
pub struct HelmholtzScratch {
    fused: FusedScratch,
}

impl<'a> HelmholtzOp<'a> {
    /// Apply the element-local part only (no gather-scatter, no mask):
    /// `y_e = h₁·(DᵀGD)u_e + h₂·B_e u_e` for each element.
    pub fn apply_local(&self, u: &[f64], y: &mut [f64], scratch: &mut HelmholtzScratch) {
        let nn = self.geom.nodes_per_element();
        let nelv = self.geom.nelv;
        debug_assert_eq!(u.len(), nelv * nn);
        debug_assert_eq!(y.len(), nelv * nn);
        self.apply_element_range(0, u, y, scratch);
    }

    /// Like [`HelmholtzOp::apply_local`] but with the element loop
    /// dispatched on a persistent [`WorkerPool`] (dynamic chunk
    /// self-scheduling, per-thread scratch, zero per-call spawns or
    /// allocations). Element outputs are disjoint, so the result is
    /// bitwise identical to the serial apply for every thread count.
    pub fn apply_local_with(&self, u: &[f64], y: &mut [f64], pool: &WorkerPool) {
        let nn = self.geom.nodes_per_element();
        let nelv = self.geom.nelv;
        debug_assert_eq!(u.len(), nelv * nn);
        debug_assert_eq!(y.len(), nelv * nn);
        let yp = RangePtr::new(y);
        let gate = tuning().helmholtz_elems;
        let chunk = loop_chunk(nelv, pool.threads());
        pool.for_each_range_min(nelv, chunk, gate, |e0, e1| {
            POOL_SCRATCH.with(|cell| {
                let scratch = &mut *cell.borrow_mut();
                // SAFETY: element chunks are pairwise disjoint, so the node
                // ranges they map to are too.
                let ysub = unsafe { yp.range_mut(e0 * nn, e1 * nn) };
                self.apply_element_range(e0, &u[e0 * nn..e1 * nn], ysub, scratch);
            });
        });
    }

    /// Full pooled operator apply: pooled local part, gather-scatter
    /// assembly (itself pooled when the gather-scatter has a pool
    /// injected), then Dirichlet masking.
    pub fn apply_with(&self, u: &[f64], y: &mut [f64], pool: &WorkerPool, comm: &dyn Communicator) {
        self.apply_local_with(u, y, pool);
        self.gs.apply(y, GsOp::Add, comm);
        hadamard(self.mask, y);
    }

    /// Apply to a contiguous element range; `e_begin` locates the range in
    /// the geometry arrays, `u`/`y` hold exactly that range's nodes. Each
    /// element runs the fused two-pass kernel ([`rbx_basis::fused`]),
    /// degree-specialized for the production node counts.
    fn apply_element_range(
        &self,
        e_begin: usize,
        u: &[f64],
        y: &mut [f64],
        scratch: &mut HelmholtzScratch,
    ) {
        let n = self.geom.nx1;
        let nn = n * n * n;
        debug_assert_eq!(u.len() % nn, 0);
        let nelv = u.len() / nn;
        let d = &self.geom.d;
        let g = &self.geom.g;

        for e_local in 0..nelv {
            let base = (e_begin + e_local) * nn;
            let ue = &u[e_local * nn..(e_local + 1) * nn];
            let ye = &mut y[e_local * nn..(e_local + 1) * nn];
            let ge: [&[f64]; 6] = [
                &g[0][base..base + nn],
                &g[1][base..base + nn],
                &g[2][base..base + nn],
                &g[3][base..base + nn],
                &g[4][base..base + nn],
                &g[5][base..base + nn],
            ];
            fused::helmholtz_element(
                d,
                &ge,
                &self.geom.mass[base..base + nn],
                self.h1,
                self.h2,
                ue,
                ye,
                &mut scratch.fused,
            );
        }
    }

    /// Full operator apply: local part, gather-scatter assembly, then
    /// Dirichlet masking. Input `u` is expected continuous and masked.
    pub fn apply(
        &self,
        u: &[f64],
        y: &mut [f64],
        scratch: &mut HelmholtzScratch,
        comm: &dyn Communicator,
    ) {
        self.apply_local(u, y, scratch);
        self.gs.apply(y, GsOp::Add, comm);
        hadamard(self.mask, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::dirichlet_mask;
    use crate::ops::DotProduct;
    use rbx_comm::SingleComm;
    use rbx_mesh::generators::box_mesh;
    use rbx_mesh::{BoundaryTag, GeomFactors};

    fn setup(nx: usize, p: usize) -> (rbx_mesh::HexMesh, GeomFactors, GatherScatter, SingleComm) {
        let mesh = box_mesh(nx, nx, nx, [0., 1.], [0., 1.], [0., 1.], false, false);
        let geom = GeomFactors::new(&mesh, p);
        let comm = SingleComm::new();
        let part = vec![0usize; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        let gs = GatherScatter::build(&mesh, p, &part, &my, &comm);
        (mesh, geom, gs, comm)
    }

    #[test]
    fn laplacian_of_constant_is_zero() {
        let (mesh, geom, gs, comm) = setup(2, 4);
        let mask = vec![1.0; geom.total_nodes()]; // no Dirichlet
        let op = HelmholtzOp {
            geom: &geom,
            gs: &gs,
            mask: &mask,
            h1: 1.0,
            h2: 0.0,
        };
        let u = vec![3.0; geom.total_nodes()];
        let mut y = vec![0.0; u.len()];
        let mut scratch = HelmholtzScratch::default();
        op.apply(&u, &mut y, &mut scratch, &comm);
        let max = y.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max < 1e-10, "A·const = {max}");
        drop(mesh);
    }

    #[test]
    fn operator_is_symmetric() {
        let (mesh, geom, gs, comm) = setup(2, 3);
        let mask = dirichlet_mask(
            &mesh,
            3,
            &(0..mesh.num_elements()).collect::<Vec<_>>(),
            &[
                BoundaryTag::Wall,
                BoundaryTag::HotWall,
                BoundaryTag::ColdWall,
            ],
            &gs,
            &comm,
        );
        let op = HelmholtzOp {
            geom: &geom,
            gs: &gs,
            mask: &mask,
            h1: 1.0,
            h2: 0.5,
        };
        let dp = DotProduct::new(&gs.multiplicity(&comm));
        let n = geom.total_nodes();
        let mut scratch = HelmholtzScratch::default();
        // Continuous masked random-ish vectors.
        let make = |seed: usize| -> Vec<f64> {
            let mut v: Vec<f64> = (0..n)
                .map(|i| (((i * 97 + seed * 31) % 101) as f64) * 0.02 - 1.0)
                .collect();
            gs.average(&mut v, &gs.multiplicity(&comm), &comm);
            hadamard(&mask, &mut v);
            v
        };
        let u = make(1);
        let w = make(2);
        let mut au = vec![0.0; n];
        let mut aw = vec![0.0; n];
        op.apply(&u, &mut au, &mut scratch, &comm);
        op.apply(&w, &mut aw, &mut scratch, &comm);
        let left = dp.dot(&au, &w, &comm);
        let right = dp.dot(&u, &aw, &comm);
        assert!(
            (left - right).abs() <= 1e-10 * left.abs().max(1.0),
            "asymmetry: {left} vs {right}"
        );
        // SPD on the masked subspace.
        let energy = dp.dot(&au, &u, &comm);
        assert!(energy > 0.0);
    }

    #[test]
    fn galerkin_laplacian_matches_quadratic() {
        // For u = x² on [0,1]³ with full mask, ⟨A u, u⟩ = ∫ |∇u|² = ∫ 4x² = 4/3.
        let (_mesh, geom, gs, comm) = setup(2, 5);
        let mask = vec![1.0; geom.total_nodes()];
        let op = HelmholtzOp {
            geom: &geom,
            gs: &gs,
            mask: &mask,
            h1: 1.0,
            h2: 0.0,
        };
        let u: Vec<f64> = geom.coords[0].iter().map(|&x| x * x).collect();
        let mut au = vec![0.0; u.len()];
        let mut scratch = HelmholtzScratch::default();
        op.apply(&u, &mut au, &mut scratch, &comm);
        let dp = DotProduct::new(&gs.multiplicity(&comm));
        let energy = dp.dot(&au, &u, &comm);
        assert!((energy - 4.0 / 3.0).abs() < 1e-10, "energy {energy}");
    }

    #[test]
    fn mass_term_integrates_volume() {
        // h1 = 0, h2 = 1: ⟨B·1, 1⟩ = volume.
        let (_mesh, geom, gs, comm) = setup(3, 3);
        let mask = vec![1.0; geom.total_nodes()];
        let op = HelmholtzOp {
            geom: &geom,
            gs: &gs,
            mask: &mask,
            h1: 0.0,
            h2: 1.0,
        };
        let u = vec![1.0; geom.total_nodes()];
        let mut y = vec![0.0; u.len()];
        let mut scratch = HelmholtzScratch::default();
        op.apply(&u, &mut y, &mut scratch, &comm);
        let dp = DotProduct::new(&gs.multiplicity(&comm));
        let vol = dp.dot(&y, &u, &comm);
        assert!((vol - 1.0).abs() < 1e-12, "volume {vol}");
    }
}

#[cfg(test)]
mod pooled_tests {
    use super::*;
    use rbx_comm::SingleComm;
    use rbx_mesh::generators::box_mesh;
    use rbx_mesh::GeomFactors;

    #[test]
    fn pooled_apply_matches_serial_bitwise() {
        let p = 4;
        let mesh = box_mesh(3, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let geom = GeomFactors::new(&mesh, p);
        let comm = SingleComm::new();
        let part = vec![0; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        let gs = GatherScatter::build(&mesh, p, &part, &my, &comm);
        let mask = vec![1.0; geom.total_nodes()];
        let op = HelmholtzOp {
            geom: &geom,
            gs: &gs,
            mask: &mask,
            h1: 1.7,
            h2: 0.4,
        };
        let n = geom.total_nodes();
        let u: Vec<f64> = (0..n)
            .map(|i| ((i * 37 % 101) as f64) * 0.03 - 1.5)
            .collect();

        let mut y_serial = vec![0.0; n];
        let mut scratch = HelmholtzScratch::default();
        op.apply_local(&u, &mut y_serial, &mut scratch);

        for threads in [1usize, 2, 3, 5] {
            let pool = rbx_device::WorkerPool::new(threads);
            let mut y_pooled = vec![0.0; n];
            op.apply_local_with(&u, &mut y_pooled, &pool);
            for (a, b) in y_serial.iter().zip(&y_pooled) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }
}
