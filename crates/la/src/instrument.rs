//! Telemetry hooks for the Krylov layer.
//!
//! [`record_solve`] is the single funnel through which every solve's
//! outcome enters the metrics registry and the JSONL event stream. The
//! solvers themselves stay closure-driven and dependency-free; callers
//! (the simulation step loop, benches) invoke the hook with the stats
//! they already hold.

use crate::error::SolveHealth;
use crate::krylov::SolveStats;
use rbx_telemetry::json::Value;
use rbx_telemetry::schema::TELEMETRY_SCHEMA;
use rbx_telemetry::Telemetry;

/// Short machine token for a health verdict (Prometheus label / JSON
/// field value; the human-readable detail lives in `Display`).
pub fn health_token(health: SolveHealth) -> &'static str {
    use crate::error::SolveError::*;
    match health.error() {
        None => "healthy",
        Some(NonFiniteResidual { .. }) => "non_finite",
        Some(Diverged { .. }) => "diverged",
        Some(Stagnated { .. }) => "stagnated",
        Some(IndefiniteOperator { .. }) => "indefinite",
        Some(IterationLimit { .. }) => "iteration_limit",
    }
}

/// Record one completed Krylov solve: iteration/residual histograms, an
/// outcome counter keyed by [`SolveHealth`], and a `kind: "solve"` JSONL
/// record (when a sink is attached). A single atomic load when telemetry
/// is disabled.
pub fn record_solve(tel: &Telemetry, solver: &'static str, label: &str, stats: &SolveStats) {
    if !tel.is_enabled() {
        return;
    }
    let health = health_token(stats.health);
    tel.histogram_observe(
        &format!("rbx_solve_iterations{{solver=\"{solver}\",label=\"{label}\"}}"),
        stats.iterations as f64,
    );
    tel.histogram_observe(
        &format!("rbx_solve_initial_residual{{solver=\"{solver}\",label=\"{label}\"}}"),
        stats.initial_residual,
    );
    tel.histogram_observe(
        &format!("rbx_solve_final_residual{{solver=\"{solver}\",label=\"{label}\"}}"),
        stats.final_residual,
    );
    tel.counter_add(
        &format!("rbx_solve_outcome_total{{solver=\"{solver}\",health=\"{health}\"}}"),
        1,
    );
    tel.emit(&Value::obj([
        ("schema", Value::str(TELEMETRY_SCHEMA)),
        ("kind", Value::str("solve")),
        ("solver", Value::str(solver)),
        ("label", Value::str(label)),
        ("iterations", Value::int(stats.iterations as u64)),
        ("initial_residual", Value::num(stats.initial_residual)),
        ("final_residual", Value::num(stats.final_residual)),
        ("converged", Value::Bool(stats.converged)),
        ("health", Value::str(health)),
        (
            "residual_history",
            Value::arr(stats.residuals.to_vec().into_iter().map(Value::num)),
        ),
    ]));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SolveError;
    use crate::krylov::ResidualHistory;
    use rbx_telemetry::schema::validate_line;

    fn fake_stats() -> SolveStats {
        let mut residuals = ResidualHistory::new();
        for i in 0..20 {
            residuals.push(1.0 / (1 + i) as f64);
        }
        SolveStats {
            iterations: 19,
            initial_residual: 1.0,
            final_residual: 0.05,
            converged: true,
            health: SolveHealth::Healthy,
            residuals,
        }
    }

    #[test]
    fn records_metrics_and_schema_valid_jsonl() {
        let tel = Telemetry::enabled();
        let path =
            std::env::temp_dir().join(format!("rbx-la-instrument-{}.jsonl", std::process::id()));
        tel.open_jsonl(&path).unwrap();
        record_solve(&tel, "fgmres", "pressure", &fake_stats());
        tel.flush();
        assert_eq!(
            tel.metrics()
                .counter("rbx_solve_outcome_total{solver=\"fgmres\",health=\"healthy\"}"),
            1
        );
        assert_eq!(
            tel.metrics()
                .histogram_count("rbx_solve_iterations{solver=\"fgmres\",label=\"pressure\"}"),
            1
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text.lines().next().unwrap();
        validate_line(line).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        record_solve(&tel, "pcg", "velocity_x", &fake_stats());
        assert!(tel.metrics().render_prometheus().is_empty());
    }

    #[test]
    fn health_tokens_are_stable() {
        assert_eq!(health_token(SolveHealth::Healthy), "healthy");
        assert_eq!(
            health_token(SolveHealth::Failed(SolveError::Stagnated {
                iteration: 3,
                residual: 1.0
            })),
            "stagnated"
        );
        assert_eq!(
            health_token(SolveHealth::Failed(SolveError::NonFiniteResidual {
                iteration: 0
            })),
            "non_finite"
        );
    }
}
