//! Coarse-grid level of the hybrid Schwarz preconditioner.
//!
//! The paper (§5.3) solves the coarse problem `A₀` on *linear elements*
//! (the same mesh at polynomial degree 1) with "an approximate Krylov
//! solver, a preconditioned Conjugate Gradient method, with a fixed number
//! of iterations (≈10) and an element-wise block Jacobi preconditioner."
//! This module builds exactly that: degree-1 geometry, its own
//! gather-scatter, the restriction/prolongation transfer between the fine
//! GLL lattice and the element vertices, and the fixed-iteration PCG.

use crate::helmholtz::{HelmholtzOp, HelmholtzScratch};
use crate::jacobi::{assembled_diagonal, jacobi_apply};
use crate::krylov::pcg;
use crate::ops::{hadamard, ortho_project_mean_layout, DotProduct, ElemLayout};
use rbx_basis::tensor::{tensor_apply3, TensorScratch};
use rbx_basis::{gll, interp_matrix, DMat};
use rbx_comm::Communicator;
use rbx_gs::GatherScatter;
use rbx_mesh::{BoundaryTag, GeomFactors, HexMesh};
use rbx_telemetry::Telemetry;
use std::sync::Arc;

/// The degree-1 coarse problem with fixed-iteration PCG solve.
pub struct CoarseGrid {
    /// Coarse geometry (degree 1).
    pub geom: GeomFactors,
    /// Coarse gather-scatter.
    pub gs: GatherScatter,
    /// Coarse Dirichlet mask (all ones for the pure-Neumann pressure case).
    pub mask: Vec<f64>,
    /// Assembled coarse operator diagonal (Jacobi preconditioner).
    diag: Vec<f64>,
    /// Coarse inner product (canonical: rank-count-invariant bits).
    dp: DotProduct,
    /// Coarse element layout for canonical mean projections.
    layout: Arc<ElemLayout>,
    /// Mass × inverse-multiplicity weights for mean projection.
    bw: Vec<f64>,
    /// Prolongation: degree-1 nodes → fine GLL nodes (per dimension,
    /// `n_fine × 2`).
    j_up: DMat,
    /// Restriction = prolongationᵀ (`2 × n_fine`).
    j_down: DMat,
    /// Fixed PCG iteration count (paper: ≈10).
    pub iterations: usize,
    /// Pure-Neumann problem (project out the constant null space).
    pub neumann: bool,
    fine_n: usize,
    coarse_n: usize,
    /// Observability handle (disabled by default; a single atomic load
    /// per stage when off).
    tel: Telemetry,
}

impl CoarseGrid {
    /// Build the coarse level for this rank's elements.
    ///
    /// `dirichlet_tags` lists the boundary tags that impose Dirichlet
    /// conditions on the *solved variable*; pass an empty slice for the
    /// pure-Neumann pressure Poisson problem (sets `neumann = true`).
    pub fn build(
        mesh: &HexMesh,
        fine_p: usize,
        part: &[usize],
        my_elems: &[usize],
        dirichlet_tags: &[BoundaryTag],
        comm: &dyn Communicator,
    ) -> Self {
        Self::build_with_order(mesh, fine_p, 1, part, my_elems, dirichlet_tags, comm)
    }

    /// Like [`CoarseGrid::build`] but with a configurable coarse polynomial
    /// degree (the paper's Eq. 3 is stated "for a general k-level
    /// formulation"; degree 1 is the production choice, higher degrees give
    /// a richer — and costlier — coarse space).
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_order(
        mesh: &HexMesh,
        fine_p: usize,
        coarse_p: usize,
        part: &[usize],
        my_elems: &[usize],
        dirichlet_tags: &[BoundaryTag],
        comm: &dyn Communicator,
    ) -> Self {
        assert!(
            coarse_p >= 1 && coarse_p < fine_p,
            "need 1 <= coarse_p < fine_p"
        );
        let sub = mesh.extract(my_elems);
        let geom = GeomFactors::new(&sub, coarse_p);
        let gs = GatherScatter::build(mesh, coarse_p, part, my_elems, comm);
        let neumann = dirichlet_tags.is_empty();
        let mask = if neumann {
            vec![1.0; geom.total_nodes()]
        } else {
            crate::bc::dirichlet_mask(mesh, coarse_p, my_elems, dirichlet_tags, &gs, comm)
        };
        let diag = assembled_diagonal(&geom, &gs, 1.0, 0.0, comm);
        let mult = gs.multiplicity(comm);
        let nc = coarse_p + 1;
        let layout = Arc::new(ElemLayout::new(
            nc * nc * nc,
            my_elems.to_vec(),
            mesh.num_elements(),
        ));
        let dp = DotProduct::with_layout(&mult, layout.clone());
        let bw: Vec<f64> = geom
            .mass
            .iter()
            .zip(dp.weights())
            .map(|(b, w)| b * w)
            .collect();

        let fine_pts = gll(fine_p + 1).points;
        let coarse_pts = gll(coarse_p + 1).points; // degree 1 → the endpoints
        let j_up = interp_matrix(&coarse_pts, &fine_pts);
        let j_down = j_up.transpose();

        Self {
            geom,
            gs,
            mask,
            diag,
            dp,
            layout,
            bw,
            j_up,
            j_down,
            iterations: 10,
            neumann,
            fine_n: fine_p + 1,
            coarse_n: coarse_p + 1,
            tel: Telemetry::disabled(),
        }
    }

    /// Share a telemetry handle; the coarse correction then records the
    /// `schwarz/coarse/{restrict,solve,prolong}` spans.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
    }

    /// Coarse dof count (local, duplicated storage): `nelv · (pc+1)³`.
    pub fn len(&self) -> usize {
        self.geom.total_nodes()
    }

    /// True when the rank owns no elements.
    pub fn is_empty(&self) -> bool {
        self.geom.nelv == 0
    }

    /// Restrict a (1/mult-weighted) fine residual to the coarse space:
    /// `r₀ = R₀ r`, assembled on the coarse level.
    pub fn restrict(
        &self,
        r_weighted: &[f64],
        r_coarse: &mut [f64],
        scratch: &mut TensorScratch,
        comm: &dyn Communicator,
    ) {
        let nf = self.fine_n;
        let nnf = nf * nf * nf;
        let nc = self.coarse_n;
        let nnc = nc * nc * nc;
        let nelv = self.geom.nelv;
        debug_assert_eq!(r_weighted.len(), nelv * nnf);
        debug_assert_eq!(r_coarse.len(), nelv * nnc);
        for e in 0..nelv {
            let rin = &r_weighted[e * nnf..(e + 1) * nnf];
            let rout = &mut r_coarse[e * nnc..(e + 1) * nnc];
            tensor_apply3(&self.j_down, &self.j_down, &self.j_down, rin, rout, scratch);
        }
        self.gs.apply(r_coarse, rbx_gs::GsOp::Add, comm);
        hadamard(&self.mask, r_coarse);
    }

    /// Prolongate a coarse correction to the fine lattice and add:
    /// `z += R₀ᵀ z₀`.
    // audit:allow(hot-alloc): coefficient/coarse-space sized buffers, bounded well below field size
    pub fn prolong_add(&self, z_coarse: &[f64], z_fine: &mut [f64], scratch: &mut TensorScratch) {
        let nf = self.fine_n;
        let nnf = nf * nf * nf;
        let nc = self.coarse_n;
        let nnc = nc * nc * nc;
        let nelv = self.geom.nelv;
        let mut buf = vec![0.0; nnf];
        for e in 0..nelv {
            let zin = &z_coarse[e * nnc..(e + 1) * nnc];
            tensor_apply3(&self.j_up, &self.j_up, &self.j_up, zin, &mut buf, scratch);
            for (zf, b) in z_fine[e * nnf..(e + 1) * nnf].iter_mut().zip(&buf) {
                *zf += b;
            }
        }
    }

    /// Approximately solve `A₀ z₀ = r₀` with the fixed-iteration
    /// block-Jacobi PCG. `z₀` is overwritten (starts from zero).
    // audit:allow(hot-alloc): coefficient/coarse-space sized buffers, bounded well below field size
    pub fn solve(&self, r_coarse: &[f64], z_coarse: &mut [f64], comm: &dyn Communicator) {
        let mut rhs = r_coarse.to_vec();
        if self.neumann {
            // Solvability of the singular Neumann system requires
            // ⟨rhs, 1⟩ = 0 in the unique-dof inner product → project with
            // inverse-multiplicity weights (canonical reduction: the
            // projected rhs bits are identical for every rank count).
            ortho_project_mean_layout(&mut rhs, self.dp.weights(), &self.layout, comm);
        }
        z_coarse.fill(0.0);
        let op = HelmholtzOp {
            geom: &self.geom,
            gs: &self.gs,
            mask: &self.mask,
            h1: 1.0,
            h2: 0.0,
        };
        let mut scratch = HelmholtzScratch::default();
        let _ = pcg(
            |p, ap| op.apply(p, ap, &mut scratch, comm),
            |r, z| jacobi_apply(&self.diag, &self.mask, r, z),
            |a, b| self.dp.dot(a, b, comm),
            &rhs,
            z_coarse,
            1e-14,
            1e-4,
            self.iterations,
        );
        if self.neumann {
            ortho_project_mean_layout(z_coarse, &self.bw, &self.layout, comm);
        }
    }

    /// Full coarse correction `z += R₀ᵀ A₀⁻¹ R₀ r` from a weighted fine
    /// residual.
    // audit:allow(hot-alloc): coefficient/coarse-space sized buffers, bounded well below field size
    pub fn correct_add(&self, r_weighted: &[f64], z_fine: &mut [f64], comm: &dyn Communicator) {
        let mut rc = vec![0.0; self.len()];
        let mut zc = vec![0.0; self.len()];
        let mut scratch = TensorScratch::new();
        // Absolute span paths: the overlapped Schwarz mode runs this on a
        // helper thread, and both modes must produce identical trees.
        {
            let _g = self.tel.span_abs("schwarz/coarse/restrict");
            self.restrict(r_weighted, &mut rc, &mut scratch, comm);
        }
        {
            let _g = self.tel.span_abs("schwarz/coarse/solve");
            self.solve(&rc, &mut zc, comm);
        }
        {
            let _g = self.tel.span_abs("schwarz/coarse/prolong");
            self.prolong_add(&zc, z_fine, &mut scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbx_comm::SingleComm;
    use rbx_mesh::generators::box_mesh;

    fn setup(p: usize) -> (HexMesh, CoarseGrid, SingleComm, Vec<usize>) {
        let mesh = box_mesh(3, 3, 3, [0., 1.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let part = vec![0; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        let cg = CoarseGrid::build(
            &mesh,
            p,
            &part,
            &my,
            &[
                BoundaryTag::Wall,
                BoundaryTag::HotWall,
                BoundaryTag::ColdWall,
            ],
            &comm,
        );
        (mesh, cg, comm, my)
    }

    #[test]
    fn prolongation_of_linear_function_is_exact() {
        let p = 5;
        let (_mesh, cg, _comm, _my) = setup(p);
        let fine_geom = {
            let mesh = box_mesh(3, 3, 3, [0., 1.], [0., 1.], [0., 1.], false, false);
            GeomFactors::new(&mesh, p)
        };
        // Coarse nodal values of f = 2x - y + 3z.
        let f = |x: f64, y: f64, z: f64| 2.0 * x - y + 3.0 * z;
        let zc: Vec<f64> = (0..cg.len())
            .map(|i| {
                f(
                    cg.geom.coords[0][i],
                    cg.geom.coords[1][i],
                    cg.geom.coords[2][i],
                )
            })
            .collect();
        let mut zf = vec![0.0; fine_geom.total_nodes()];
        let mut scratch = TensorScratch::new();
        cg.prolong_add(&zc, &mut zf, &mut scratch);
        for i in 0..zf.len() {
            let expect = f(
                fine_geom.coords[0][i],
                fine_geom.coords[1][i],
                fine_geom.coords[2][i],
            );
            assert!((zf[i] - expect).abs() < 1e-11, "node {i}");
        }
    }

    #[test]
    fn restrict_is_adjoint_of_prolong() {
        // Use the Neumann (unmasked) coarse grid so the adjoint identity
        // holds without boundary-mask bookkeeping.
        let p = 4;
        let mesh = box_mesh(3, 3, 3, [0., 1.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let part = vec![0; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        let cg = CoarseGrid::build(&mesh, p, &part, &my, &[], &comm);
        let nf = p + 1;
        let nnf = nf * nf * nf;
        let n_fine = cg.geom.nelv * nnf;
        // ⟨R₀ r, z⟩_c (unique) must equal ⟨r, R₀ᵀ z⟩_f (unique) when r is
        // weighted: use identity multiplicities by choosing element-interior
        // test data. Simplest check: restriction of a constant-weighted
        // vector against prolongation of coarse basis.
        let r: Vec<f64> = (0..n_fine).map(|i| ((i % 17) as f64) - 8.0).collect();
        let zc: Vec<f64> = (0..cg.len()).map(|i| ((i % 5) as f64) - 2.0).collect();
        // Make coarse vector continuous.
        let mut zc_cont = zc.clone();
        let multc = cg.gs.multiplicity(&comm);
        cg.gs.average(&mut zc_cont, &multc, &comm);

        // left = Σ_unique (R₀ r)·zc — compute with coarse dot.
        let mut rc = vec![0.0; cg.len()];
        let mut scratch = TensorScratch::new();
        cg.restrict(&r, &mut rc, &mut scratch, &comm);
        let left = cg.dp.dot(&rc, &zc_cont, &comm);

        // right = Σ_local r·(R₀ᵀ zc) — r is the weighted residual, so the
        // plain local dot is the consistent pairing.
        let mut zf = vec![0.0; n_fine];
        cg.prolong_add(&zc_cont, &mut zf, &mut scratch);
        let right: f64 = r.iter().zip(&zf).map(|(a, b)| a * b).sum();
        assert!(
            (left - right).abs() < 1e-9 * left.abs().max(1.0),
            "{left} vs {right}"
        );
    }

    #[test]
    fn coarse_solve_reduces_residual() {
        let p = 4;
        let (_mesh, cg, comm, _my) = setup(p);
        // Random-ish masked continuous coarse rhs.
        let mut rhs: Vec<f64> = (0..cg.len())
            .map(|i| ((i * 31 % 19) as f64) - 9.0)
            .collect();
        cg.gs.apply(&mut rhs, rbx_gs::GsOp::Add, &comm);
        hadamard(&cg.mask, &mut rhs);
        let mut z = vec![0.0; cg.len()];
        cg.solve(&rhs, &mut z, &comm);
        // Residual after the fixed-iteration solve must be far below ‖rhs‖.
        let op = HelmholtzOp {
            geom: &cg.geom,
            gs: &cg.gs,
            mask: &cg.mask,
            h1: 1.0,
            h2: 0.0,
        };
        let mut az = vec![0.0; cg.len()];
        let mut scratch = HelmholtzScratch::default();
        op.apply(&z, &mut az, &mut scratch, &comm);
        let r0 = cg.dp.norm(&rhs, &comm);
        let res: Vec<f64> = rhs.iter().zip(&az).map(|(b, a)| b - a).collect();
        let r1 = cg.dp.norm(&res, &comm);
        assert!(
            r1 < 0.5 * r0,
            "coarse PCG barely reduced residual: {r1} vs {r0}"
        );
    }

    #[test]
    fn neumann_coarse_solution_has_zero_mean() {
        let p = 3;
        let mesh = box_mesh(2, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let part = vec![0; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        let cg = CoarseGrid::build(&mesh, p, &part, &my, &[], &comm);
        assert!(cg.neumann);
        let mut rhs: Vec<f64> = (0..cg.len()).map(|i| (i as f64 * 0.37).sin()).collect();
        cg.gs.apply(&mut rhs, rbx_gs::GsOp::Add, &comm);
        let mut z = vec![0.0; cg.len()];
        cg.solve(&rhs, &mut z, &comm);
        let weighted: f64 = z.iter().zip(&cg.bw).map(|(a, b)| a * b).sum();
        assert!(weighted.abs() < 1e-10, "mean not projected: {weighted}");
    }
}

#[cfg(test)]
mod multilevel_tests {
    use super::*;
    use crate::bc::dirichlet_mask;
    use crate::helmholtz::{HelmholtzOp, HelmholtzScratch};
    use crate::krylov::fgmres;
    use crate::ops::DotProduct;
    use crate::{ElementFdm, SchwarzMg, SchwarzMode};
    use rbx_comm::SingleComm;
    use rbx_mesh::generators::box_mesh;
    use std::sync::Arc;

    const ALL: [BoundaryTag; 3] = [
        BoundaryTag::Wall,
        BoundaryTag::HotWall,
        BoundaryTag::ColdWall,
    ];

    /// FGMRES iteration count with a Schwarz preconditioner whose coarse
    /// level has the given polynomial degree.
    fn iters_with_coarse_order(coarse_p: usize) -> usize {
        let p = 6;
        let mesh = box_mesh(3, 3, 3, [0., 1.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let part = vec![0; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        let geom = GeomFactors::new(&mesh, p);
        let gs = Arc::new(GatherScatter::build(&mesh, p, &part, &my, &comm));
        let mask = dirichlet_mask(&mesh, p, &my, &ALL, &gs, &comm);
        let mult = gs.multiplicity(&comm);
        let fdm = ElementFdm::new(&geom);
        let coarse = CoarseGrid::build_with_order(&mesh, p, coarse_p, &part, &my, &ALL, &comm);
        let schwarz = SchwarzMg::new(
            fdm,
            coarse,
            gs.clone(),
            &mult,
            mask.clone(),
            &geom.mass,
            1.0,
            0.0,
        );
        let op = HelmholtzOp {
            geom: &geom,
            gs: &gs,
            mask: &mask,
            h1: 1.0,
            h2: 0.0,
        };
        let dp = DotProduct::new(&mult);
        let n = geom.total_nodes();
        let mut x_true: Vec<f64> = (0..n)
            .map(|i| {
                (std::f64::consts::PI * geom.coords[0][i]).sin()
                    * (std::f64::consts::PI * geom.coords[1][i]).sin()
                    * (std::f64::consts::PI * geom.coords[2][i]).sin()
            })
            .collect();
        crate::ops::hadamard(&mask, &mut x_true);
        let mut b = vec![0.0; n];
        let mut scratch = HelmholtzScratch::default();
        op.apply(&x_true, &mut b, &mut scratch, &comm);
        let mut x = vec![0.0; n];
        let mut scratch2 = HelmholtzScratch::default();
        let stats = fgmres(
            |pv, ap| op.apply(pv, ap, &mut scratch2, &comm),
            |r, z| schwarz.apply(r, z, SchwarzMode::Serial, &comm),
            |a, c| dp.dot(a, c, &comm),
            &b,
            &mut x,
            1e-9,
            0.0,
            300,
            30,
        );
        assert!(stats.converged, "coarse_p = {coarse_p}: {stats:?}");
        stats.iterations
    }

    #[test]
    fn richer_coarse_space_does_not_hurt() {
        let it1 = iters_with_coarse_order(1);
        let it2 = iters_with_coarse_order(2);
        assert!(
            it2 <= it1,
            "degree-2 coarse space worse than degree-1: {it2} > {it1}"
        );
    }

    #[test]
    fn coarse_order_transfer_exact_on_matching_polynomials() {
        // Prolongation from a degree-2 coarse space reproduces quadratics.
        let p = 5;
        let mesh = box_mesh(2, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let part = vec![0; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        let cg = CoarseGrid::build_with_order(&mesh, p, 2, &part, &my, &[], &comm);
        let fine_geom = GeomFactors::new(&mesh, p);
        let f = |x: f64, y: f64, z: f64| x * x - 2.0 * y * z + 3.0 * z * z;
        let zc: Vec<f64> = (0..cg.len())
            .map(|i| {
                f(
                    cg.geom.coords[0][i],
                    cg.geom.coords[1][i],
                    cg.geom.coords[2][i],
                )
            })
            .collect();
        let mut zf = vec![0.0; fine_geom.total_nodes()];
        let mut scratch = rbx_basis::TensorScratch::new();
        cg.prolong_add(&zc, &mut zf, &mut scratch);
        for i in 0..zf.len() {
            let expect = f(
                fine_geom.coords[0][i],
                fine_geom.coords[1][i],
                fine_geom.coords[2][i],
            );
            assert!((zf[i] - expect).abs() < 1e-11, "node {i}");
        }
    }

    #[test]
    #[should_panic(expected = "coarse_p < fine_p")]
    fn coarse_order_must_be_below_fine() {
        let mesh = box_mesh(1, 1, 1, [0., 1.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let _ = CoarseGrid::build_with_order(&mesh, 3, 3, &[0], &[0], &[], &comm);
    }
}
