//! Two-level additive Schwarz preconditioner (paper Eq. 3), serial and
//! task-overlapped.
//!
//! `M⁻¹ r = R₀ᵀ A₀⁻¹ R₀ r + Σₖ Rₖᵀ Ãₖ⁻¹ Rₖ r`
//!
//! The fine term solves each element with the fast diagonalization method
//! (natural boundary conditions, constant mode pseudo-inverted) and
//! restores continuity by weighted gather-scatter averaging; the coarse
//! term restricts to linear elements and runs the fixed-iteration
//! block-Jacobi PCG of [`CoarseGrid`].
//!
//! The two terms are independent, which is the insight behind the paper's
//! §5.3 innovation: "exploit the available task-parallelism and launch the
//! left and the right part of (3) in parallel". [`SchwarzMode::Overlapped`]
//! runs the coarse-grid solve (communication-heavy, many small kernels) on
//! a separate thread concurrently with the element-local FDM sweep
//! (compute-heavy, no communication) — the CPU equivalent of the paper's
//! dual-stream, dual-OpenMP-thread formulation, with identical numerics:
//! the two modes produce bitwise-equal output.

use crate::coarse::CoarseGrid;
use crate::fdm::ElementFdm;
use crate::ops::{hadamard, ortho_project_mean, ortho_project_mean_layout, ElemLayout};
use rbx_comm::Communicator;
use rbx_device::WorkerPool;
use rbx_gs::{GatherScatter, GsOp};
use rbx_telemetry::Telemetry;
use std::sync::Arc;

/// Execution strategy for the two additive terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchwarzMode {
    /// Coarse solve, then fine solves, on the calling thread.
    Serial,
    /// Coarse solve on a helper thread, fine solves on the calling thread,
    /// concurrently. The short fine-level gather-scatter runs after the
    /// join (host-side communication, as on the GPU systems the paper
    /// targets).
    Overlapped,
}

/// The assembled two-level preconditioner for a Helmholtz problem with
/// coefficients `(h1, h2)`.
pub struct SchwarzMg {
    /// Element-local fast-diagonalization solver (fine level).
    pub fdm: ElementFdm,
    /// Linear-element coarse level.
    pub coarse: CoarseGrid,
    /// Fine-level gather-scatter (for the weighted averaging of the local
    /// solves).
    gs: Arc<GatherScatter>,
    /// Inverse multiplicity of fine nodes (residual weighting).
    wt: Vec<f64>,
    /// Fine-level Dirichlet mask.
    mask: Vec<f64>,
    /// Fine-level mass × inverse multiplicity (mean projection weights).
    bw: Vec<f64>,
    /// Stiffness coefficient of the preconditioned operator.
    pub h1: f64,
    /// Mass coefficient of the preconditioned operator.
    pub h2: f64,
    /// Observability handle (disabled by default).
    tel: Telemetry,
    /// Persistent worker pool for the fine-level FDM sweep (and, in
    /// overlapped mode, the coarse∥fine pairing). `None` keeps the legacy
    /// single-threaded sweep with a per-apply `thread::scope` overlap.
    pool: Option<WorkerPool>,
    /// Optional fine element layout: when set, the final Neumann mean
    /// projection reduces canonically (rank-count-invariant bits).
    elem_layout: Option<Arc<ElemLayout>>,
}

impl SchwarzMg {
    /// Assemble the preconditioner.
    ///
    /// * `fdm` — built from the fine geometry;
    /// * `coarse` — built for the same boundary conditions as the target
    ///   operator;
    /// * `gs` — the fine-level gather-scatter;
    /// * `mult` — fine-node multiplicities;
    /// * `mask` — fine-level Dirichlet mask;
    /// * `mass` — fine diagonal mass (for the Neumann mean projection);
    /// * `(h1, h2)` — coefficients of the operator being preconditioned.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        fdm: ElementFdm,
        coarse: CoarseGrid,
        gs: Arc<GatherScatter>,
        mult: &[f64],
        mask: Vec<f64>,
        mass: &[f64],
        h1: f64,
        h2: f64,
    ) -> Self {
        let wt: Vec<f64> = mult.iter().map(|&m| 1.0 / m).collect();
        let bw: Vec<f64> = mass.iter().zip(&wt).map(|(b, w)| b * w).collect();
        Self {
            fdm,
            coarse,
            gs,
            wt,
            mask,
            bw,
            h1,
            h2,
            tel: Telemetry::disabled(),
            pool: None,
            elem_layout: None,
        }
    }

    /// Attach the fine element layout so the final Neumann mean projection
    /// reduces canonically — required for the elastic-restart contract
    /// (identical preconditioner bits on every rank count).
    pub fn set_elem_layout(&mut self, layout: Arc<ElemLayout>) {
        self.elem_layout = Some(layout);
    }

    /// Route the fine-level FDM sweep (and, in overlapped mode, the
    /// coarse∥fine pairing) through a persistent [`WorkerPool`]. The pooled
    /// sweep is bitwise identical to the serial one for every thread count,
    /// so this only changes where the work runs — never what it computes.
    pub fn set_pool(&mut self, pool: &WorkerPool) {
        self.pool = Some(pool.clone());
    }

    /// Share a telemetry handle with this preconditioner and its coarse
    /// level. Each apply then records the paper's §5.3 sub-stages as
    /// absolute spans — `schwarz/coarse` (with restrict/solve/prolong
    /// children), `schwarz/fdm`, `schwarz/gs` — identically for the serial
    /// and the overlapped execution mode.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone();
        self.coarse.set_telemetry(tel);
    }

    /// Apply `z = M⁻¹ r`.
    pub fn apply(&self, r: &[f64], z: &mut [f64], mode: SchwarzMode, comm: &dyn Communicator) {
        debug_assert_eq!(r.len(), self.wt.len());
        debug_assert_eq!(z.len(), r.len());
        // Weight the assembled residual so element-local restrictions do
        // not double-count shared nodes.
        // audit:allow(hot-alloc): both tasks read rw concurrently in overlapped mode — a shared immutable buffer, not reusable scratch under &self
        let rw: Vec<f64> = r.iter().zip(&self.wt).map(|(v, w)| v * w).collect();
        let n = z.len();
        // The two additive terms accumulate into *disjoint* buffers — that
        // disjointness is exactly what lets the coarse and fine tasks run
        // concurrently without synchronization (paper §5.3).
        // audit:allow(hot-alloc): disjoint per-apply buffer is the overlap-correctness mechanism; &self must stay immutable across both tasks
        let mut z_coarse = vec![0.0; n];
        // audit:allow(hot-alloc): disjoint per-apply buffer is the overlap-correctness mechanism; &self must stay immutable across both tasks
        let mut z_fine = vec![0.0; n];

        match (mode, &self.pool) {
            (SchwarzMode::Serial, None) => {
                {
                    let _g = self.tel.span_abs("schwarz/coarse");
                    self.coarse.correct_add(&rw, &mut z_coarse, comm);
                }
                let _g = self.tel.span_abs("schwarz/fdm");
                self.fdm.apply_add(&rw, &mut z_fine, self.h1, self.h2);
            }
            (SchwarzMode::Serial, Some(pool)) => {
                {
                    let _g = self.tel.span_abs("schwarz/coarse");
                    self.coarse.correct_add(&rw, &mut z_coarse, comm);
                }
                let _g = self.tel.span_abs("pool/fdm");
                self.fdm
                    .apply_add_with(&rw, &mut z_fine, self.h1, self.h2, pool);
            }
            (SchwarzMode::Overlapped, None) => {
                // Legacy overlap: one short-lived scoped thread per apply.
                // Kept as the no-pool fallback so the preconditioner stays
                // usable without a runtime handle (tests, tooling).
                // audit:allow(pool-discipline): explicit no-pool fallback path; run_dns always installs a pool via set_pool
                std::thread::scope(|scope| {
                    // Coarse task: restriction → fixed-iteration PCG (with
                    // its allreduces) → prolongation. All communication
                    // lives on this helper thread while the fine task
                    // computes.
                    let coarse = &self.coarse;
                    let tel = &self.tel;
                    let rw_ref = &rw;
                    let zc = &mut z_coarse;
                    scope.spawn(move || {
                        let _g = tel.span_abs("schwarz/coarse");
                        coarse.correct_add(rw_ref, zc, comm);
                    });
                    let _g = self.tel.span_abs("schwarz/fdm");
                    self.fdm.apply_add(&rw, &mut z_fine, self.h1, self.h2);
                });
            }
            (SchwarzMode::Overlapped, Some(pool)) => {
                // Pool-composed overlap: the coarse task runs on the pool's
                // persistent helper thread while the caller drives the
                // pooled FDM sweep across the pool's workers — no thread is
                // spawned per apply.
                let coarse = &self.coarse;
                let tel = &self.tel;
                let rw_ref = &rw;
                let zc = &mut z_coarse;
                let zf = &mut z_fine;
                pool.pair(
                    move || {
                        let _g = tel.span_abs("schwarz/coarse");
                        coarse.correct_add(rw_ref, zc, comm);
                    },
                    || {
                        let _g = self.tel.span_abs("pool/fdm");
                        self.fdm.apply_add_with(rw_ref, zf, self.h1, self.h2, pool);
                    },
                );
            }
        }

        // Restore continuity of the fine-level corrections by weighted
        // averaging (restricted additive Schwarz combination).
        {
            let _g = self.tel.span_abs("schwarz/gs");
            for (v, w) in z_fine.iter_mut().zip(&self.wt) {
                *v *= w;
            }
            self.gs.apply(&mut z_fine, GsOp::Add, comm);
        }

        for i in 0..n {
            z[i] = z_coarse[i] + z_fine[i];
        }
        hadamard(&self.mask, z);
        if self.coarse.neumann {
            match &self.elem_layout {
                Some(l) => ortho_project_mean_layout(z, &self.bw, l, comm),
                None => ortho_project_mean(z, &self.bw, comm),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::dirichlet_mask;
    use crate::helmholtz::{HelmholtzOp, HelmholtzScratch};
    use crate::jacobi::{assembled_diagonal, jacobi_apply};
    use crate::krylov::{fgmres, pcg};
    use crate::ops::DotProduct;
    use rbx_comm::{run_on_ranks, SingleComm};
    use rbx_mesh::generators::box_mesh;
    use rbx_mesh::partition::{part_elements, partition_rcb};
    use rbx_mesh::{BoundaryTag, GeomFactors, HexMesh};

    const ALL_WALLS: [BoundaryTag; 3] = [
        BoundaryTag::Wall,
        BoundaryTag::HotWall,
        BoundaryTag::ColdWall,
    ];

    struct Setup {
        geom: GeomFactors,
        gs: Arc<GatherScatter>,
        mask: Vec<f64>,
        mult: Vec<f64>,
        schwarz: SchwarzMg,
    }

    fn build(mesh: &HexMesh, p: usize, dirichlet: bool, comm: &dyn Communicator) -> Setup {
        let part = vec![0; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        let geom = GeomFactors::new(mesh, p);
        let gs = Arc::new(GatherScatter::build(mesh, p, &part, &my, comm));
        let mask = if dirichlet {
            dirichlet_mask(mesh, p, &my, &ALL_WALLS, &gs, comm)
        } else {
            vec![1.0; geom.total_nodes()]
        };
        let mult = gs.multiplicity(comm);
        let fdm = ElementFdm::new(&geom);
        let tags: &[BoundaryTag] = if dirichlet { &ALL_WALLS } else { &[] };
        let coarse = CoarseGrid::build(mesh, p, &part, &my, tags, comm);
        let schwarz = SchwarzMg::new(
            fdm,
            coarse,
            gs.clone(),
            &mult,
            mask.clone(),
            &geom.mass,
            1.0,
            0.0,
        );
        Setup {
            geom,
            gs,
            mask,
            mult,
            schwarz,
        }
    }

    #[test]
    fn overlapped_matches_serial_bitwise() {
        let p = 4;
        let mesh = box_mesh(3, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let s = build(&mesh, p, true, &comm);
        let n = s.geom.total_nodes();
        let mut r: Vec<f64> = (0..n).map(|i| ((i * 29 % 23) as f64) - 11.0).collect();
        s.gs.apply(&mut r, GsOp::Add, &comm);
        crate::ops::hadamard(&s.mask, &mut r);
        let mut z_serial = vec![0.0; n];
        let mut z_overlap = vec![0.0; n];
        s.schwarz
            .apply(&r, &mut z_serial, SchwarzMode::Serial, &comm);
        s.schwarz
            .apply(&r, &mut z_overlap, SchwarzMode::Overlapped, &comm);
        for i in 0..n {
            assert_eq!(
                z_serial[i].to_bits(),
                z_overlap[i].to_bits(),
                "node {i}: {} vs {}",
                z_serial[i],
                z_overlap[i]
            );
        }
    }

    #[test]
    fn pooled_apply_matches_serial_bitwise_across_thread_counts() {
        let p = 4;
        let mesh = box_mesh(3, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let s = build(&mesh, p, true, &comm);
        let n = s.geom.total_nodes();
        let mut r: Vec<f64> = (0..n).map(|i| ((i * 31 % 19) as f64) - 9.0).collect();
        s.gs.apply(&mut r, GsOp::Add, &comm);
        crate::ops::hadamard(&s.mask, &mut r);
        let mut z_ref = vec![0.0; n];
        s.schwarz.apply(&r, &mut z_ref, SchwarzMode::Serial, &comm);
        for threads in [1usize, 4, 7] {
            let mut s2 = build(&mesh, p, true, &comm);
            let pool = WorkerPool::new(threads);
            s2.schwarz.set_pool(&pool);
            for mode in [SchwarzMode::Serial, SchwarzMode::Overlapped] {
                let mut z = vec![0.0; n];
                s2.schwarz.apply(&r, &mut z, mode, &comm);
                for i in 0..n {
                    assert_eq!(
                        z_ref[i].to_bits(),
                        z[i].to_bits(),
                        "threads={threads} mode={mode:?} node {i}: {} vs {}",
                        z_ref[i],
                        z[i]
                    );
                }
            }
        }
    }

    #[test]
    fn preconditioner_is_positive() {
        let p = 4;
        let mesh = box_mesh(2, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let s = build(&mesh, p, true, &comm);
        let dp = DotProduct::new(&s.mult);
        let n = s.geom.total_nodes();
        let mut r: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        s.gs.apply(&mut r, GsOp::Add, &comm);
        crate::ops::hadamard(&s.mask, &mut r);
        let mut z = vec![0.0; n];
        s.schwarz.apply(&r, &mut z, SchwarzMode::Serial, &comm);
        let zr = dp.dot(&z, &r, &comm);
        assert!(zr > 0.0, "⟨M⁻¹r, r⟩ = {zr}");
    }

    #[test]
    fn schwarz_beats_jacobi_on_poisson() {
        // Dirichlet Poisson; compare FGMRES+Schwarz against PCG+Jacobi in
        // iteration count at matched tolerance.
        let p = 5;
        let mesh = box_mesh(3, 3, 3, [0., 1.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let s = build(&mesh, p, true, &comm);
        let op = HelmholtzOp {
            geom: &s.geom,
            gs: &s.gs,
            mask: &s.mask,
            h1: 1.0,
            h2: 0.0,
        };
        let dp = DotProduct::new(&s.mult);
        let diag = assembled_diagonal(&s.geom, &s.gs, 1.0, 0.0, &comm);
        let n = s.geom.total_nodes();

        let mut x_true: Vec<f64> = (0..n)
            .map(|i| {
                let x = s.geom.coords[0][i];
                let y = s.geom.coords[1][i];
                let z = s.geom.coords[2][i];
                (std::f64::consts::PI * x).sin()
                    * (std::f64::consts::PI * y).sin()
                    * (std::f64::consts::PI * z).sin()
            })
            .collect();
        crate::ops::hadamard(&s.mask, &mut x_true);
        let mut b = vec![0.0; n];
        let mut scratch = HelmholtzScratch::default();
        op.apply(&x_true, &mut b, &mut scratch, &comm);

        let mut x1 = vec![0.0; n];
        let mut scratch1 = HelmholtzScratch::default();
        let jacobi_stats = pcg(
            |pv, ap| op.apply(pv, ap, &mut scratch1, &comm),
            |r, z| jacobi_apply(&diag, &s.mask, r, z),
            |a, c| dp.dot(a, c, &comm),
            &b,
            &mut x1,
            1e-9,
            0.0,
            500,
        );

        let mut x2 = vec![0.0; n];
        let mut scratch2 = HelmholtzScratch::default();
        let schwarz_stats = fgmres(
            |pv, ap| op.apply(pv, ap, &mut scratch2, &comm),
            |r, z| s.schwarz.apply(r, z, SchwarzMode::Serial, &comm),
            |a, c| dp.dot(a, c, &comm),
            &b,
            &mut x2,
            1e-9,
            0.0,
            500,
            30,
        );

        assert!(
            jacobi_stats.converged && schwarz_stats.converged,
            "jacobi {jacobi_stats:?} schwarz {schwarz_stats:?}"
        );
        assert!(
            schwarz_stats.iterations < jacobi_stats.iterations,
            "schwarz {} !< jacobi {}",
            schwarz_stats.iterations,
            jacobi_stats.iterations
        );
        for (a, t) in x2.iter().zip(&x_true) {
            assert!((a - t).abs() < 1e-6);
        }
    }

    #[test]
    fn neumann_poisson_solve_with_schwarz() {
        // Pure-Neumann (pressure-like) Poisson: manufactured zero-mean
        // solution, FGMRES + overlapped Schwarz.
        let p = 4;
        let mesh = box_mesh(2, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let s = build(&mesh, p, false, &comm);
        let op = HelmholtzOp {
            geom: &s.geom,
            gs: &s.gs,
            mask: &s.mask,
            h1: 1.0,
            h2: 0.0,
        };
        let dp = DotProduct::new(&s.mult);
        let n = s.geom.total_nodes();
        let bw: Vec<f64> = s
            .geom
            .mass
            .iter()
            .zip(dp.weights())
            .map(|(m, w)| m * w)
            .collect();
        let mut x_true: Vec<f64> = (0..n)
            .map(|i| {
                let x = s.geom.coords[0][i];
                (std::f64::consts::PI * x).cos()
            })
            .collect();
        crate::ops::ortho_project_mean(&mut x_true, &bw, &comm);
        let mut b = vec![0.0; n];
        let mut scratch = HelmholtzScratch::default();
        op.apply(&x_true, &mut b, &mut scratch, &comm);

        let mut x = vec![0.0; n];
        let mut scratch2 = HelmholtzScratch::default();
        let stats = fgmres(
            |pv, ap| op.apply(pv, ap, &mut scratch2, &comm),
            |r, z| s.schwarz.apply(r, z, SchwarzMode::Overlapped, &comm),
            |a, c| dp.dot(a, c, &comm),
            &b,
            &mut x,
            1e-9,
            0.0,
            300,
            30,
        );
        assert!(stats.converged, "{stats:?}");
        crate::ops::ortho_project_mean(&mut x, &bw, &comm);
        for (a, t) in x.iter().zip(&x_true) {
            assert!((a - t).abs() < 1e-5, "{a} vs {t}");
        }
    }

    #[test]
    fn multirank_overlapped_matches_single_rank_serial() {
        let p = 3;
        let mesh = box_mesh(4, 2, 1, [0., 4.], [0., 2.], [0., 1.], false, false);
        let n_per = (p + 1) * (p + 1) * (p + 1);

        // Reference on one rank.
        let comm1 = SingleComm::new();
        let s1 = build(&mesh, p, true, &comm1);
        let n = s1.geom.total_nodes();
        let mut r_ref: Vec<f64> = (0..n).map(|i| ((i * 13 % 29) as f64) - 14.0).collect();
        s1.gs.apply(&mut r_ref, GsOp::Add, &comm1);
        crate::ops::hadamard(&s1.mask, &mut r_ref);
        let mut z_ref = vec![0.0; n];
        s1.schwarz
            .apply(&r_ref, &mut z_ref, SchwarzMode::Serial, &comm1);

        // 2-rank overlapped.
        let part = partition_rcb(&mesh, 2);
        let lists = part_elements(&part, 2);
        let (mesh_ref, part_ref, lists_ref, r_global) = (&mesh, &part, &lists, &r_ref);
        let results = run_on_ranks(2, move |comm| {
            let my = &lists_ref[comm.rank()];
            let geom = GeomFactors::new(&mesh_ref.extract(my), p);
            let gs = Arc::new(GatherScatter::build(mesh_ref, p, part_ref, my, comm));
            let mask = dirichlet_mask(mesh_ref, p, my, &ALL_WALLS, &gs, comm);
            let mult = gs.multiplicity(comm);
            let fdm = ElementFdm::new(&geom);
            let coarse = CoarseGrid::build(mesh_ref, p, part_ref, my, &ALL_WALLS, comm);
            let schwarz =
                SchwarzMg::new(fdm, coarse, gs.clone(), &mult, mask, &geom.mass, 1.0, 0.0);
            let r: Vec<f64> = my
                .iter()
                .flat_map(|&ge| r_global[ge * n_per..(ge + 1) * n_per].to_vec())
                .collect();
            let mut z = vec![0.0; r.len()];
            schwarz.apply(&r, &mut z, SchwarzMode::Overlapped, comm);
            (my.clone(), z)
        });
        for (my, z) in results {
            for (le, &ge) in my.iter().enumerate() {
                for nd in 0..n_per {
                    let a = z[le * n_per + nd];
                    let b = z_ref[ge * n_per + nd];
                    assert!((a - b).abs() < 1e-10, "elem {ge} node {nd}: {a} vs {b}");
                }
            }
        }
    }
}
