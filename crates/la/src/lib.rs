// Index-style loops mirror the tensor/lattice math throughout; the
// iterator forms clippy suggests would obscure the stencil structure.
#![allow(clippy::needless_range_loop)]

//! # rbx-la — matrix-free operators, Krylov solvers, preconditioners
//!
//! The discrete heart of the solver stack:
//!
//! * [`ops`] — vector kernels and the rank-aware inner product (shared
//!   nodes weighted by inverse multiplicity, reduced over the
//!   communicator);
//! * [`helmholtz`] — the matrix-free spectral-element Helmholtz/Laplace
//!   operator `H = h₁·A + h₂·B` evaluated per element as `Dᵀ(G∘D)` plus
//!   diagonal mass, followed by gather-scatter assembly and boundary
//!   masking, exactly the unassembled-operator structure the paper's §5.1
//!   describes;
//! * [`bc`] — Dirichlet masks derived from mesh boundary tags;
//! * [`krylov`] — preconditioned conjugate gradients and flexible
//!   GMRES(m) (pressure uses GMRES, velocity/temperature use CG, paper §6);
//! * [`jacobi`] — the assembled-diagonal (block-Jacobi in Nek parlance)
//!   preconditioner;
//! * [`fdm`] — element-local fast diagonalization solves;
//! * [`coarse`] — the linear-element coarse-grid problem solved with a
//!   fixed-iteration block-Jacobi PCG (paper §5.3, ≈10 iterations);
//! * [`schwarz`] — the two-level additive Schwarz preconditioner
//!   `M⁻¹ = R₀ᵀA₀⁻¹R₀ + Σ RᵏᵀÃᵏ⁻¹Rᵏ` (paper Eq. 3), in both the serial
//!   and the **task-overlapped** formulation that runs the coarse solve
//!   concurrently with the fine-level local solves.

pub mod bc;
pub mod coarse;
pub mod error;
pub mod fdm;
pub mod helmholtz;
pub mod instrument;
pub mod jacobi;
pub mod krylov;
pub mod ops;
pub mod projection;
pub mod schwarz;

pub use bc::dirichlet_mask;
pub use coarse::CoarseGrid;
pub use error::{SolveError, SolveHealth};
pub use fdm::ElementFdm;
pub use helmholtz::HelmholtzOp;
pub use instrument::record_solve;
pub use jacobi::assembled_diagonal;
pub use krylov::{fgmres, pcg, ResidualHistory, SolveStats};
pub use ops::{DotProduct, ElemLayout};
pub use projection::SolutionProjection;
pub use schwarz::{SchwarzMg, SchwarzMode};
