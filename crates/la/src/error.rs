//! Typed Krylov-solve failures and the per-solve health verdict.
//!
//! A DNS campaign cannot afford solvers that "return garbage politely":
//! a NaN that enters the pressure field propagates to every subsequent
//! step and poisons weeks of trajectory. Every [`crate::krylov`] solve
//! therefore classifies how it ended — clean convergence, a recoverable
//! shortfall (iteration cap, stagnation), or a fatal breakdown (non-finite
//! or exploding residuals) — and the simulation layer turns that into a
//! step-level verdict that drives checkpoint rollback.

use std::fmt;

/// Why a Krylov solve did not converge cleanly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolveError {
    /// The residual norm became NaN or infinite — the iterate is garbage.
    NonFiniteResidual {
        /// Iteration at which the non-finite value was detected (0 = the
        /// initial residual was already non-finite).
        iteration: usize,
    },
    /// The residual grew far beyond the initial residual — the iteration
    /// is running away rather than converging.
    Diverged {
        /// Iteration at which divergence was declared.
        iteration: usize,
        /// Residual norm at that iteration.
        residual: f64,
        /// Initial residual norm.
        initial: f64,
    },
    /// No meaningful residual reduction over a long window — the solver is
    /// stuck (typically a lost preconditioner or an inconsistent system).
    Stagnated {
        /// Iteration at which stagnation was declared.
        iteration: usize,
        /// Residual norm at that iteration.
        residual: f64,
    },
    /// CG observed `⟨p, Ap⟩ ≤ 0`: the operator is not positive definite
    /// (or round-off has destroyed the search direction).
    IndefiniteOperator {
        /// Iteration at which the breakdown happened.
        iteration: usize,
        /// The offending curvature value.
        pap: f64,
    },
    /// The iteration budget ran out before the tolerance was met; the
    /// iterate is finite and partially converged.
    IterationLimit {
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
        /// Tolerance that was not met.
        target: f64,
    },
}

impl SolveError {
    /// True when the failure means the iterate cannot be trusted at all
    /// (non-finite or exploding), as opposed to merely not fully converged.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            SolveError::NonFiniteResidual { .. } | SolveError::Diverged { .. }
        )
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NonFiniteResidual { iteration } => {
                write!(f, "non-finite residual at iteration {iteration}")
            }
            SolveError::Diverged { iteration, residual, initial } => write!(
                f,
                "diverged at iteration {iteration}: residual {residual:.3e} from initial {initial:.3e}"
            ),
            SolveError::Stagnated { iteration, residual } => {
                write!(f, "stagnated at iteration {iteration} with residual {residual:.3e}")
            }
            SolveError::IndefiniteOperator { iteration, pap } => {
                write!(f, "indefinite operator at iteration {iteration} (pAp = {pap:.3e})")
            }
            SolveError::IterationLimit { iterations, residual, target } => write!(
                f,
                "iteration limit {iterations} reached: residual {residual:.3e} > target {target:.3e}"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// Health verdict attached to every [`crate::krylov::SolveStats`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SolveHealth {
    /// Converged within tolerance, all residuals finite.
    #[default]
    Healthy,
    /// The solve failed; see the error for how.
    Failed(SolveError),
}

impl SolveHealth {
    /// True when the solve converged cleanly.
    pub fn is_healthy(&self) -> bool {
        matches!(self, SolveHealth::Healthy)
    }

    /// The failure, if any.
    pub fn error(&self) -> Option<SolveError> {
        match self {
            SolveHealth::Healthy => None,
            SolveHealth::Failed(e) => Some(*e),
        }
    }

    /// True when the iterate is unusable (see [`SolveError::is_fatal`]).
    pub fn is_fatal(&self) -> bool {
        matches!(self, SolveHealth::Failed(e) if e.is_fatal())
    }
}

impl fmt::Display for SolveHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveHealth::Healthy => write!(f, "healthy"),
            SolveHealth::Failed(e) => write!(f, "failed: {e}"),
        }
    }
}
