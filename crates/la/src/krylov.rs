//! Krylov solvers: preconditioned CG and flexible GMRES(m).
//!
//! The paper's solver configuration (§6): velocity and temperature use a
//! block-Jacobi-preconditioned conjugate gradient; pressure uses GMRES with
//! the hybrid Schwarz-multigrid preconditioner. Operators, preconditioners
//! and inner products are passed as closures so any combination of
//! [`crate::HelmholtzOp`], masks and communicators can be driven.

use crate::error::{SolveError, SolveHealth};

/// Residual growth beyond this factor of the initial residual is declared
/// divergence — the iterate is then treated as unusable.
const GROWTH_LIMIT: f64 = 1e8;
/// Iterations (CG) or restart cycles (GMRES) without meaningful progress
/// before declaring stagnation.
const STALL_ITERS: usize = 100;
const STALL_CYCLES: usize = 3;
/// "Meaningful progress": the best residual must improve by at least this
/// relative amount within the stall window.
const STALL_RTOL: f64 = 1e-3;

/// Bounded ring of the most recent residual norms of a solve.
///
/// Fixed-capacity and `Copy` so [`SolveStats`] stays a plain value type:
/// a solve taking thousands of iterations still costs exactly
/// [`ResidualHistory::CAP`] floats. Oldest entries are evicted first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualHistory {
    buf: [f64; Self::CAP],
    head: u8,
    len: u8,
}

impl Default for ResidualHistory {
    fn default() -> Self {
        Self::new()
    }
}

impl ResidualHistory {
    /// Entries retained (the tail of the residual curve).
    pub const CAP: usize = 16;

    pub const fn new() -> Self {
        Self {
            buf: [0.0; Self::CAP],
            head: 0,
            len: 0,
        }
    }

    /// Append a residual, evicting the oldest once full.
    pub fn push(&mut self, r: f64) {
        self.buf[self.head as usize] = r;
        self.head = (self.head + 1) % Self::CAP as u8;
        if (self.len as usize) < Self::CAP {
            self.len += 1;
        }
    }

    /// Number of retained entries (`≤ CAP`).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Retained residuals, oldest first.
    // audit:allow(hot-alloc): owned snapshot is the fn's contract; called at telemetry cadence, not per iteration
    pub fn to_vec(&self) -> Vec<f64> {
        let len = self.len as usize;
        let head = self.head as usize;
        // `head` points at the slot the *next* push writes; the oldest
        // retained entry sits `len` slots behind it.
        (0..len)
            .map(|i| self.buf[(head + Self::CAP - len + i) % Self::CAP])
            .collect()
    }
}

/// Outcome of a Krylov solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Initial residual norm.
    pub initial_residual: f64,
    /// Final residual norm.
    pub final_residual: f64,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
    /// How the solve ended: clean, recoverable shortfall, or fatal
    /// breakdown (non-finite / exploding residuals).
    pub health: SolveHealth,
    /// Tail of the residual curve (initial residual first on short
    /// solves), bounded at [`ResidualHistory::CAP`] entries.
    pub residuals: ResidualHistory,
}

impl SolveStats {
    fn converged_at(
        iterations: usize,
        initial: f64,
        residual: f64,
        residuals: ResidualHistory,
    ) -> Self {
        Self {
            iterations,
            initial_residual: initial,
            final_residual: residual,
            converged: true,
            health: SolveHealth::Healthy,
            residuals,
        }
    }

    fn failed(
        iterations: usize,
        initial: f64,
        residual: f64,
        error: SolveError,
        residuals: ResidualHistory,
    ) -> Self {
        Self {
            iterations,
            initial_residual: initial,
            final_residual: residual,
            converged: false,
            health: SolveHealth::Failed(error),
            residuals,
        }
    }
}

/// Preconditioned conjugate gradients for an SPD operator.
///
/// Solves `A x = b` starting from the provided `x`. `op(p, ap)` computes
/// `ap = A p`; `precond(r, z)` computes `z = M⁻¹ r` (copy for identity);
/// `dot` is the globally consistent inner product. Convergence is declared
/// when `‖r‖ ≤ tol_abs` or `‖r‖ ≤ tol_rel·‖r₀‖`.
#[allow(clippy::too_many_arguments)]
pub fn pcg(
    mut op: impl FnMut(&[f64], &mut [f64]),
    mut precond: impl FnMut(&[f64], &mut [f64]),
    dot: impl Fn(&[f64], &[f64]) -> f64,
    b: &[f64],
    x: &mut [f64],
    tol_abs: f64,
    tol_rel: f64,
    max_iter: usize,
) -> SolveStats {
    let n = b.len();
    debug_assert_eq!(x.len(), n);
    // CG workspace: four n-vectors allocated once per solve and reused by
    // every iteration, so the cost is amortized over the whole solve.
    // audit:allow(hot-alloc): once-per-solve workspace, amortized over all iterations
    let mut r = vec![0.0; n];
    // audit:allow(hot-alloc): once-per-solve workspace, amortized over all iterations
    let mut z = vec![0.0; n];
    // audit:allow(hot-alloc): once-per-solve workspace, amortized over all iterations
    let mut p = vec![0.0; n];
    // audit:allow(hot-alloc): once-per-solve workspace, amortized over all iterations
    let mut ap = vec![0.0; n];

    // r = b - A x
    op(x, &mut ap);
    for i in 0..n {
        r[i] = b[i] - ap[i];
    }
    let r0 = dot(&r, &r).sqrt();
    let mut hist = ResidualHistory::new();
    hist.push(r0);
    if !r0.is_finite() {
        // NaN/Inf already in the rhs or the initial guess: report instead
        // of iterating on garbage (every comparison against NaN is false,
        // so the loop below would otherwise burn the full budget).
        return SolveStats::failed(
            0,
            r0,
            r0,
            SolveError::NonFiniteResidual { iteration: 0 },
            hist,
        );
    }
    let target = tol_abs.max(tol_rel * r0);
    if r0 <= target {
        return SolveStats::converged_at(0, r0, r0, hist);
    }

    precond(&r, &mut z);
    p.copy_from_slice(&z);
    let mut rz = dot(&r, &z);
    let mut rnorm = r0;
    let mut iterations = 0;
    let mut failure: Option<SolveError> = None;
    let mut best = r0;
    let mut since_best = 0usize;

    for it in 1..=max_iter {
        iterations = it;
        op(&p, &mut ap);
        let pap = dot(&p, &ap);
        if !pap.is_finite() {
            failure = Some(SolveError::NonFiniteResidual { iteration: it });
            break;
        }
        if pap <= 0.0 {
            // Loss of positive-definiteness (round-off or bad operator);
            // bail with the current iterate.
            failure = Some(SolveError::IndefiniteOperator { iteration: it, pap });
            break;
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        rnorm = dot(&r, &r).sqrt();
        hist.push(rnorm);
        if !rnorm.is_finite() {
            failure = Some(SolveError::NonFiniteResidual { iteration: it });
            break;
        }
        if rnorm <= target {
            return SolveStats::converged_at(iterations, r0, rnorm, hist);
        }
        if rnorm > GROWTH_LIMIT * r0 {
            failure = Some(SolveError::Diverged {
                iteration: it,
                residual: rnorm,
                initial: r0,
            });
            break;
        }
        if rnorm < best * (1.0 - STALL_RTOL) {
            best = rnorm;
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= STALL_ITERS {
                failure = Some(SolveError::Stagnated {
                    iteration: it,
                    residual: rnorm,
                });
                break;
            }
        }
        precond(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    if rnorm.is_finite() && rnorm <= target {
        // A breakdown at an already-converged point still counts as a
        // clean solve (pAp round-off near the solution is routine).
        return SolveStats::converged_at(iterations, r0, rnorm, hist);
    }
    let error = failure.unwrap_or(SolveError::IterationLimit {
        iterations,
        residual: rnorm,
        target,
    });
    SolveStats::failed(iterations, r0, rnorm, error, hist)
}

/// Flexible GMRES with restart length `m` and right preconditioning.
///
/// Flexibility (storing the preconditioned directions) permits a
/// preconditioner that is itself an inner iteration — exactly the hybrid
/// Schwarz preconditioner whose coarse level runs a fixed-iteration PCG.
#[allow(clippy::too_many_arguments)]
pub fn fgmres(
    mut op: impl FnMut(&[f64], &mut [f64]),
    mut precond: impl FnMut(&[f64], &mut [f64]),
    dot: impl Fn(&[f64], &[f64]) -> f64,
    b: &[f64],
    x: &mut [f64],
    tol_abs: f64,
    tol_rel: f64,
    max_iter: usize,
    restart: usize,
) -> SolveStats {
    let n = b.len();
    debug_assert_eq!(x.len(), n);
    let m = restart.max(1);

    // audit:allow(hot-alloc): once-per-solve workspace, amortized over all iterations
    let mut r = vec![0.0; n];
    // audit:allow(hot-alloc): once-per-solve workspace, amortized over all iterations
    let mut w = vec![0.0; n];
    op(x, &mut w);
    for i in 0..n {
        r[i] = b[i] - w[i];
    }
    let r0 = dot(&r, &r).sqrt();
    let mut hist = ResidualHistory::new();
    hist.push(r0);
    if !r0.is_finite() {
        return SolveStats::failed(
            0,
            r0,
            r0,
            SolveError::NonFiniteResidual { iteration: 0 },
            hist,
        );
    }
    let target = tol_abs.max(tol_rel * r0);
    if r0 <= target {
        return SolveStats::converged_at(0, r0, r0, hist);
    }

    let mut total_iters = 0;
    let mut beta = r0;
    let mut stalled_cycles = 0usize;

    loop {
        // Arnoldi basis V and preconditioned directions Z. Retaining both
        // across the cycle is what makes GMRES *flexible* (variable
        // preconditioners): this storage is algorithmically required, not
        // reusable scratch, and is amortized over the m iterations of the
        // cycle.
        // audit:allow(hot-alloc): retained Krylov basis — required by the algorithm, amortized over the restart cycle
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        // audit:allow(hot-alloc): retained preconditioned directions — required for flexibility, amortized over the cycle
        let mut zdirs: Vec<Vec<f64>> = Vec::with_capacity(m);
        // audit:allow(hot-alloc): m×m Hessenberg, once per restart cycle
        let mut h = vec![vec![0.0f64; m]; m + 1]; // h[i][j]
                                                  // audit:allow(hot-alloc): m-sized Givens coefficients, once per restart cycle
        let mut cs = vec![0.0f64; m];
        // audit:allow(hot-alloc): m-sized Givens coefficients, once per restart cycle
        let mut sn = vec![0.0f64; m];
        // audit:allow(hot-alloc): (m+1)-sized rhs of the least-squares system, once per restart cycle
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;

        // audit:allow(hot-alloc): v₀ joins the retained basis — storage the algorithm keeps, not scratch
        let mut v0 = r.clone();
        for val in v0.iter_mut() {
            *val /= beta;
        }
        v.push(v0);

        let mut k_used = 0;
        let mut res = beta;
        for j in 0..m {
            if total_iters >= max_iter {
                break;
            }
            total_iters += 1;
            k_used = j + 1;

            // audit:allow(hot-alloc): each z is pushed into zdirs and read back at the cycle-end update — retained, not scratch
            let mut z = vec![0.0; n];
            precond(&v[j], &mut z);
            op(&z, &mut w);
            zdirs.push(z);

            // Modified Gram-Schmidt.
            for (i, vi) in v.iter().enumerate() {
                let hij = dot(&w, vi);
                h[i][j] = hij;
                for (wv, vv) in w.iter_mut().zip(vi) {
                    *wv -= hij * vv;
                }
            }
            let hnext = dot(&w, &w).sqrt();
            h[j + 1][j] = hnext;
            if hnext > 1e-300 {
                // audit:allow(hot-alloc): the new basis vector joins the retained Arnoldi basis
                let mut vnext = w.clone();
                for val in vnext.iter_mut() {
                    *val /= hnext;
                }
                v.push(vnext);
            } else {
                // Happy breakdown: exact solution in the current space.
                // audit:allow(hot-alloc): happy-breakdown placeholder — reached at most once per solve
                v.push(vec![0.0; n]);
            }

            // Apply accumulated Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = t;
            }
            let denom = (h[j][j] * h[j][j] + h[j + 1][j] * h[j + 1][j]).sqrt();
            if denom > 0.0 {
                cs[j] = h[j][j] / denom;
                sn[j] = h[j + 1][j] / denom;
            } else {
                cs[j] = 1.0;
                sn[j] = 0.0;
            }
            h[j][j] = cs[j] * h[j][j] + sn[j] * h[j + 1][j];
            h[j + 1][j] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            res = g[j + 1].abs();
            // Givens estimate: free per-iteration residual curve.
            hist.push(res);
            if res <= target || !res.is_finite() {
                // Converged — or NaN/Inf contaminated the Hessenberg
                // update, in which case finishing the cycle is pointless;
                // the true-residual check below classifies the failure.
                break;
            }
        }

        // Solve the small triangular system and update x with Z directions.
        if k_used > 0 {
            // audit:allow(hot-alloc): k-sized triangular-solve vector, once per restart cycle
            let mut y = vec![0.0f64; k_used];
            for i in (0..k_used).rev() {
                let mut acc = g[i];
                for j in i + 1..k_used {
                    acc -= h[i][j] * y[j];
                }
                y[i] = acc / h[i][i];
            }
            for (j, yj) in y.iter().enumerate() {
                for i in 0..n {
                    x[i] += yj * zdirs[j][i];
                }
            }
        }

        // True residual for the restart / convergence decision.
        let prev_beta = beta;
        op(x, &mut w);
        for i in 0..n {
            r[i] = b[i] - w[i];
        }
        beta = dot(&r, &r).sqrt();
        // Record the *true* residual at cycle boundaries (the Givens
        // estimate drifts from it in finite precision).
        hist.push(beta);
        if !beta.is_finite() {
            return SolveStats::failed(
                total_iters,
                r0,
                beta,
                SolveError::NonFiniteResidual {
                    iteration: total_iters,
                },
                hist,
            );
        }
        if beta <= target {
            return SolveStats::converged_at(total_iters, r0, beta, hist);
        }
        if beta > GROWTH_LIMIT * r0 {
            return SolveStats::failed(
                total_iters,
                r0,
                beta,
                SolveError::Diverged {
                    iteration: total_iters,
                    residual: beta,
                    initial: r0,
                },
                hist,
            );
        }
        if total_iters >= max_iter {
            return SolveStats::failed(
                total_iters,
                r0,
                beta,
                SolveError::IterationLimit {
                    iterations: total_iters,
                    residual: beta,
                    target,
                },
                hist,
            );
        }
        // Restart-to-restart progress check: GMRES(m) that stops reducing
        // the true residual across cycles will never finish.
        if beta < prev_beta * (1.0 - STALL_RTOL) {
            stalled_cycles = 0;
        } else {
            stalled_cycles += 1;
            if stalled_cycles >= STALL_CYCLES {
                return SolveStats::failed(
                    total_iters,
                    r0,
                    beta,
                    SolveError::Stagnated {
                        iteration: total_iters,
                        residual: beta,
                    },
                    hist,
                );
            }
        }
        // `res` (the Givens-estimated residual) guided the inner loop; the
        // restart decision above uses the true residual.
        let _ = res;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense SPD test operator: tridiagonal (−1, d, −1).
    fn tridiag_apply(d: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        for i in 0..n {
            let mut acc = d * x[i];
            if i > 0 {
                acc -= x[i - 1];
            }
            if i + 1 < n {
                acc -= x[i + 1];
            }
            y[i] = acc;
        }
    }

    fn plain_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn cg_solves_spd_system() {
        let n = 50;
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut b = vec![0.0; n];
        tridiag_apply(4.0, &x_true, &mut b);
        let mut x = vec![0.0; n];
        let stats = pcg(
            |p, ap| tridiag_apply(4.0, p, ap),
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-12,
            0.0,
            200,
        );
        assert!(stats.converged, "{stats:?}");
        for (a, t) in x.iter().zip(&x_true) {
            assert!((a - t).abs() < 1e-9);
        }
    }

    #[test]
    fn cg_zero_rhs_returns_immediately() {
        let n = 10;
        let b = vec![0.0; n];
        let mut x = vec![0.0; n];
        let stats = pcg(
            |p, ap| tridiag_apply(3.0, p, ap),
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-12,
            0.0,
            10,
        );
        assert_eq!(stats.iterations, 0);
        assert!(stats.converged);
    }

    #[test]
    fn jacobi_preconditioner_reduces_cg_iterations() {
        // Strongly varying diagonal: D_i = 1 + i².
        let n = 80;
        let diag: Vec<f64> = (0..n).map(|i| 1.0 + (i * i) as f64).collect();
        let apply = |x: &[f64], y: &mut [f64]| {
            for i in 0..n {
                let mut acc = diag[i] * x[i];
                if i > 0 {
                    acc -= 0.3 * x[i - 1];
                }
                if i + 1 < n {
                    acc -= 0.3 * x[i + 1];
                }
                y[i] = acc;
            }
        };
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();

        let mut x_plain = vec![0.0; n];
        let plain = pcg(
            apply,
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x_plain,
            1e-10,
            0.0,
            500,
        );
        let mut x_prec = vec![0.0; n];
        let prec = pcg(
            apply,
            |r, z| {
                for i in 0..n {
                    z[i] = r[i] / diag[i];
                }
            },
            plain_dot,
            &b,
            &mut x_prec,
            1e-10,
            0.0,
            500,
        );
        assert!(plain.converged && prec.converged);
        assert!(
            prec.iterations < plain.iterations,
            "jacobi {} !< plain {}",
            prec.iterations,
            plain.iterations
        );
    }

    #[test]
    fn gmres_solves_nonsymmetric_system() {
        // Upwind-ish nonsymmetric operator.
        let n = 40;
        let apply = |x: &[f64], y: &mut [f64]| {
            for i in 0..n {
                let mut acc = 3.0 * x[i];
                if i > 0 {
                    acc -= 2.0 * x[i - 1];
                }
                if i + 1 < n {
                    acc -= 0.5 * x[i + 1];
                }
                y[i] = acc;
            }
        };
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut b = vec![0.0; n];
        apply(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let stats = fgmres(
            apply,
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-11,
            0.0,
            300,
            20,
        );
        assert!(stats.converged, "{stats:?}");
        for (a, t) in x.iter().zip(&x_true) {
            assert!((a - t).abs() < 1e-8);
        }
    }

    #[test]
    fn gmres_restarts_still_converge() {
        let n = 60;
        let apply = |x: &[f64], y: &mut [f64]| tridiag_apply(2.5, x, y);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = fgmres(
            apply,
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-10,
            0.0,
            2000,
            5, // tiny restart forces many cycles
        );
        assert!(stats.converged, "{stats:?}");
    }

    #[test]
    fn gmres_flexible_with_inner_iteration_preconditioner() {
        // Preconditioner = 3 CG iterations on the same operator (variable
        // preconditioner: classic FGMRES territory).
        let n = 30;
        let apply = |x: &[f64], y: &mut [f64]| tridiag_apply(4.0, x, y);
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut x = vec![0.0; n];
        let stats = fgmres(
            apply,
            |r, z| {
                z.fill(0.0);
                let _ = pcg(
                    |p, ap| tridiag_apply(4.0, p, ap),
                    |rr, zz| zz.copy_from_slice(rr),
                    plain_dot,
                    r,
                    z,
                    0.0,
                    0.0,
                    3,
                );
            },
            plain_dot,
            &b,
            &mut x,
            1e-10,
            0.0,
            100,
            30,
        );
        assert!(stats.converged, "{stats:?}");
        assert!(
            stats.iterations < 15,
            "too many outer iterations: {stats:?}"
        );
    }

    #[test]
    fn cg_flags_nan_rhs_without_iterating() {
        let n = 16;
        let mut b = vec![1.0; n];
        b[5] = f64::NAN;
        let mut x = vec![0.0; n];
        let stats = pcg(
            |p, ap| tridiag_apply(4.0, p, ap),
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-9,
            0.0,
            100,
        );
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 0, "must not burn iterations on NaN");
        assert!(stats.health.is_fatal(), "{:?}", stats.health);
        assert!(matches!(
            stats.health.error(),
            Some(SolveError::NonFiniteResidual { iteration: 0 })
        ));
    }

    #[test]
    fn cg_flags_nan_from_operator() {
        // Operator goes non-finite mid-solve (e.g. corrupted geometry).
        let n = 16;
        let mut calls = 0usize;
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = pcg(
            |p, ap| {
                tridiag_apply(4.0, p, ap);
                calls += 1;
                if calls > 2 {
                    ap[0] = f64::NAN;
                }
            },
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-12,
            0.0,
            100,
        );
        assert!(!stats.converged);
        assert!(stats.health.is_fatal(), "{:?}", stats.health);
    }

    #[test]
    fn cg_flags_indefinite_operator() {
        // Negated SPD operator: first curvature ⟨p, Ap⟩ is negative.
        let n = 12;
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = pcg(
            |p, ap| {
                tridiag_apply(4.0, p, ap);
                for v in ap.iter_mut() {
                    *v = -*v;
                }
            },
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-12,
            0.0,
            100,
        );
        assert!(!stats.converged);
        assert!(matches!(
            stats.health.error(),
            Some(SolveError::IndefiniteOperator { .. })
        ));
        // Indefiniteness is a breakdown, not a runaway: not fatal.
        assert!(!stats.health.is_fatal());
    }

    #[test]
    fn cg_reports_iteration_limit() {
        let n = 200;
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        // Near-singular tridiagonal (d = 2): needs ~n iterations; cap at 5.
        let stats = pcg(
            |p, ap| tridiag_apply(2.0, p, ap),
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-14,
            0.0,
            5,
        );
        assert!(!stats.converged);
        assert!(matches!(
            stats.health.error(),
            Some(SolveError::IterationLimit { iterations: 5, .. })
        ));
        assert!(!stats.health.is_fatal());
    }

    #[test]
    fn gmres_flags_nan_rhs() {
        let n = 16;
        let mut b = vec![1.0; n];
        b[0] = f64::INFINITY;
        let mut x = vec![0.0; n];
        let stats = fgmres(
            |p, ap| tridiag_apply(3.0, p, ap),
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-9,
            0.0,
            100,
            10,
        );
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 0);
        assert!(stats.health.is_fatal(), "{:?}", stats.health);
    }

    #[test]
    fn gmres_flags_nan_from_preconditioner() {
        let n = 16;
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = fgmres(
            |p, ap| tridiag_apply(3.0, p, ap),
            |r, z| {
                z.copy_from_slice(r);
                z[3] = f64::NAN;
            },
            plain_dot,
            &b,
            &mut x,
            1e-9,
            0.0,
            100,
            10,
        );
        assert!(!stats.converged);
        assert!(stats.health.is_fatal(), "{:?}", stats.health);
    }

    #[test]
    fn healthy_solve_reports_healthy() {
        let n = 20;
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = pcg(
            |p, ap| tridiag_apply(4.0, p, ap),
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-9,
            0.0,
            100,
        );
        assert!(stats.converged);
        assert!(stats.health.is_healthy());
        assert_eq!(stats.health.error(), None);
    }

    #[test]
    fn residual_history_ring_is_bounded() {
        let mut h = ResidualHistory::new();
        assert!(h.is_empty());
        for i in 0..40 {
            h.push(i as f64);
        }
        // Capacity bound holds no matter how many pushes happened…
        assert_eq!(h.len(), ResidualHistory::CAP);
        // …and the ring keeps the newest entries, oldest first.
        let v = h.to_vec();
        assert_eq!(v.first(), Some(&24.0));
        assert_eq!(v.last(), Some(&39.0));
        assert_eq!(v.len(), ResidualHistory::CAP);
    }

    #[test]
    fn residual_history_partial_fill_is_ordered() {
        let mut h = ResidualHistory::new();
        h.push(3.0);
        h.push(2.0);
        h.push(1.0);
        assert_eq!(h.to_vec(), vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn solves_carry_bounded_residual_history() {
        // A long CG solve must retain exactly CAP entries ending in the
        // final residual; a short one starts from the initial residual.
        let n = 200;
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let long = pcg(
            |p, ap| tridiag_apply(2.001, p, ap),
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-12,
            0.0,
            500,
        );
        assert!(long.iterations > ResidualHistory::CAP, "{long:?}");
        let v = long.residuals.to_vec();
        assert_eq!(v.len(), ResidualHistory::CAP);
        assert_eq!(v.last().copied(), Some(long.final_residual));

        let mut x2 = vec![0.0; 20];
        let short = pcg(
            |p, ap| tridiag_apply(4.0, p, ap),
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &[1.0; 20],
            &mut x2,
            1e-9,
            0.0,
            100,
        );
        assert!(short.iterations < ResidualHistory::CAP);
        let v = short.residuals.to_vec();
        assert_eq!(v.first().copied(), Some(short.initial_residual));
        assert_eq!(v.last().copied(), Some(short.final_residual));
        // The curve is monotone-ish: final well below initial.
        assert!(short.final_residual < short.initial_residual);
    }

    #[test]
    fn gmres_history_tracks_true_residual_at_cycles() {
        let n = 60;
        let apply = |x: &[f64], y: &mut [f64]| tridiag_apply(2.5, x, y);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = fgmres(
            apply,
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-10,
            0.0,
            2000,
            5,
        );
        assert!(stats.converged);
        let v = stats.residuals.to_vec();
        assert!(v.len() <= ResidualHistory::CAP);
        assert_eq!(v.last().copied(), Some(stats.final_residual));
    }

    #[test]
    fn stats_report_residual_drop() {
        let n = 20;
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = pcg(
            |p, ap| tridiag_apply(4.0, p, ap),
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-9,
            0.0,
            100,
        );
        assert!(stats.initial_residual > stats.final_residual);
        assert!(stats.final_residual <= 1e-9);
    }
}
