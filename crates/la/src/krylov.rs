//! Krylov solvers: preconditioned CG and flexible GMRES(m).
//!
//! The paper's solver configuration (§6): velocity and temperature use a
//! block-Jacobi-preconditioned conjugate gradient; pressure uses GMRES with
//! the hybrid Schwarz-multigrid preconditioner. Operators, preconditioners
//! and inner products are passed as closures so any combination of
//! [`crate::HelmholtzOp`], masks and communicators can be driven.

/// Outcome of a Krylov solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Initial residual norm.
    pub initial_residual: f64,
    /// Final residual norm.
    pub final_residual: f64,
    /// Whether the tolerance was met within the iteration budget.
    pub converged: bool,
}

/// Preconditioned conjugate gradients for an SPD operator.
///
/// Solves `A x = b` starting from the provided `x`. `op(p, ap)` computes
/// `ap = A p`; `precond(r, z)` computes `z = M⁻¹ r` (copy for identity);
/// `dot` is the globally consistent inner product. Convergence is declared
/// when `‖r‖ ≤ tol_abs` or `‖r‖ ≤ tol_rel·‖r₀‖`.
#[allow(clippy::too_many_arguments)]
pub fn pcg(
    mut op: impl FnMut(&[f64], &mut [f64]),
    mut precond: impl FnMut(&[f64], &mut [f64]),
    dot: impl Fn(&[f64], &[f64]) -> f64,
    b: &[f64],
    x: &mut [f64],
    tol_abs: f64,
    tol_rel: f64,
    max_iter: usize,
) -> SolveStats {
    let n = b.len();
    assert_eq!(x.len(), n);
    let mut r = vec![0.0; n];
    let mut z = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut ap = vec![0.0; n];

    // r = b - A x
    op(x, &mut ap);
    for i in 0..n {
        r[i] = b[i] - ap[i];
    }
    let r0 = dot(&r, &r).sqrt();
    let target = tol_abs.max(tol_rel * r0);
    if r0 <= target {
        return SolveStats {
            iterations: 0,
            initial_residual: r0,
            final_residual: r0,
            converged: true,
        };
    }

    precond(&r, &mut z);
    p.copy_from_slice(&z);
    let mut rz = dot(&r, &z);
    let mut rnorm = r0;
    let mut iterations = 0;

    for it in 1..=max_iter {
        iterations = it;
        op(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // Loss of positive-definiteness (round-off or bad operator);
            // bail with the current iterate.
            break;
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        rnorm = dot(&r, &r).sqrt();
        if rnorm <= target {
            return SolveStats {
                iterations,
                initial_residual: r0,
                final_residual: rnorm,
                converged: true,
            };
        }
        precond(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    SolveStats {
        iterations,
        initial_residual: r0,
        final_residual: rnorm,
        converged: rnorm <= target,
    }
}

/// Flexible GMRES with restart length `m` and right preconditioning.
///
/// Flexibility (storing the preconditioned directions) permits a
/// preconditioner that is itself an inner iteration — exactly the hybrid
/// Schwarz preconditioner whose coarse level runs a fixed-iteration PCG.
#[allow(clippy::too_many_arguments)]
pub fn fgmres(
    mut op: impl FnMut(&[f64], &mut [f64]),
    mut precond: impl FnMut(&[f64], &mut [f64]),
    dot: impl Fn(&[f64], &[f64]) -> f64,
    b: &[f64],
    x: &mut [f64],
    tol_abs: f64,
    tol_rel: f64,
    max_iter: usize,
    restart: usize,
) -> SolveStats {
    let n = b.len();
    assert_eq!(x.len(), n);
    assert!(restart >= 1);
    let m = restart;

    let mut r = vec![0.0; n];
    let mut w = vec![0.0; n];
    op(x, &mut w);
    for i in 0..n {
        r[i] = b[i] - w[i];
    }
    let r0 = dot(&r, &r).sqrt();
    let target = tol_abs.max(tol_rel * r0);
    if r0 <= target {
        return SolveStats {
            iterations: 0,
            initial_residual: r0,
            final_residual: r0,
            converged: true,
        };
    }

    let mut total_iters = 0;
    let mut beta = r0;

    loop {
        // Arnoldi basis V and preconditioned directions Z.
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        let mut zdirs: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut h = vec![vec![0.0f64; m]; m + 1]; // h[i][j]
        let mut cs = vec![0.0f64; m];
        let mut sn = vec![0.0f64; m];
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;

        let mut v0 = r.clone();
        for val in v0.iter_mut() {
            *val /= beta;
        }
        v.push(v0);

        let mut k_used = 0;
        let mut res = beta;
        for j in 0..m {
            if total_iters >= max_iter {
                break;
            }
            total_iters += 1;
            k_used = j + 1;

            let mut z = vec![0.0; n];
            precond(&v[j], &mut z);
            op(&z, &mut w);
            zdirs.push(z);

            // Modified Gram-Schmidt.
            for (i, vi) in v.iter().enumerate() {
                let hij = dot(&w, vi);
                h[i][j] = hij;
                for (wv, vv) in w.iter_mut().zip(vi) {
                    *wv -= hij * vv;
                }
            }
            let hnext = dot(&w, &w).sqrt();
            h[j + 1][j] = hnext;
            if hnext > 1e-300 {
                let mut vnext = w.clone();
                for val in vnext.iter_mut() {
                    *val /= hnext;
                }
                v.push(vnext);
            } else {
                // Happy breakdown: exact solution in the current space.
                v.push(vec![0.0; n]);
            }

            // Apply accumulated Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = t;
            }
            let denom = (h[j][j] * h[j][j] + h[j + 1][j] * h[j + 1][j]).sqrt();
            if denom > 0.0 {
                cs[j] = h[j][j] / denom;
                sn[j] = h[j + 1][j] / denom;
            } else {
                cs[j] = 1.0;
                sn[j] = 0.0;
            }
            h[j][j] = cs[j] * h[j][j] + sn[j] * h[j + 1][j];
            h[j + 1][j] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            res = g[j + 1].abs();
            if res <= target {
                break;
            }
        }

        // Solve the small triangular system and update x with Z directions.
        if k_used > 0 {
            let mut y = vec![0.0f64; k_used];
            for i in (0..k_used).rev() {
                let mut acc = g[i];
                for j in i + 1..k_used {
                    acc -= h[i][j] * y[j];
                }
                y[i] = acc / h[i][i];
            }
            for (j, yj) in y.iter().enumerate() {
                for i in 0..n {
                    x[i] += yj * zdirs[j][i];
                }
            }
        }

        // True residual for the restart / convergence decision.
        op(x, &mut w);
        for i in 0..n {
            r[i] = b[i] - w[i];
        }
        beta = dot(&r, &r).sqrt();
        if beta <= target || total_iters >= max_iter {
            return SolveStats {
                iterations: total_iters,
                initial_residual: r0,
                final_residual: beta,
                converged: beta <= target,
            };
        }
        // `res` (the Givens-estimated residual) guided the inner loop; the
        // restart decision above uses the true residual.
        let _ = res;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense SPD test operator: tridiagonal (−1, d, −1).
    fn tridiag_apply(d: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        for i in 0..n {
            let mut acc = d * x[i];
            if i > 0 {
                acc -= x[i - 1];
            }
            if i + 1 < n {
                acc -= x[i + 1];
            }
            y[i] = acc;
        }
    }

    fn plain_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn cg_solves_spd_system() {
        let n = 50;
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut b = vec![0.0; n];
        tridiag_apply(4.0, &x_true, &mut b);
        let mut x = vec![0.0; n];
        let stats = pcg(
            |p, ap| tridiag_apply(4.0, p, ap),
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-12,
            0.0,
            200,
        );
        assert!(stats.converged, "{stats:?}");
        for (a, t) in x.iter().zip(&x_true) {
            assert!((a - t).abs() < 1e-9);
        }
    }

    #[test]
    fn cg_zero_rhs_returns_immediately() {
        let n = 10;
        let b = vec![0.0; n];
        let mut x = vec![0.0; n];
        let stats = pcg(
            |p, ap| tridiag_apply(3.0, p, ap),
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-12,
            0.0,
            10,
        );
        assert_eq!(stats.iterations, 0);
        assert!(stats.converged);
    }

    #[test]
    fn jacobi_preconditioner_reduces_cg_iterations() {
        // Strongly varying diagonal: D_i = 1 + i².
        let n = 80;
        let diag: Vec<f64> = (0..n).map(|i| 1.0 + (i * i) as f64).collect();
        let apply = |x: &[f64], y: &mut [f64]| {
            for i in 0..n {
                let mut acc = diag[i] * x[i];
                if i > 0 {
                    acc -= 0.3 * x[i - 1];
                }
                if i + 1 < n {
                    acc -= 0.3 * x[i + 1];
                }
                y[i] = acc;
            }
        };
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();

        let mut x_plain = vec![0.0; n];
        let plain = pcg(
            apply,
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x_plain,
            1e-10,
            0.0,
            500,
        );
        let mut x_prec = vec![0.0; n];
        let prec = pcg(
            apply,
            |r, z| {
                for i in 0..n {
                    z[i] = r[i] / diag[i];
                }
            },
            plain_dot,
            &b,
            &mut x_prec,
            1e-10,
            0.0,
            500,
        );
        assert!(plain.converged && prec.converged);
        assert!(
            prec.iterations < plain.iterations,
            "jacobi {} !< plain {}",
            prec.iterations,
            plain.iterations
        );
    }

    #[test]
    fn gmres_solves_nonsymmetric_system() {
        // Upwind-ish nonsymmetric operator.
        let n = 40;
        let apply = |x: &[f64], y: &mut [f64]| {
            for i in 0..n {
                let mut acc = 3.0 * x[i];
                if i > 0 {
                    acc -= 2.0 * x[i - 1];
                }
                if i + 1 < n {
                    acc -= 0.5 * x[i + 1];
                }
                y[i] = acc;
            }
        };
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut b = vec![0.0; n];
        apply(&x_true, &mut b);
        let mut x = vec![0.0; n];
        let stats = fgmres(
            apply,
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-11,
            0.0,
            300,
            20,
        );
        assert!(stats.converged, "{stats:?}");
        for (a, t) in x.iter().zip(&x_true) {
            assert!((a - t).abs() < 1e-8);
        }
    }

    #[test]
    fn gmres_restarts_still_converge() {
        let n = 60;
        let apply = |x: &[f64], y: &mut [f64]| tridiag_apply(2.5, x, y);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = fgmres(
            apply,
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-10,
            0.0,
            2000,
            5, // tiny restart forces many cycles
        );
        assert!(stats.converged, "{stats:?}");
    }

    #[test]
    fn gmres_flexible_with_inner_iteration_preconditioner() {
        // Preconditioner = 3 CG iterations on the same operator (variable
        // preconditioner: classic FGMRES territory).
        let n = 30;
        let apply = |x: &[f64], y: &mut [f64]| tridiag_apply(4.0, x, y);
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let mut x = vec![0.0; n];
        let stats = fgmres(
            apply,
            |r, z| {
                z.fill(0.0);
                let _ = pcg(
                    |p, ap| tridiag_apply(4.0, p, ap),
                    |rr, zz| zz.copy_from_slice(rr),
                    plain_dot,
                    r,
                    z,
                    0.0,
                    0.0,
                    3,
                );
            },
            plain_dot,
            &b,
            &mut x,
            1e-10,
            0.0,
            100,
            30,
        );
        assert!(stats.converged, "{stats:?}");
        assert!(stats.iterations < 15, "too many outer iterations: {stats:?}");
    }

    #[test]
    fn stats_report_residual_drop() {
        let n = 20;
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = pcg(
            |p, ap| tridiag_apply(4.0, p, ap),
            |r, z| z.copy_from_slice(r),
            plain_dot,
            &b,
            &mut x,
            1e-9,
            0.0,
            100,
        );
        assert!(stats.initial_residual > stats.final_residual);
        assert!(stats.final_residual <= 1e-9);
    }
}
