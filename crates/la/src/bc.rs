//! Dirichlet masks from mesh boundary tags.
//!
//! A mask is 1.0 on free nodes and 0.0 on Dirichlet-constrained nodes.
//! Because a node on the closure of a tagged face can belong to elements
//! whose own faces are untagged, the element-local mask is made globally
//! consistent with a gather-scatter `Min`.

use rbx_comm::Communicator;
use rbx_gs::{GatherScatter, GsOp};
use rbx_mesh::topology::face_to_volume;
use rbx_mesh::{BoundaryTag, HexMesh};

/// Build the Dirichlet mask for this rank's elements: nodes on any face
/// whose tag is in `dirichlet_tags` are constrained (0.0), everything else
/// is free (1.0).
pub fn dirichlet_mask(
    mesh: &HexMesh,
    p: usize,
    my_elems: &[usize],
    dirichlet_tags: &[BoundaryTag],
    gs: &GatherScatter,
    comm: &dyn Communicator,
) -> Vec<f64> {
    let n = p + 1;
    let nn = n * n * n;
    let mut mask = vec![1.0; my_elems.len() * nn];
    for (le, &ge) in my_elems.iter().enumerate() {
        for f in 0..6 {
            if dirichlet_tags.contains(&mesh.face_tags[ge][f]) {
                for b in 0..n {
                    for a in 0..n {
                        let (i, j, k) = face_to_volume(f, a, b, p);
                        mask[le * nn + i + n * (j + n * k)] = 0.0;
                    }
                }
            }
        }
    }
    // Propagate constraints to all copies of each shared node.
    gs.apply(&mut mask, GsOp::Min, comm);
    mask
}

/// Set `u` to `value` on all nodes of faces carrying `tag` (inhomogeneous
/// Dirichlet lifting). Only this rank's elements are touched; callers
/// should gather afterwards if the value varies.
pub fn set_on_tagged_faces(
    mesh: &HexMesh,
    p: usize,
    my_elems: &[usize],
    tag: BoundaryTag,
    value: f64,
    u: &mut [f64],
) {
    let n = p + 1;
    let nn = n * n * n;
    for (le, &ge) in my_elems.iter().enumerate() {
        for f in 0..6 {
            if mesh.face_tags[ge][f] == tag {
                for b in 0..n {
                    for a in 0..n {
                        let (i, j, k) = face_to_volume(f, a, b, p);
                        u[le * nn + i + n * (j + n * k)] = value;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbx_comm::SingleComm;
    use rbx_mesh::generators::box_mesh;

    #[test]
    fn mask_zero_exactly_on_boundary() {
        let p = 3;
        let mesh = box_mesh(2, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let geom = rbx_mesh::GeomFactors::new(&mesh, p);
        let comm = SingleComm::new();
        let part = vec![0; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        let gs = GatherScatter::build(&mesh, p, &part, &my, &comm);
        let mask = dirichlet_mask(
            &mesh,
            p,
            &my,
            &[
                BoundaryTag::Wall,
                BoundaryTag::HotWall,
                BoundaryTag::ColdWall,
            ],
            &gs,
            &comm,
        );
        for (idx, &m) in mask.iter().enumerate() {
            let x = geom.coords[0][idx];
            let y = geom.coords[1][idx];
            let z = geom.coords[2][idx];
            let on_bnd = [x, y, z]
                .iter()
                .any(|&c| c.abs() < 1e-12 || (c - 1.0).abs() < 1e-12);
            assert_eq!(m == 0.0, on_bnd, "node {idx} at ({x},{y},{z}) mask {m}");
        }
    }

    #[test]
    fn partial_tags_only_mask_selected_faces() {
        let p = 2;
        let mesh = box_mesh(1, 1, 1, [0., 1.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let gs = GatherScatter::build(&mesh, p, &[0], &[0], &comm);
        // Only the hot (bottom) wall.
        let mask = dirichlet_mask(&mesh, p, &[0], &[BoundaryTag::HotWall], &gs, &comm);
        let n = p + 1;
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let m = mask[i + n * (j + n * k)];
                    assert_eq!(m == 0.0, k == 0, "({i},{j},{k})");
                }
            }
        }
    }

    #[test]
    fn set_on_tagged_faces_writes_values() {
        let p = 2;
        let mesh = box_mesh(1, 1, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let n = p + 1;
        let nn = n * n * n;
        let mut u = vec![0.0; 2 * nn];
        set_on_tagged_faces(&mesh, p, &[0, 1], BoundaryTag::ColdWall, -0.5, &mut u);
        // Cold wall is the top of element 1 only.
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let e0 = u[i + n * (j + n * k)];
                    let e1 = u[nn + i + n * (j + n * k)];
                    assert_eq!(e0, 0.0);
                    assert_eq!(e1 != 0.0, k == n - 1);
                }
            }
        }
    }
}
