//! Element-local fast diagonalization method (FDM).
//!
//! The fine level of the paper's additive Schwarz preconditioner solves
//! `Ãₖ⁻¹` per element with the fast diagonalization method: each element is
//! approximated by a separable box of matching extents, the 1-D generalized
//! eigenproblems `K̂ S = M̂ S Λ` are solved once per element and direction,
//! and each application is three small tensor contractions.
//!
//! Two subdomain flavours are provided:
//!
//! * [`FdmMode::FullNeumann`] — local solves on the *whole* element with
//!   natural boundary conditions. The per-element constant mode (zero
//!   eigenvalue in every direction) is removed by pseudo-inversion; it is
//!   exactly the content the coarse grid handles. Combined with weighted
//!   gather-scatter averaging in [`crate::SchwarzMg`], this is the
//!   restricted-additive-Schwarz analogue of Nek's overlapping solves
//!   (deviation documented in DESIGN.md §6).
//! * [`FdmMode::Interior`] — Dirichlet solves on element interiors only;
//!   kept for ablation studies (it leaves inter-element nodes to the
//!   coarse grid alone and is therefore a strictly weaker preconditioner).

use rbx_basis::fused::{tensor3, Tensor3Scratch};
use rbx_basis::{sym_eig, DMat};
use rbx_device::{loop_chunk, tuning, RangePtr, WorkerPool};
use rbx_mesh::GeomFactors;
use std::cell::RefCell;

/// Per-thread scratch for the pooled FDM sweep (two m³ lattices plus the
/// tensor-contraction workspace), resized only on an order change.
#[derive(Default)]
struct FdmScratch {
    rint: Vec<f64>,
    tmp: Vec<f64>,
    ts: Tensor3Scratch,
}

thread_local! {
    static POOL_SCRATCH: RefCell<FdmScratch> = RefCell::new(FdmScratch::default());
}

/// Subdomain choice for the local solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FdmMode {
    /// Whole element, natural BC, constant mode pseudo-inverted.
    #[default]
    FullNeumann,
    /// Element interior, homogeneous Dirichlet walls (ablation variant).
    Interior,
}

/// Per-direction eigen-factors of one element.
struct ElemFactors {
    /// Eigenvalues per direction `[x, y, z]`.
    lambda: [Vec<f64>; 3],
    /// Eigenvector matrices per direction (B-orthonormal columns).
    s: [DMat; 3],
    /// Transposes, precomputed for the apply.
    st: [DMat; 3],
    /// Largest eigenvalue sum, for the pseudo-inverse threshold.
    lambda_max: f64,
}

/// Fast-diagonalization local solver for all elements of a rank.
pub struct ElementFdm {
    n: usize,
    m: usize,
    mode: FdmMode,
    factors: Vec<ElemFactors>,
}

impl ElementFdm {
    /// Build with the default [`FdmMode::FullNeumann`] subdomains.
    pub fn new(geom: &GeomFactors) -> Self {
        Self::with_mode(geom, FdmMode::FullNeumann)
    }

    /// Build the per-element factorizations from the geometry.
    ///
    /// The 1-D reference stiffness is `K̂ab = Σ_q w_q D[q,a] D[q,b]`, the
    /// mass `M̂ = diag(w)`; both are scaled by the element's mean extent in
    /// each direction, then restricted according to `mode`.
    pub fn with_mode(geom: &GeomFactors, mode: FdmMode) -> Self {
        let n = geom.nx1;
        let m = match mode {
            FdmMode::FullNeumann => n,
            FdmMode::Interior => n.saturating_sub(2),
        };
        let off = match mode {
            FdmMode::FullNeumann => 0,
            FdmMode::Interior => 1,
        };
        let d = &geom.d;
        let mut khat = DMat::zeros(n, n);
        for a in 0..n {
            for b in 0..n {
                let mut acc = 0.0;
                for q in 0..n {
                    acc += geom.weights[q] * d[(q, a)] * d[(q, b)];
                }
                khat[(a, b)] = acc;
            }
        }

        let nn = n * n * n;
        let mut factors = Vec::with_capacity(geom.nelv);
        for e in 0..geom.nelv {
            let base = e * nn;
            let ext = element_extents(geom, base, n);
            let mut lambda: [Vec<f64>; 3] = Default::default();
            let mut s = [DMat::zeros(0, 0), DMat::zeros(0, 0), DMat::zeros(0, 0)];
            let mut lambda_max = 0.0f64;
            for (dir, (lam, sm)) in lambda.iter_mut().zip(s.iter_mut()).enumerate() {
                if m == 0 {
                    continue;
                }
                let len = ext[dir].max(1e-14);
                let k_sub = DMat::from_fn(m, m, |a, b| (2.0 / len) * khat[(a + off, b + off)]);
                // The 1-D mass `M̂ = diag(0.5·len·w)` has strictly positive
                // GLL weights, so the generalized problem `K̂S = M̂SΛ`
                // reduces to the ordinary symmetric eigenproblem of
                // `C = M̂^{-1/2} K̂ M̂^{-1/2}`. `sym_eig` (Jacobi rotations)
                // is total, which keeps this constructor infallible —
                // `S = M̂^{-1/2}·V` has B-orthonormal columns, exactly what
                // the fallible Cholesky-based solve produced before.
                let dinv: Vec<f64> = (0..m)
                    .map(|a| 1.0 / (0.5 * len * geom.weights[a + off]).sqrt())
                    .collect();
                let c = DMat::from_fn(m, m, |a, b| dinv[a] * k_sub[(a, b)] * dinv[b]);
                let (vals, vecs) = sym_eig(&c);
                lambda_max = lambda_max.max(vals.last().copied().unwrap_or(0.0));
                *lam = vals;
                *sm = DMat::from_fn(m, m, |a, b| dinv[a] * vecs[(a, b)]);
            }
            let st = [s[0].transpose(), s[1].transpose(), s[2].transpose()];
            factors.push(ElemFactors {
                lambda,
                s,
                st,
                lambda_max,
            });
        }
        Self {
            n,
            m,
            mode,
            factors,
        }
    }

    /// Subdomain lattice size per direction.
    pub fn interior_size(&self) -> usize {
        self.m
    }

    /// The configured subdomain mode.
    pub fn mode(&self) -> FdmMode {
        self.mode
    }

    /// Add the element-local corrections `z += Σₖ Rₖᵀ (h₁Ãₖ + h₂B̃ₖ)⁻¹ Rₖ r`
    /// for the Helmholtz coefficients `(h₁, h₂)`.
    ///
    /// `r` must already carry the inverse-multiplicity weighting; `z` is
    /// accumulated into. In [`FdmMode::FullNeumann`] the output is
    /// element-discontinuous; the caller restores continuity by weighted
    /// gather-scatter averaging.
    pub fn apply_add(&self, r: &[f64], z: &mut [f64], h1: f64, h2: f64) {
        let m = self.m;
        if m == 0 {
            return;
        }
        let nn = self.n * self.n * self.n;
        let mm = m * m * m;
        debug_assert_eq!(r.len(), self.factors.len() * nn);
        debug_assert_eq!(z.len(), r.len());
        // Per-apply scratch: `&self` must stay immutable so the overlapped
        // Schwarz phase can run this concurrently with the coarse solve;
        // two m³ buffers per apply are amortized over the element loop.
        // audit:allow(hot-alloc): m³ scratch kept local so &self stays Sync for the overlapped phase; amortized over all elements
        let mut rint = vec![0.0; mm];
        // audit:allow(hot-alloc): m³ scratch kept local so &self stays Sync for the overlapped phase; amortized over all elements
        let mut tmp = vec![0.0; mm];
        let mut scratch = Tensor3Scratch::new();
        self.apply_element_range(
            0,
            self.factors.len(),
            r,
            z,
            h1,
            h2,
            &mut rint,
            &mut tmp,
            &mut scratch,
        );
    }

    /// Pooled variant of [`ElementFdm::apply_add`]: the element sweep is
    /// dispatched on a persistent [`WorkerPool`] with per-thread scratch.
    /// Each element writes a disjoint block of `z`, so the result is
    /// bitwise identical to the serial sweep for every thread count.
    pub fn apply_add_with(&self, r: &[f64], z: &mut [f64], h1: f64, h2: f64, pool: &WorkerPool) {
        let m = self.m;
        if m == 0 {
            return;
        }
        let nn = self.n * self.n * self.n;
        let mm = m * m * m;
        debug_assert_eq!(r.len(), self.factors.len() * nn);
        debug_assert_eq!(z.len(), r.len());
        let nelv = self.factors.len();
        let zp = RangePtr::new(z);
        let gate = tuning().fdm_elems;
        let chunk = loop_chunk(nelv, pool.threads());
        pool.for_each_range_min(nelv, chunk, gate, |e0, e1| {
            POOL_SCRATCH.with(|cell| {
                let s = &mut *cell.borrow_mut();
                s.rint.resize(mm, 0.0);
                s.tmp.resize(mm, 0.0);
                // SAFETY: element chunks are pairwise disjoint, so the node
                // ranges they map to are too.
                let zsub = unsafe { zp.range_mut(e0 * nn, e1 * nn) };
                self.apply_element_range(
                    e0,
                    e1,
                    r,
                    zsub,
                    h1,
                    h2,
                    &mut s.rint,
                    &mut s.tmp,
                    &mut s.ts,
                );
            });
        });
    }

    /// The element sweep over `e0..e1`; `z` holds exactly that range's
    /// nodes (`r` stays full-length, it is only read).
    #[allow(clippy::too_many_arguments)]
    fn apply_element_range(
        &self,
        e0: usize,
        e1: usize,
        r: &[f64],
        z: &mut [f64],
        h1: f64,
        h2: f64,
        rint: &mut [f64],
        tmp: &mut [f64],
        scratch: &mut Tensor3Scratch,
    ) {
        let n = self.n;
        let m = self.m;
        let off = match self.mode {
            FdmMode::FullNeumann => 0,
            FdmMode::Interior => 1,
        };
        let nn = n * n * n;
        for (e, f) in self.factors[e0..e1].iter().enumerate() {
            let base = (e0 + e) * nn;
            let zbase = e * nn;
            // w = Sᵀ r — fused square SIMD contraction. In the full-element
            // mode the subdomain lattice IS the element, so the restriction
            // copy is skipped and `r` feeds the contraction directly.
            if m == n {
                tensor3(
                    &f.st[0],
                    &f.st[1],
                    &f.st[2],
                    &r[base..base + nn],
                    tmp,
                    scratch,
                );
            } else {
                for k in 0..m {
                    for j in 0..m {
                        for i in 0..m {
                            rint[i + m * (j + m * k)] =
                                r[base + (i + off) + n * ((j + off) + n * (k + off))];
                        }
                    }
                }
                tensor3(&f.st[0], &f.st[1], &f.st[2], rint, tmp, scratch);
            }
            // Scale by the pseudo-inverse of h1·(λx+λy+λz) + h2, branchless
            // over contiguous x-rows so the divisions vectorize. The select
            // keeps the exact pre-existing semantics: divide unless the
            // denominator sits under the pseudo-inverse floor.
            let floor = 1e-8 * (h1.abs() * f.lambda_max.max(1e-300) + h2.abs());
            let l0 = &f.lambda[0][..m];
            for k in 0..m {
                let l2k = f.lambda[2][k];
                for j in 0..m {
                    let l1j = f.lambda[1][j];
                    let row = &mut tmp[m * (j + m * k)..][..m];
                    for (x, &la) in row.iter_mut().zip(l0) {
                        let denom = h1 * (la + l1j + l2k) + h2;
                        *x = if denom.abs() <= floor {
                            0.0
                        } else {
                            *x / denom
                        };
                    }
                }
            }
            // z_sub += S w. `axpy(1.0, ..)` is bitwise identical to the
            // plain add: fma(1·x + y) rounds once over an exact product.
            tensor3(&f.s[0], &f.s[1], &f.s[2], tmp, rint, scratch);
            if m == n {
                rbx_basis::simd::axpy(1.0, &rint[..nn], &mut z[zbase..zbase + nn]);
            } else {
                for k in 0..m {
                    for j in 0..m {
                        for i in 0..m {
                            z[zbase + (i + off) + n * ((j + off) + n * (k + off))] +=
                                rint[i + m * (j + m * k)];
                        }
                    }
                }
            }
        }
    }
}

/// Mean physical extent of an element in each reference direction,
/// measured between opposing face nodes.
fn element_extents(geom: &GeomFactors, base: usize, n: usize) -> [f64; 3] {
    let mut ext = [0.0f64; 3];
    let idx = |i: usize, j: usize, k: usize| base + i + n * (j + n * k);
    let dist = |a: usize, b: usize| -> f64 {
        let dx = geom.coords[0][a] - geom.coords[0][b];
        let dy = geom.coords[1][a] - geom.coords[1][b];
        let dz = geom.coords[2][a] - geom.coords[2][b];
        (dx * dx + dy * dy + dz * dz).sqrt()
    };
    let mut count = 0.0;
    for a in 0..n {
        for b in 0..n {
            ext[0] += dist(idx(0, a, b), idx(n - 1, a, b));
            ext[1] += dist(idx(a, 0, b), idx(a, n - 1, b));
            ext[2] += dist(idx(a, b, 0), idx(a, b, n - 1));
            count += 1.0;
        }
    }
    for v in &mut ext {
        *v /= count;
    }
    ext
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::helmholtz::{HelmholtzOp, HelmholtzScratch};
    use rbx_comm::SingleComm;
    use rbx_gs::GatherScatter;
    use rbx_mesh::generators::box_mesh;

    #[test]
    fn interior_mode_exact_inverse_on_affine_box() {
        // On a single affine element the SEM Helmholtz operator IS
        // separable, so the interior-Dirichlet FDM must invert its interior
        // block exactly.
        let p = 5;
        let mesh = box_mesh(1, 1, 1, [0., 1.3], [0., 0.8], [0., 2.1], false, false);
        let geom = rbx_mesh::GeomFactors::new(&mesh, p);
        let comm = SingleComm::new();
        let gs = GatherScatter::build(&mesh, p, &[0], &[0], &comm);
        let n = p + 1;
        let nn = n * n * n;
        let mut mask = vec![0.0; nn];
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    mask[i + n * (j + n * k)] = 1.0;
                }
            }
        }
        let (h1, h2) = (2.0, 0.3);
        let op = HelmholtzOp {
            geom: &geom,
            gs: &gs,
            mask: &mask,
            h1,
            h2,
        };
        let fdm = ElementFdm::with_mode(&geom, FdmMode::Interior);

        let mut r = vec![0.0; nn];
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    r[i + n * (j + n * k)] = ((i * 7 + j * 3 + k) % 5) as f64 - 2.0;
                }
            }
        }
        let mut z = vec![0.0; nn];
        fdm.apply_add(&r, &mut z, h1, h2);
        let mut hz = vec![0.0; nn];
        let mut scratch = HelmholtzScratch::default();
        op.apply(&z, &mut hz, &mut scratch, &comm);
        for k in 1..n - 1 {
            for j in 1..n - 1 {
                for i in 1..n - 1 {
                    let idx = i + n * (j + n * k);
                    assert!(
                        (hz[idx] - r[idx]).abs() < 1e-8,
                        "interior node ({i},{j},{k}): H·z = {} vs r = {}",
                        hz[idx],
                        r[idx]
                    );
                }
            }
        }
    }

    #[test]
    fn full_mode_exact_inverse_on_affine_box_helmholtz() {
        // With a mass shift (h2 > 0) the full-element operator is
        // nonsingular and the FullNeumann FDM must invert it exactly on a
        // single affine element: H z = r for the *local* (unassembled)
        // operator equals the assembled one on one element.
        let p = 4;
        let mesh = box_mesh(1, 1, 1, [0., 1.1], [0., 0.9], [0., 1.4], false, false);
        let geom = rbx_mesh::GeomFactors::new(&mesh, p);
        let comm = SingleComm::new();
        let gs = GatherScatter::build(&mesh, p, &[0], &[0], &comm);
        let n = p + 1;
        let nn = n * n * n;
        let mask = vec![1.0; nn];
        let (h1, h2) = (0.7, 2.5);
        let op = HelmholtzOp {
            geom: &geom,
            gs: &gs,
            mask: &mask,
            h1,
            h2,
        };
        let fdm = ElementFdm::with_mode(&geom, FdmMode::FullNeumann);

        let r: Vec<f64> = (0..nn).map(|i| ((i * 11) % 7) as f64 - 3.0).collect();
        let mut z = vec![0.0; nn];
        fdm.apply_add(&r, &mut z, h1, h2);
        let mut hz = vec![0.0; nn];
        let mut scratch = HelmholtzScratch::default();
        op.apply(&z, &mut hz, &mut scratch, &comm);
        for idx in 0..nn {
            assert!(
                (hz[idx] - r[idx]).abs() < 1e-8,
                "node {idx}: H·z = {} vs r = {}",
                hz[idx],
                r[idx]
            );
        }
    }

    #[test]
    fn full_mode_poisson_pseudo_inverse_kills_constant() {
        // Pure Poisson (h2 = 0): the constant component of r must map to a
        // zero-mean correction (constant mode excluded).
        let p = 4;
        let mesh = box_mesh(1, 1, 1, [0., 1.], [0., 1.], [0., 1.], false, false);
        let geom = rbx_mesh::GeomFactors::new(&mesh, p);
        let fdm = ElementFdm::new(&geom);
        let nn = geom.total_nodes();
        let r = vec![1.0; nn]; // pure constant
        let mut z = vec![0.0; nn];
        fdm.apply_add(&r, &mut z, 1.0, 0.0);
        // The image of a constant under the pseudo-inverted operator is not
        // exactly zero nodally (the mass weighting is non-uniform), but its
        // B-weighted mean must vanish and its magnitude must stay bounded.
        let mean: f64 = z.iter().zip(&geom.mass).map(|(a, b)| a * b).sum::<f64>();
        assert!(mean.abs() < 1e-10, "constant mode leaked: {mean}");
    }

    #[test]
    fn apply_is_symmetric_positive() {
        let p = 4;
        let mesh = box_mesh(2, 2, 1, [0., 1.], [0., 1.], [0., 1.], false, false);
        let geom = rbx_mesh::GeomFactors::new(&mesh, p);
        for mode in [FdmMode::FullNeumann, FdmMode::Interior] {
            let fdm = ElementFdm::with_mode(&geom, mode);
            let ntot = geom.total_nodes();
            let u: Vec<f64> = (0..ntot).map(|i| ((i * 13) % 11) as f64 - 5.0).collect();
            let w: Vec<f64> = (0..ntot).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
            let mut fu = vec![0.0; ntot];
            let mut fw = vec![0.0; ntot];
            fdm.apply_add(&u, &mut fu, 1.0, 0.1);
            fdm.apply_add(&w, &mut fw, 1.0, 0.1);
            let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
            let left = dot(&fu, &w);
            let right = dot(&u, &fw);
            assert!(
                (left - right).abs() < 1e-9 * left.abs().max(1.0),
                "{mode:?} asymmetric"
            );
            assert!(dot(&fu, &u) > 0.0, "{mode:?} not positive");
        }
    }

    #[test]
    fn interior_corrections_vanish_on_element_boundaries() {
        let p = 4;
        let mesh = box_mesh(2, 1, 1, [0., 2.], [0., 1.], [0., 1.], false, false);
        let geom = rbx_mesh::GeomFactors::new(&mesh, p);
        let fdm = ElementFdm::with_mode(&geom, FdmMode::Interior);
        let ntot = geom.total_nodes();
        let r = vec![1.0; ntot];
        let mut z = vec![0.0; ntot];
        fdm.apply_add(&r, &mut z, 1.0, 0.0);
        let n = p + 1;
        let nn = n * n * n;
        for e in 0..2 {
            for k in 0..n {
                for j in 0..n {
                    for i in 0..n {
                        let interior =
                            i > 0 && i < n - 1 && j > 0 && j < n - 1 && k > 0 && k < n - 1;
                        let v = z[e * nn + i + n * (j + n * k)];
                        if !interior {
                            assert_eq!(v, 0.0, "boundary node carries correction");
                        }
                    }
                }
            }
        }
        assert!(z.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn full_mode_touches_boundary_nodes() {
        let p = 3;
        let mesh = box_mesh(2, 1, 1, [0., 2.], [0., 1.], [0., 1.], false, false);
        let geom = rbx_mesh::GeomFactors::new(&mesh, p);
        let fdm = ElementFdm::new(&geom);
        let ntot = geom.total_nodes();
        let r: Vec<f64> = (0..ntot).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut z = vec![0.0; ntot];
        fdm.apply_add(&r, &mut z, 1.0, 0.0);
        // Some face-node corrections must be nonzero (full-rank fine level).
        let n = p + 1;
        let nonzero_boundary = z
            .iter()
            .enumerate()
            .filter(|(idx, v)| {
                let loc = idx % (n * n * n);
                let (i, j, k) = (loc % n, (loc / n) % n, loc / (n * n));
                let boundary = i == 0 || i == n - 1 || j == 0 || j == n - 1 || k == 0 || k == n - 1;
                boundary && v.abs() > 1e-12
            })
            .count();
        assert!(
            nonzero_boundary > 0,
            "no boundary corrections in FullNeumann mode"
        );
    }

    #[test]
    fn pooled_sweep_matches_serial_bitwise() {
        let p = 4;
        let mesh = box_mesh(3, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
        let geom = rbx_mesh::GeomFactors::new(&mesh, p);
        let fdm = ElementFdm::new(&geom);
        let ntot = geom.total_nodes();
        let r: Vec<f64> = (0..ntot)
            .map(|i| ((i * 53 % 103) as f64) * 0.02 - 1.0)
            .collect();
        let mut z_serial = vec![0.1; ntot]; // nonzero: apply_add accumulates
        fdm.apply_add(&r, &mut z_serial, 1.3, 0.2);
        for threads in [1usize, 4, 7] {
            let pool = WorkerPool::new(threads);
            let mut z_pooled = vec![0.1; ntot];
            fdm.apply_add_with(&r, &mut z_pooled, 1.3, 0.2, &pool);
            for (a, b) in z_serial.iter().zip(&z_pooled) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
        }
    }

    #[test]
    fn degenerate_low_order_is_noop_interior() {
        let p = 1;
        let mesh = box_mesh(1, 1, 1, [0., 1.], [0., 1.], [0., 1.], false, false);
        let geom = rbx_mesh::GeomFactors::new(&mesh, p);
        let fdm = ElementFdm::with_mode(&geom, FdmMode::Interior);
        assert_eq!(fdm.interior_size(), 0);
        let r = vec![1.0; geom.total_nodes()];
        let mut z = vec![0.0; geom.total_nodes()];
        fdm.apply_add(&r, &mut z, 1.0, 0.0);
        assert!(z.iter().all(|&v| v == 0.0));
    }
}
