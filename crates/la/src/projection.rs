//! Krylov-subspace recycling ("solution projection") for sequences of
//! related solves.
//!
//! Nek-family codes accelerate the per-step pressure solve by projecting
//! the new right-hand side onto the span of previous solutions (Fischer,
//! 1998): the best approximation in that subspace is removed before the
//! iterative solve, which then only resolves the (much smaller) remainder.
//! For smooth-in-time DNS fields this reliably cuts pressure iterations —
//! the same motivation as the paper's focus on the pressure solve being
//! the dominant cost (>85 % of a step, Fig. 4).
//!
//! The stored basis is A-orthonormalized, so the projection is computed
//! with dot products only (no extra operator applies beyond the ones
//! needed to A-orthonormalize each new entry, which reuses the solve's
//! final operator application).

use crate::ops::{DotProduct, ElemLayout};
use rbx_comm::Communicator;

/// Batched weighted pairings `⟨y, v_i⟩_w` for all stored directions in one
/// canonical reduction: per-element partials scattered by global element
/// id, one element-wise allreduce, sequential fold in global-element
/// order. Bits are independent of the rank count (see [`ElemLayout`]).
fn batched_dots_canonical(
    vs: &[Vec<f64>],
    y: &[f64],
    w: &[f64],
    layout: &ElemLayout,
    comm: &dyn Communicator,
) -> Vec<f64> {
    let e = layout.nelem_global;
    let np = layout.n_per;
    let k = vs.len();
    // audit:allow(hot-alloc): canonical-reduction scatter buffer, one per projection pass; see DotProduct::dot
    let mut partial = vec![0.0; k * e];
    for (row, xi) in vs.iter().enumerate() {
        let base = row * e;
        for (le, &ge) in layout.gids.iter().enumerate() {
            let lo = le * np;
            let mut acc = 0.0;
            for i in lo..lo + np {
                acc += y[i] * xi[i] * w[i];
            }
            partial[base + ge] = acc;
        }
    }
    layout.fold_sums(&mut partial, k, comm)
}

/// A-conjugate projection space for an SPD(-ish) operator.
pub struct SolutionProjection {
    /// Stored solutions `x_i` (A-orthonormal basis).
    basis: Vec<Vec<f64>>,
    /// Stored operator images `A·x_i`.
    images: Vec<Vec<f64>>,
    /// Maximum number of stored directions.
    max_vecs: usize,
    n: usize,
}

impl SolutionProjection {
    /// Create a projection space holding at most `max_vecs` directions for
    /// vectors of length `n`.
    pub fn new(n: usize, max_vecs: usize) -> Self {
        Self {
            basis: Vec::new(),
            images: Vec::new(),
            max_vecs,
            n,
        }
    }

    /// Number of stored directions.
    pub fn len(&self) -> usize {
        self.basis.len()
    }

    /// True when no directions are stored.
    pub fn is_empty(&self) -> bool {
        self.basis.is_empty()
    }

    /// Remove the best approximation from `b` and load it into `x0`:
    /// `x0 = Σ ⟨b, x_i⟩ x_i` (A-orthonormal basis ⇒ coefficients are plain
    /// dual pairings), `b ← b − Σ ⟨b, x_i⟩ A x_i`. Returns the fraction of
    /// `‖b‖` removed.
    // audit:allow(hot-alloc): coefficient/coarse-space sized buffers, bounded well below field size
    pub fn project_out(
        &self,
        b: &mut [f64],
        x0: &mut [f64],
        dp: &DotProduct,
        comm: &dyn Communicator,
    ) -> f64 {
        debug_assert_eq!(b.len(), self.n);
        debug_assert_eq!(x0.len(), self.n);
        x0.fill(0.0);
        if self.basis.is_empty() {
            return 0.0;
        }
        let b0 = dp.norm(b, comm);
        if b0 == 0.0 {
            return 0.0;
        }
        // Batch the coefficients into one allreduce; with a layout on the
        // inner product the batch reduces canonically (rank-count-
        // invariant bits — elastic-restart contract).
        let alphas: Vec<f64> = match dp.layout() {
            Some(l) => batched_dots_canonical(&self.basis, b, dp.weights(), l, comm),
            None => {
                let mut a: Vec<f64> = self
                    .basis
                    .iter()
                    .map(|xi| {
                        b.iter()
                            .zip(xi)
                            .zip(dp.weights())
                            .map(|((bv, xv), w)| bv * xv * w)
                            .sum::<f64>()
                    })
                    .collect();
                comm.allreduce_sum(&mut a);
                a
            }
        };
        for (i, &alpha) in alphas.iter().enumerate() {
            for k in 0..self.n {
                x0[k] += alpha * self.basis[i][k];
                b[k] -= alpha * self.images[i][k];
            }
        }
        let b1 = dp.norm(b, comm);
        1.0 - b1 / b0
    }

    /// Add the solve's correction `dx` (with its operator image `adx`) to
    /// the space, A-orthonormalizing against the stored basis. When full,
    /// the space restarts from this direction alone (Fischer's restart
    /// strategy).
    // audit:allow(hot-alloc): coefficient/coarse-space sized buffers, bounded well below field size
    pub fn absorb(&mut self, dx: &[f64], adx: &[f64], dp: &DotProduct, comm: &dyn Communicator) {
        debug_assert_eq!(dx.len(), self.n);
        debug_assert_eq!(adx.len(), self.n);
        if self.max_vecs == 0 {
            return;
        }
        if self.basis.len() >= self.max_vecs {
            // Full restart (Fischer's policy). Callers should absorb full
            // solutions rather than solver corrections so the first
            // direction after a restart carries the dominant content.
            self.basis.clear();
            self.images.clear();
        }
        let mut x = dx.to_vec();
        let mut ax = adx.to_vec();
        let anorm2_before = dp.dot(&ax, &x, comm);
        // `<=` alone does not reject NaN (all comparisons with NaN are
        // false); a non-finite direction absorbed here would poison every
        // later projected solve, surviving even checkpoint rollback.
        if !anorm2_before.is_finite() || anorm2_before <= 0.0 {
            return;
        }
        // A-orthogonalize with two Gram-Schmidt passes ("twice is enough")
        // so the stored basis stays numerically A-orthonormal over many
        // absorbs — a degraded basis poisons the deflated right-hand side
        // and stalls the outer solve.
        for _pass in 0..2 {
            if self.basis.is_empty() {
                break;
            }
            let betas: Vec<f64> = match dp.layout() {
                Some(l) => batched_dots_canonical(&self.basis, &ax, dp.weights(), l, comm),
                None => {
                    let mut bts: Vec<f64> = self
                        .basis
                        .iter()
                        .map(|xi| {
                            ax.iter()
                                .zip(xi)
                                .zip(dp.weights())
                                .map(|((av, xv), w)| av * xv * w)
                                .sum::<f64>()
                        })
                        .collect();
                    comm.allreduce_sum(&mut bts);
                    bts
                }
            };
            for (i, &beta) in betas.iter().enumerate() {
                for k in 0..self.n {
                    x[k] -= beta * self.basis[i][k];
                    ax[k] -= beta * self.images[i][k];
                }
            }
        }
        // Normalize in the A-norm: ⟨A x, x⟩ = 1. Reject directions that are
        // (numerically) dependent on the stored space — keeping them would
        // make the projection coefficients ill-conditioned.
        let anorm2 = dp.dot(&ax, &x, comm);
        if anorm2 <= 1e-12 * anorm2_before {
            return; // direction already represented
        }
        let scale = 1.0 / anorm2.sqrt();
        for k in 0..self.n {
            x[k] *= scale;
            ax[k] *= scale;
        }
        self.basis.push(x);
        self.images.push(ax);
    }

    /// Drop all stored directions (e.g. after a time-step-size change that
    /// alters the operator).
    pub fn clear(&mut self) {
        self.basis.clear();
        self.images.clear();
    }

    /// Stored basis vectors (checkpoint serialization).
    pub fn basis(&self) -> &[Vec<f64>] {
        &self.basis
    }

    /// Stored operator images (checkpoint serialization).
    pub fn images(&self) -> &[Vec<f64>] {
        &self.images
    }

    /// Maximum number of stored directions.
    pub fn max_vecs(&self) -> usize {
        self.max_vecs
    }

    /// Replace the stored space wholesale (checkpoint restore). Returns
    /// `false` — leaving the space untouched — when the shapes do not
    /// match this projection's configuration.
    pub fn restore(&mut self, basis: Vec<Vec<f64>>, images: Vec<Vec<f64>>) -> bool {
        if basis.len() != images.len() || basis.len() > self.max_vecs {
            return false;
        }
        if basis.iter().chain(images.iter()).any(|v| v.len() != self.n) {
            return false;
        }
        self.basis = basis;
        self.images = images;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krylov::pcg;
    use rbx_comm::SingleComm;

    /// Dense SPD operator for testing: tridiag(−1, 4, −1).
    fn apply(x: &[f64], y: &mut [f64]) {
        let n = x.len();
        for i in 0..n {
            let mut acc = 4.0 * x[i];
            if i > 0 {
                acc -= x[i - 1];
            }
            if i + 1 < n {
                acc -= x[i + 1];
            }
            y[i] = acc;
        }
    }

    fn solve_with_projection(
        proj: &mut SolutionProjection,
        b: &[f64],
        dp: &DotProduct,
        comm: &SingleComm,
    ) -> (Vec<f64>, usize) {
        let n = b.len();
        let mut rhs = b.to_vec();
        let mut x0 = vec![0.0; n];
        proj.project_out(&mut rhs, &mut x0, dp, comm);
        let mut dx = vec![0.0; n];
        let stats = pcg(
            apply,
            |r, z| z.copy_from_slice(r),
            |a, c| dp.dot(a, c, comm),
            &rhs,
            &mut dx,
            1e-11,
            0.0,
            500,
        );
        let mut adx = vec![0.0; n];
        apply(&dx, &mut adx);
        proj.absorb(&dx, &adx, dp, comm);
        let x: Vec<f64> = x0.iter().zip(&dx).map(|(a, b)| a + b).collect();
        (x, stats.iterations)
    }

    #[test]
    fn projection_cuts_iterations_for_slowly_varying_rhs() {
        let n = 120;
        let comm = SingleComm::new();
        let dp = DotProduct::new(&vec![1.0; n]);
        let mut proj = SolutionProjection::new(n, 8);
        // Slowly drifting rhs sequence (like pressure rhs over time steps).
        let rhs_at = |t: f64| -> Vec<f64> {
            (0..n)
                .map(|i| {
                    let x = i as f64 / n as f64;
                    (std::f64::consts::PI * x).sin() + 0.05 * (t + 3.0 * x).sin()
                })
                .collect()
        };
        let (_, first_iters) = solve_with_projection(&mut proj, &rhs_at(0.0), &dp, &comm);
        let mut later = Vec::new();
        for step in 1..6 {
            let (x, iters) =
                solve_with_projection(&mut proj, &rhs_at(step as f64 * 0.1), &dp, &comm);
            // Verify the combined solution actually solves the system.
            let mut ax = vec![0.0; n];
            apply(&x, &mut ax);
            let b = rhs_at(step as f64 * 0.1);
            let res: f64 = ax
                .iter()
                .zip(&b)
                .map(|(a, bv)| (a - bv) * (a - bv))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-8, "step {step}: residual {res}");
            later.push(iters);
        }
        let avg_later = later.iter().sum::<usize>() as f64 / later.len() as f64;
        assert!(
            avg_later < first_iters as f64 * 0.7,
            "projection did not help: first {first_iters}, later {later:?}"
        );
    }

    #[test]
    fn projection_exact_for_repeated_rhs() {
        let n = 50;
        let comm = SingleComm::new();
        let dp = DotProduct::new(&vec![1.0; n]);
        let mut proj = SolutionProjection::new(n, 4);
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let (_, first) = solve_with_projection(&mut proj, &b, &dp, &comm);
        let (x, second) = solve_with_projection(&mut proj, &b, &dp, &comm);
        assert!(first > 0);
        assert!(second <= 1, "repeated rhs still took {second} iterations");
        let mut ax = vec![0.0; n];
        apply(&x, &mut ax);
        for (a, bv) in ax.iter().zip(&b) {
            assert!((a - bv).abs() < 1e-8);
        }
    }

    #[test]
    fn restart_when_full_keeps_solving() {
        let n = 40;
        let comm = SingleComm::new();
        let dp = DotProduct::new(&vec![1.0; n]);
        let mut proj = SolutionProjection::new(n, 2); // tiny space forces restarts
        for step in 0..6 {
            let b: Vec<f64> = (0..n).map(|i| ((i + step) as f64 * 0.3).sin()).collect();
            let (x, _) = solve_with_projection(&mut proj, &b, &dp, &comm);
            let mut ax = vec![0.0; n];
            apply(&x, &mut ax);
            let res: f64 = ax
                .iter()
                .zip(&b)
                .map(|(a, bv)| (a - bv) * (a - bv))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-8, "step {step}: residual {res}");
            assert!(proj.len() <= 2);
        }
    }

    #[test]
    fn empty_space_is_noop() {
        let n = 10;
        let comm = SingleComm::new();
        let dp = DotProduct::new(&vec![1.0; n]);
        let proj = SolutionProjection::new(n, 4);
        let mut b = vec![1.0; n];
        let mut x0 = vec![9.0; n];
        let removed = proj.project_out(&mut b, &mut x0, &dp, &comm);
        assert_eq!(removed, 0.0);
        assert!(x0.iter().all(|&v| v == 0.0));
        assert!(b.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn zero_capacity_absorbs_nothing() {
        let n = 10;
        let comm = SingleComm::new();
        let dp = DotProduct::new(&vec![1.0; n]);
        let mut proj = SolutionProjection::new(n, 0);
        let dx = vec![1.0; n];
        let mut adx = vec![0.0; n];
        apply(&dx, &mut adx);
        proj.absorb(&dx, &adx, &dp, &comm);
        assert!(proj.is_empty());
    }
}
