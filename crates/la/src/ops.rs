//! Vector kernels and the rank-aware inner product.
//!
//! Fields are stored element-locally with shared nodes duplicated, so the
//! global inner product weights each local entry by the inverse of its
//! multiplicity before the cross-rank reduction — the same `1/mult`
//! weighting the production code applies in its Krylov kernels.

use rbx_basis::simd;
use rbx_comm::Communicator;
use rbx_device::{loop_chunk, reduce_chunk, tuning, RangePtr, WorkerPool};
use std::sync::Arc;

/// Element-wise layout of a duplicated-node field: which global elements
/// this rank holds (ascending global ids), how many nodes each carries,
/// and the global element count.
///
/// Canonical reductions built on this layout compute one partial sum per
/// *global* element, combine them with an element-wise allreduce, and fold
/// the combined partials sequentially in global-element-id order. Each
/// global element lives on exactly one rank, so every slot of the
/// allreduce adds a value to zeros only (`0 + x` reproduces `x`'s bits
/// exactly), and the final fold visits the same values in the same order
/// on every rank count. The result bits are therefore *independent of the
/// partitioning* — the foundation of the elastic-restart determinism
/// contract (a run restarted on M ranks must be byte-identical to an
/// uninterrupted M-rank run).
#[derive(Debug, Clone)]
pub struct ElemLayout {
    /// Nodes per element for this discretization (`(p+1)³`).
    pub n_per: usize,
    /// Global element id of each local element, ascending.
    pub gids: Vec<usize>,
    /// Global element count across all ranks.
    pub nelem_global: usize,
}

impl ElemLayout {
    /// Build a layout; `gids` must be strictly ascending (the local
    /// element order every production partitioner produces).
    pub fn new(n_per: usize, gids: Vec<usize>, nelem_global: usize) -> Self {
        debug_assert!(
            gids.windows(2).all(|w| w[0] < w[1]),
            "ElemLayout gids must be strictly ascending"
        );
        debug_assert!(gids.iter().all(|&g| g < nelem_global));
        Self {
            n_per,
            gids,
            nelem_global,
        }
    }

    /// Local node count (`n_per · |gids|`).
    pub fn n_local(&self) -> usize {
        self.n_per * self.gids.len()
    }

    /// Canonically reduce `k` simultaneous sums. `partial` is a row-major
    /// `k × nelem_global` buffer holding this rank's per-element partial
    /// sums scattered by global element id (zero in every slot this rank
    /// does not own). Returns the `k` rank-count-invariant totals.
    // audit:allow(hot-alloc): k result cells plus comm staging, bounded by vector count not field size
    pub fn fold_sums(&self, partial: &mut [f64], k: usize, comm: &dyn Communicator) -> Vec<f64> {
        debug_assert_eq!(partial.len(), k * self.nelem_global);
        if comm.size() > 1 {
            comm.allreduce_sum(partial);
        }
        (0..k)
            .map(|row| {
                let lo = row * self.nelem_global;
                let mut acc = 0.0;
                for &v in &partial[lo..lo + self.nelem_global] {
                    acc += v;
                }
                acc
            })
            .collect()
    }
}

/// `y ← a·x + y` (SIMD-dispatched, fused rounding per element).
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    simd::axpy(a, x, y);
}

/// Pooled `y ← a·x + y`: chunk ranges write disjointly and the SIMD
/// kernel is pointwise (subrange-safe), so the result is bitwise
/// identical to [`axpy`] for every thread count. Work below the tuned
/// `elemwise_len` crossover runs inline (same bits, no dispatch cost).
pub fn axpy_with(a: f64, x: &[f64], y: &mut [f64], pool: &WorkerPool) {
    debug_assert_eq!(x.len(), y.len());
    let n = y.len();
    let yp = RangePtr::new(y);
    let gate = tuning().elemwise_len;
    pool.for_each_range_min(n, loop_chunk(n, pool.threads()), gate, |start, end| {
        // SAFETY: chunk ranges are pairwise disjoint.
        let ysub = unsafe { yp.range_mut(start, end) };
        simd::axpy(a, &x[start..end], ysub);
    });
}

/// Pooled `y ← x + b·y` (see [`xpby`]); bitwise identical to the serial
/// form for every thread count, grain-gated at `elemwise_len`.
pub fn xpby_with(x: &[f64], b: f64, y: &mut [f64], pool: &WorkerPool) {
    debug_assert_eq!(x.len(), y.len());
    let n = y.len();
    let yp = RangePtr::new(y);
    let gate = tuning().elemwise_len;
    pool.for_each_range_min(n, loop_chunk(n, pool.threads()), gate, |start, end| {
        // SAFETY: chunk ranges are pairwise disjoint.
        let ysub = unsafe { yp.range_mut(start, end) };
        simd::xpby(&x[start..end], b, ysub);
    });
}

/// `y ← x + b·y` (useful for CG direction updates; SIMD-dispatched).
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    simd::xpby(x, b, y);
}

/// `y ← x`.
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// `x ← a·x`.
pub fn scale(a: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= a;
    }
}

/// Element-wise product `y ← x ∘ y` (SIMD-dispatched).
pub fn hadamard(x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    simd::hadamard(x, y);
}

/// Pooled element-wise product `y ← x ∘ y`; bitwise identical to
/// [`hadamard`] for every thread count (disjoint chunk writes),
/// grain-gated at `elemwise_len`.
pub fn hadamard_with(x: &[f64], y: &mut [f64], pool: &WorkerPool) {
    debug_assert_eq!(x.len(), y.len());
    let n = y.len();
    let yp = RangePtr::new(y);
    let gate = tuning().elemwise_len;
    pool.for_each_range_min(n, loop_chunk(n, pool.threads()), gate, |start, end| {
        // SAFETY: chunk ranges are pairwise disjoint.
        let ysub = unsafe { yp.range_mut(start, end) };
        simd::hadamard(&x[start..end], ysub);
    });
}

/// Globally consistent inner product over duplicated-node storage.
pub struct DotProduct {
    /// Inverse multiplicity per local node.
    mult_inv: Vec<f64>,
    /// Optional element layout. When set, [`DotProduct::dot`] reduces
    /// canonically (per-element partials folded in global-element order),
    /// making the bits independent of the rank count; when unset it keeps
    /// the legacy flat local sum + scalar allreduce.
    layout: Option<Arc<ElemLayout>>,
}

impl DotProduct {
    /// Build from node multiplicities (from
    /// [`rbx_gs::GatherScatter::multiplicity`]).
    pub fn new(mult: &[f64]) -> Self {
        Self {
            mult_inv: mult.iter().map(|&m| 1.0 / m).collect(),
            layout: None,
        }
    }

    /// Build with an element layout for canonical (rank-count-invariant)
    /// reductions.
    pub fn with_layout(mult: &[f64], layout: Arc<ElemLayout>) -> Self {
        debug_assert_eq!(mult.len(), layout.n_local());
        Self {
            mult_inv: mult.iter().map(|&m| 1.0 / m).collect(),
            layout: Some(layout),
        }
    }

    /// The element layout, if canonical reductions are enabled.
    pub fn layout(&self) -> Option<&Arc<ElemLayout>> {
        self.layout.as_ref()
    }

    /// Local length.
    pub fn len(&self) -> usize {
        self.mult_inv.len()
    }

    /// True if the vector space is empty.
    pub fn is_empty(&self) -> bool {
        self.mult_inv.is_empty()
    }

    /// Global `⟨a, b⟩ = Σ_unique a·b`, reduced across ranks. With an
    /// [`ElemLayout`] attached the reduction is canonical: the result bits
    /// are identical for every partitioning of the same global mesh.
    pub fn dot(&self, a: &[f64], b: &[f64], comm: &dyn Communicator) -> f64 {
        debug_assert_eq!(a.len(), self.mult_inv.len());
        debug_assert_eq!(b.len(), self.mult_inv.len());
        match &self.layout {
            Some(l) => {
                let e = l.nelem_global;
                let np = l.n_per;
                // audit:allow(hot-alloc): canonical-reduction scatter buffer is sized by the global element count and owned per call; hoisting it into &self would need interior mutability on a handle shared across the Schwarz overlap threads
                let mut partial = vec![0.0; e];
                for (le, &ge) in l.gids.iter().enumerate() {
                    let lo = le * np;
                    partial[ge] = simd::dot3(
                        &a[lo..lo + np],
                        &b[lo..lo + np],
                        &self.mult_inv[lo..lo + np],
                    );
                }
                l.fold_sums(&mut partial, 1, comm)[0]
            }
            None => {
                let local = simd::dot3(a, b, &self.mult_inv);
                rbx_comm::allreduce_scalar(comm, local)
            }
        }
    }

    /// Global L² norm.
    pub fn norm(&self, a: &[f64], comm: &dyn Communicator) -> f64 {
        self.dot(a, a, comm).sqrt()
    }

    /// Pooled global inner product. The chunk partition is a function of
    /// the vector length only ([`rbx_device::reduce_chunk`]) and partials
    /// combine in index order, so the result bits are identical for every
    /// thread count — though not to the unchunked serial [`DotProduct::dot`]
    /// (a different, equally valid summation order). A solve must use one
    /// variant throughout to stay bitwise reproducible.
    pub fn dot_with(
        &self,
        a: &[f64],
        b: &[f64],
        pool: &WorkerPool,
        comm: &dyn Communicator,
    ) -> f64 {
        debug_assert_eq!(a.len(), self.mult_inv.len());
        debug_assert_eq!(b.len(), self.mult_inv.len());
        let n = self.mult_inv.len();
        let w = &self.mult_inv;
        let local = pool.sum_range_min(n, reduce_chunk(n), tuning().dot_len, |start, end| {
            simd::dot3(&a[start..end], &b[start..end], &w[start..end])
        });
        rbx_comm::allreduce_scalar(comm, local)
    }

    /// Pooled global L² norm (same determinism contract as
    /// [`DotProduct::dot_with`]).
    pub fn norm_with(&self, a: &[f64], pool: &WorkerPool, comm: &dyn Communicator) -> f64 {
        self.dot_with(a, a, pool, comm).sqrt()
    }

    /// Global number of unique degrees of freedom (`Σ 1/mult`).
    pub fn unique_dofs(&self, comm: &dyn Communicator) -> f64 {
        let local: f64 = self.mult_inv.iter().sum();
        rbx_comm::allreduce_scalar(comm, local)
    }

    /// Inverse multiplicities (the `1/mult` weights).
    pub fn weights(&self) -> &[f64] {
        &self.mult_inv
    }
}

/// Subtract the weighted mean of `x` so that `Σ B·x = 0`; used to keep
/// pure-Neumann (pressure) iterates orthogonal to the constant null space.
/// `bw` are the diagonal-mass weights times inverse multiplicity.
pub fn ortho_project_mean(x: &mut [f64], bw: &[f64], comm: &dyn Communicator) {
    debug_assert_eq!(x.len(), bw.len());
    let mut sums = [0.0f64; 2];
    for (xi, wi) in x.iter().zip(bw) {
        sums[0] += xi * wi;
        sums[1] += wi;
    }
    comm.allreduce_sum(&mut sums);
    let mean = sums[0] / sums[1];
    for xi in x.iter_mut() {
        *xi -= mean;
    }
}

/// Canonical (rank-count-invariant) variant of [`ortho_project_mean`]:
/// both sums reduce per-element in global-element order, so the subtracted
/// mean — and therefore the projected field — has identical bits for every
/// partitioning of the same global mesh.
pub fn ortho_project_mean_layout(
    x: &mut [f64],
    bw: &[f64],
    layout: &ElemLayout,
    comm: &dyn Communicator,
) {
    debug_assert_eq!(x.len(), bw.len());
    debug_assert_eq!(x.len(), layout.n_local());
    let e = layout.nelem_global;
    let np = layout.n_per;
    // audit:allow(hot-alloc): canonical-reduction scatter buffer, one per projection; see DotProduct::dot
    let mut partial = vec![0.0; 2 * e];
    for (le, &ge) in layout.gids.iter().enumerate() {
        let lo = le * np;
        let (mut s0, mut s1) = (0.0, 0.0);
        for i in lo..lo + np {
            s0 += x[i] * bw[i];
            s1 += bw[i];
        }
        partial[ge] = s0;
        partial[e + ge] = s1;
    }
    let sums = layout.fold_sums(&mut partial, 2, comm);
    let mean = sums[0] / sums[1];
    for xi in x.iter_mut() {
        *xi -= mean;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbx_comm::SingleComm;

    #[test]
    fn axpy_and_xpby() {
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0, 36.0]);
        xpby(&x, 0.5, &mut y);
        assert_eq!(y, vec![7.0, 14.0, 21.0]);
    }

    #[test]
    fn dot_weights_shared_nodes() {
        // Two duplicated nodes with mult 2 count once.
        let mult = vec![1.0, 2.0, 2.0];
        let dp = DotProduct::new(&mult);
        let comm = SingleComm::new();
        let a = vec![3.0, 4.0, 4.0];
        // ⟨a,a⟩ = 9 + 16/2 + 16/2 = 25.
        assert!((dp.dot(&a, &a, &comm) - 25.0).abs() < 1e-14);
        assert!((dp.norm(&a, &comm) - 5.0).abs() < 1e-14);
        assert!((dp.unique_dofs(&comm) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn ortho_projection_removes_mean() {
        let comm = SingleComm::new();
        let bw = vec![1.0, 2.0, 1.0];
        let mut x = vec![1.0, 1.0, 5.0];
        ortho_project_mean(&mut x, &bw, &comm);
        let weighted: f64 = x.iter().zip(&bw).map(|(a, b)| a * b).sum();
        assert!(weighted.abs() < 1e-13);
    }

    #[test]
    fn pooled_elementwise_match_serial_bitwise() {
        let n = 3001;
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 31 % 97) as f64) * 0.01 - 0.5)
            .collect();
        let y0: Vec<f64> = (0..n)
            .map(|i| ((i * 17 % 89) as f64) * 0.02 - 0.9)
            .collect();
        for threads in [1usize, 4, 7] {
            let pool = WorkerPool::new(threads);
            let mut ys = y0.clone();
            let mut yp = y0.clone();
            axpy(1.3, &x, &mut ys);
            axpy_with(1.3, &x, &mut yp, &pool);
            assert_eq!(ys, yp, "axpy threads={threads}");
            xpby(&x, -0.7, &mut ys);
            xpby_with(&x, -0.7, &mut yp, &pool);
            assert_eq!(ys, yp, "xpby threads={threads}");
            hadamard(&x, &mut ys);
            hadamard_with(&x, &mut yp, &pool);
            assert_eq!(ys, yp, "hadamard threads={threads}");
        }
    }

    #[test]
    fn pooled_dot_deterministic_across_thread_counts() {
        let comm = SingleComm::new();
        let n = 5417;
        let mult = vec![1.0; n];
        let dp = DotProduct::new(&mult);
        let a: Vec<f64> = (0..n)
            .map(|i| ((i * 29 % 101) as f64) * 1e-2 - 0.5)
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 43 % 97) as f64) * 1e-2 - 0.4)
            .collect();
        let r1 = dp.dot_with(&a, &b, &WorkerPool::new(1), &comm);
        let r4 = dp.dot_with(&a, &b, &WorkerPool::new(4), &comm);
        let r7 = dp.dot_with(&a, &b, &WorkerPool::new(7), &comm);
        assert_eq!(r1.to_bits(), r4.to_bits());
        assert_eq!(r1.to_bits(), r7.to_bits());
        // And the value agrees with the serial variant to rounding.
        let serial = dp.dot(&a, &b, &comm);
        assert!((serial - r1).abs() <= 1e-12 * serial.abs().max(1.0));
    }

    #[test]
    fn hadamard_masks() {
        let m = vec![1.0, 0.0, 1.0];
        let mut y = vec![5.0, 6.0, 7.0];
        hadamard(&m, &mut y);
        assert_eq!(y, vec![5.0, 0.0, 7.0]);
    }

    #[test]
    fn canonical_dot_matches_legacy_value() {
        let comm = SingleComm::new();
        let n_per = 8;
        let nelem = 5;
        let n = n_per * nelem;
        let mult = vec![1.0; n];
        let layout = Arc::new(ElemLayout::new(n_per, (0..nelem).collect(), nelem));
        let dp_legacy = DotProduct::new(&mult);
        let dp_canon = DotProduct::with_layout(&mult, layout);
        let a: Vec<f64> = (0..n)
            .map(|i| ((i * 29 % 101) as f64) * 1e-2 - 0.5)
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 43 % 97) as f64) * 1e-2 - 0.4)
            .collect();
        let legacy = dp_legacy.dot(&a, &b, &comm);
        let canon = dp_canon.dot(&a, &b, &comm);
        assert!((legacy - canon).abs() <= 1e-12 * legacy.abs().max(1.0));
    }

    #[test]
    fn canonical_ortho_removes_weighted_mean() {
        let comm = SingleComm::new();
        let n_per = 4;
        let nelem = 3;
        let n = n_per * nelem;
        let layout = ElemLayout::new(n_per, (0..nelem).collect(), nelem);
        let bw: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        ortho_project_mean_layout(&mut x, &bw, &layout, &comm);
        let weighted: f64 = x.iter().zip(&bw).map(|(a, b)| a * b).sum();
        assert!(weighted.abs() < 1e-12);
    }
}
