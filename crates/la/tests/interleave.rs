//! Exhaustive interleaving verification of the overlapped Schwarz apply.
//!
//! The paper's §5.3 innovation runs the coarse-grid correction and the
//! element-local FDM sweep concurrently. `schwarz.rs` has a stress test
//! showing Serial and Overlapped agree bitwise *on the schedules the OS
//! happened to produce*; this test makes the stronger claim: the apply is
//! decomposed into its scheduling-relevant atomic steps (coarse restrict /
//! solve / prolong on one thread, the FDM sweep on another, the combine
//! gated on both) and **every** interleaving is executed by the
//! deterministic schedule explorer. All schedules must complete (no
//! deadlock) and produce one bitwise-identical result, equal to what both
//! real execution modes compute.

use rbx_comm::{Communicator, SingleComm};
use rbx_device::explore::{
    count_interleavings, explore, fingerprint_f64, StepStatus, ThreadProgram,
};
use rbx_gs::{GatherScatter, GsOp};
use rbx_la::bc::dirichlet_mask;
use rbx_la::coarse::CoarseGrid;
use rbx_la::fdm::ElementFdm;
use rbx_la::ops::hadamard;
use rbx_la::schwarz::{SchwarzMg, SchwarzMode};
use rbx_mesh::generators::box_mesh;
use rbx_mesh::{BoundaryTag, GeomFactors};
use std::sync::Arc;

const ALL_WALLS: [BoundaryTag; 3] = [
    BoundaryTag::Wall,
    BoundaryTag::HotWall,
    BoundaryTag::ColdWall,
];

/// Shared state of the modelled apply: the buffers both tasks touch plus
/// the completion flags the combine step waits on.
struct ApplyState {
    r_coarse: Vec<f64>,
    z0: Vec<f64>,
    z_coarse: Vec<f64>,
    z_fine: Vec<f64>,
    coarse_done: bool,
    fine_done: bool,
    z: Vec<f64>,
}

#[test]
fn every_interleaving_of_overlapped_schwarz_is_bitwise_identical() {
    let p = 4;
    let mesh = box_mesh(3, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
    let comm = SingleComm::new();
    let part = vec![0usize; mesh.num_elements()];
    let my: Vec<usize> = (0..mesh.num_elements()).collect();
    let geom = GeomFactors::new(&mesh, p);
    let gs = Arc::new(GatherScatter::build(&mesh, p, &part, &my, &comm));
    let mask = dirichlet_mask(&mesh, p, &my, &ALL_WALLS, &gs, &comm);
    let mult = gs.multiplicity(&comm);
    let wt: Vec<f64> = mult.iter().map(|&m| 1.0 / m).collect();
    let fdm = ElementFdm::new(&geom);
    let coarse = CoarseGrid::build(&mesh, p, &part, &my, &ALL_WALLS, &comm);
    let n = geom.total_nodes();
    let nc = coarse.len();

    // An assembled, masked residual (same construction as the schwarz.rs
    // bitwise test).
    let mut r: Vec<f64> = (0..n).map(|i| ((i * 29 % 23) as f64) - 11.0).collect();
    gs.apply(&mut r, GsOp::Add, &comm);
    hadamard(&mask, &mut r);
    let rw: Vec<f64> = r.iter().zip(&wt).map(|(v, w)| v * w).collect();

    // Reference: both real execution modes of the assembled preconditioner.
    let schwarz = SchwarzMg::new(
        ElementFdm::new(&geom),
        CoarseGrid::build(&mesh, p, &part, &my, &ALL_WALLS, &comm),
        gs.clone(),
        &mult,
        mask.clone(),
        &geom.mass,
        1.0,
        0.0,
    );
    let mut z_serial = vec![0.0; n];
    let mut z_overlap = vec![0.0; n];
    schwarz.apply(&r, &mut z_serial, SchwarzMode::Serial, &comm);
    schwarz.apply(&r, &mut z_overlap, SchwarzMode::Overlapped, &comm);
    let fp_serial = fingerprint_f64(&z_serial);
    let fp_overlap = fingerprint_f64(&z_overlap);
    assert_eq!(fp_serial, fp_overlap, "execution modes must agree bitwise");

    // The modelled apply: coarse = restrict → solve → prolong (the helper
    // thread of SchwarzMode::Overlapped), fine = the FDM sweep (the
    // calling thread), combine = gs-average + sum + mask, gated on both.
    let coarse_ref = &coarse;
    let fdm_ref = &fdm;
    let gs_ref = &gs;
    let comm_ref: &dyn Communicator = &comm;
    let rw_ref = &rw;
    let wt_ref = &wt;
    let mask_ref = &mask;

    let report = explore(
        move || {
            let state = ApplyState {
                r_coarse: vec![0.0; nc],
                z0: vec![0.0; nc],
                z_coarse: vec![0.0; n],
                z_fine: vec![0.0; n],
                coarse_done: false,
                fine_done: false,
                z: vec![0.0; n],
            };
            let mut restrict_scratch = rbx_basis::TensorScratch::new();
            let mut prolong_scratch = rbx_basis::TensorScratch::new();
            let coarse_task = ThreadProgram::new("coarse")
                .run(move |s: &mut ApplyState| {
                    coarse_ref.restrict(rw_ref, &mut s.r_coarse, &mut restrict_scratch, comm_ref);
                })
                .run(move |s: &mut ApplyState| {
                    coarse_ref.solve(&s.r_coarse, &mut s.z0, comm_ref);
                })
                .run(move |s: &mut ApplyState| {
                    coarse_ref.prolong_add(&s.z0, &mut s.z_coarse, &mut prolong_scratch);
                    s.coarse_done = true;
                });
            let fine_task = ThreadProgram::new("fine").run(move |s: &mut ApplyState| {
                fdm_ref.apply_add(rw_ref, &mut s.z_fine, 1.0, 0.0);
                s.fine_done = true;
            });
            let combine_task = ThreadProgram::new("combine").step(move |s: &mut ApplyState| {
                if !(s.coarse_done && s.fine_done) {
                    return StepStatus::Blocked; // the scope-join barrier
                }
                for (v, w) in s.z_fine.iter_mut().zip(wt_ref) {
                    *v *= w;
                }
                gs_ref.apply(&mut s.z_fine, GsOp::Add, comm_ref);
                for i in 0..s.z.len() {
                    s.z[i] = s.z_coarse[i] + s.z_fine[i];
                }
                hadamard(mask_ref, &mut s.z);
                StepStatus::Ran
            });
            (state, vec![coarse_task, fine_task, combine_task])
        },
        |s| fingerprint_f64(&s.z),
        10_000,
    );

    // Deadlock-free, exhaustive, and one single outcome…
    assert!(report.is_deterministic(), "{report:?}");
    assert_eq!(report.deadlocks, 0);
    // …over every placement of the fine sweep among the three coarse
    // stages (the combine is pinned last by its guard, so the free choices
    // are the interleavings of 3 coarse steps with 1 fine step).
    assert_eq!(report.schedules as u128, count_interleavings(&[3, 1]));
    // …and that outcome is bitwise what both real execution modes compute.
    assert_eq!(report.outcomes, vec![fp_serial]);
}
