//! # RBX — spectral-element Rayleigh-Bénard DNS in Rust
//!
//! A from-scratch reproduction of the system described in *"Exploring the
//! Ultimate Regime of Turbulent Rayleigh-Bénard Convection Through
//! Unprecedented Spectral-Element Simulations"* (Jansson et al., SC '23):
//! a Neko-style matrix-free spectral-element solver for Boussinesq
//! convection with a task-overlapped hybrid Schwarz pressure
//! preconditioner, in-situ spectral compression and streaming POD, and the
//! benchmark workflow reproducing the paper's evaluation.
//!
//! This facade re-exports the public API of every subsystem crate:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`basis`] | `rbx-basis` | quadrature, Lagrange/Legendre, tensor kernels |
//! | [`mesh`] | `rbx-mesh` | hex meshes, cylinder o-grid, metrics, partitioning |
//! | [`comm`] | `rbx-comm` | Communicator trait, thread-backed ranks |
//! | [`gs`] | `rbx-gs` | two-phase gather-scatter |
//! | [`la`] | `rbx-la` | Helmholtz operator, Krylov, Schwarz preconditioner |
//! | [`device`] | `rbx-device` | host/pool backends, virtual GPU with streams |
//! | [`core`] | `rbx-core` | the RBC solver: splitting scheme, observables |
//! | [`compress`] | `rbx-compress` | modal truncation + lossless codecs |
//! | [`io`] | `rbx-io` | BPL container, async + staging engines |
//! | [`insitu`] | `rbx-insitu` | streaming POD |
//! | [`perf`] | `rbx-perf` | LUMI/Leonardo models, scaling, Nu(Ra) regimes |
//! | [`telemetry`] | `rbx-telemetry` | span tracer, metrics registry, JSONL/Prometheus export |
//! | [`obs`] | `rbx-obs` | cross-rank timeline merge, health detectors, live export |
//!
//! ## Quickstart
//!
//! ```
//! use rbx::core::{Simulation, SolverConfig};
//! use rbx::comm::SingleComm;
//!
//! let case = rbx::core::rbc_box_case(1.0, 2, 2, false, 1);
//! let comm = SingleComm::new();
//! let cfg = SolverConfig { ra: 1e4, order: 3, dt: 2e-3, ..Default::default() };
//! let mut sim = Simulation::new(cfg, &case.mesh, &case.part, case.elems[0].clone(), &comm);
//! sim.init_rbc();
//! let stats = sim.step();
//! assert!(stats.converged);
//! ```

pub use rbx_basis as basis;
pub use rbx_comm as comm;
pub use rbx_compress as compress;
pub use rbx_core as core;
pub use rbx_device as device;
pub use rbx_gs as gs;
pub use rbx_insitu as insitu;
pub use rbx_io as io;
pub use rbx_la as la;
pub use rbx_mesh as mesh;
pub use rbx_obs as obs;
pub use rbx_perf as perf;
pub use rbx_telemetry as telemetry;
