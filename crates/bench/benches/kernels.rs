//! Criterion microbenchmarks of the solver's hot kernels: tensor-product
//! operator apply, gather-scatter, and the Schwarz preconditioner in both
//! execution modes (the Fig. 2 comparison as a statistical benchmark).

use criterion::{criterion_group, criterion_main, Criterion};
use rbx::comm::SingleComm;
use rbx::gs::{GatherScatter, GsOp};
use rbx::la::bc::dirichlet_mask;
use rbx::la::helmholtz::{HelmholtzOp, HelmholtzScratch};
use rbx::la::ops::hadamard;
use rbx::la::{CoarseGrid, ElementFdm, SchwarzMg, SchwarzMode};
use rbx::mesh::generators::box_mesh;
use rbx::mesh::{BoundaryTag, GeomFactors};
use std::hint::black_box;
use std::sync::Arc;

const ALL: [BoundaryTag; 3] = [
    BoundaryTag::Wall,
    BoundaryTag::HotWall,
    BoundaryTag::ColdWall,
];

struct Fixture {
    geom: GeomFactors,
    gs: Arc<GatherScatter>,
    mask: Vec<f64>,
    comm: SingleComm,
    schwarz: SchwarzMg,
    u: Vec<f64>,
}

fn fixture(p: usize, nx: usize) -> Fixture {
    let mesh = box_mesh(nx, nx, nx, [0., 1.], [0., 1.], [0., 1.], false, false);
    let comm = SingleComm::new();
    let part = vec![0; mesh.num_elements()];
    let my: Vec<usize> = (0..mesh.num_elements()).collect();
    let geom = GeomFactors::new(&mesh, p);
    let gs = Arc::new(GatherScatter::build(&mesh, p, &part, &my, &comm));
    let mask = dirichlet_mask(&mesh, p, &my, &ALL, &gs, &comm);
    let mult = gs.multiplicity(&comm);
    let fdm = ElementFdm::new(&geom);
    let coarse = CoarseGrid::build(&mesh, p, &part, &my, &[], &comm);
    let schwarz = SchwarzMg::new(
        fdm,
        coarse,
        gs.clone(),
        &mult,
        vec![1.0; geom.total_nodes()],
        &geom.mass,
        1.0,
        0.0,
    );
    let n = geom.total_nodes();
    let mut u: Vec<f64> = (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
    gs.apply(&mut u, GsOp::Add, &comm);
    Fixture {
        geom,
        gs,
        mask,
        comm,
        schwarz,
        u,
    }
}

fn bench_operator_apply(c: &mut Criterion) {
    // Paper production order: 7.
    let f = fixture(7, 3);
    let op = HelmholtzOp {
        geom: &f.geom,
        gs: &f.gs,
        mask: &f.mask,
        h1: 1.0,
        h2: 0.5,
    };
    let mut y = vec![0.0; f.u.len()];
    let mut scratch = HelmholtzScratch::default();
    c.bench_function("helmholtz_apply_p7_27elem", |b| {
        b.iter(|| {
            op.apply(black_box(&f.u), &mut y, &mut scratch, &f.comm);
            black_box(&y);
        })
    });
}

fn bench_operator_apply_pooled(c: &mut Criterion) {
    // Backend-parallel element loop; informative on multi-core hosts
    // (bitwise identical to the serial path by construction).
    let f = fixture(7, 3);
    let op = HelmholtzOp {
        geom: &f.geom,
        gs: &f.gs,
        mask: &f.mask,
        h1: 1.0,
        h2: 0.5,
    };
    let mut y = vec![0.0; f.u.len()];
    let pool = rbx::device::WorkerPool::auto();
    c.bench_function("helmholtz_apply_local_pooled_p7_27elem", |b| {
        b.iter(|| {
            op.apply_local_with(black_box(&f.u), &mut y, &pool);
            black_box(&y);
        })
    });
}

fn bench_gather_scatter(c: &mut Criterion) {
    let f = fixture(7, 3);
    let mut u = f.u.clone();
    c.bench_function("gather_scatter_add_p7_27elem", |b| {
        b.iter(|| {
            f.gs.apply(black_box(&mut u), GsOp::Add, &f.comm);
        })
    });
}

fn bench_schwarz_modes(c: &mut Criterion) {
    let f = fixture(7, 3);
    let mut r = f.u.clone();
    hadamard(&f.mask, &mut r);
    let mut z = vec![0.0; r.len()];
    let mut group = c.benchmark_group("schwarz_apply_p7_27elem");
    group.bench_function("serial", |b| {
        b.iter(|| {
            f.schwarz
                .apply(black_box(&r), &mut z, SchwarzMode::Serial, &f.comm);
            black_box(&z);
        })
    });
    group.bench_function("overlapped", |b| {
        b.iter(|| {
            f.schwarz
                .apply(black_box(&r), &mut z, SchwarzMode::Overlapped, &f.comm);
            black_box(&z);
        })
    });
    group.finish();
}

fn bench_fdm_sweep(c: &mut Criterion) {
    let f = fixture(7, 3);
    let fdm = ElementFdm::new(&f.geom);
    let mut z = vec![0.0; f.u.len()];
    c.bench_function("fdm_local_solves_p7_27elem", |b| {
        b.iter(|| {
            z.fill(0.0);
            fdm.apply_add(black_box(&f.u), &mut z, 1.0, 0.0);
            black_box(&z);
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_operator_apply, bench_operator_apply_pooled, bench_gather_scatter, bench_schwarz_modes, bench_fdm_sweep
}
criterion_main!(kernels);
