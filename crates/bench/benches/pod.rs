//! Criterion benchmarks of the streaming POD update (the per-snapshot
//! cost the in-situ consumer pays, paper §5.2).

use criterion::{criterion_group, criterion_main, Criterion};
use rbx::insitu::{PodBatch, StreamingPod};
use std::hint::black_box;

fn snapshots(n: usize, m: usize) -> Vec<Vec<f64>> {
    (0..m)
        .map(|t| {
            (0..n)
                .map(|i| {
                    let x = i as f64 / n as f64;
                    (2.0 * (0.4 * t as f64).cos()) * (std::f64::consts::PI * x).sin()
                        + (0.6 * t as f64).sin() * (4.0 * std::f64::consts::PI * x).sin()
                        + 0.1 * ((i * 7 + t * 13) % 97) as f64 / 97.0
                })
                .collect()
        })
        .collect()
}

fn bench_streaming_update(c: &mut Criterion) {
    let n = 13_824; // one rank's share of a production field
    let snaps = snapshots(n, 24);
    let w = vec![1.0 / n as f64; n];
    c.bench_function("streaming_pod_update_14k_rank16", |b| {
        b.iter(|| {
            let mut pod = StreamingPod::new(&w, 16);
            for s in &snaps {
                pod.update(black_box(s));
            }
            black_box(pod.rank())
        })
    });
}

fn bench_batch_pod(c: &mut Criterion) {
    let n = 13_824;
    let snaps = snapshots(n, 24);
    let w = vec![1.0 / n as f64; n];
    let comm = rbx::comm::SingleComm::new();
    c.bench_function("batch_pod_14k_24snaps", |b| {
        b.iter(|| {
            let pod = PodBatch::new(w.clone());
            black_box(pod.compute(black_box(&snaps), &comm))
        })
    });
}

criterion_group! {
    name = pod;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_streaming_update, bench_batch_pod
}
criterion_main!(pod);
