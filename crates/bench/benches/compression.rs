//! Criterion benchmarks of the compression pipeline (transform +
//! truncation + codecs), per Fig. 5's workload.

use criterion::{criterion_group, criterion_main, Criterion};
use rbx::basis::ModalBasis;
use rbx::compress::{compress_field, decompress_field, lossless_encode, Codec, CompressionConfig};
use rbx::mesh::generators::box_mesh;
use rbx::mesh::GeomFactors;
use std::hint::black_box;

fn turbulentish_field(geom: &GeomFactors) -> Vec<f64> {
    (0..geom.total_nodes())
        .map(|i| {
            let (x, y, z) = (geom.coords[0][i], geom.coords[1][i], geom.coords[2][i]);
            (7.0 * x).sin() * (5.0 * y).cos() * (3.0 * z).sin()
                + 0.3 * (13.0 * x + 11.0 * y).sin()
                + 0.05 * (29.0 * z).cos()
        })
        .collect()
}

fn bench_pipeline(c: &mut Criterion) {
    let mesh = box_mesh(3, 3, 3, [0., 1.], [0., 1.], [0., 1.], false, false);
    let geom = GeomFactors::new(&mesh, 7);
    let basis = ModalBasis::new(8);
    let field = turbulentish_field(&geom);
    let cfg = CompressionConfig::default();

    c.bench_function("compress_p7_27elem", |b| {
        b.iter(|| black_box(compress_field(black_box(&field), &geom, &basis, &cfg)))
    });

    let compressed = compress_field(&field, &geom, &basis, &cfg);
    c.bench_function("decompress_p7_27elem", |b| {
        b.iter(|| black_box(decompress_field(black_box(&compressed), &basis)))
    });
}

fn bench_codecs(c: &mut Criterion) {
    // Sparse bytes resembling the truncated bitmap+coefficient stream.
    let data: Vec<u8> = (0..262_144)
        .map(|i| if i % 17 == 0 { (i % 251) as u8 } else { 0 })
        .collect();
    let mut group = c.benchmark_group("lossless_encode_256k");
    for codec in [Codec::Rle, Codec::Range] {
        group.bench_function(&format!("{codec:?}"), |b| {
            b.iter(|| black_box(lossless_encode(codec, black_box(&data))))
        });
    }
    group.finish();
}

criterion_group! {
    name = compression;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(4));
    targets = bench_pipeline, bench_codecs
}
criterion_main!(compression);
