//! Shared helpers for the experiment binaries and criterion benches.
//!
//! Every paper table/figure has a binary in `src/bin/` (see DESIGN.md §4
//! for the experiment index); the helpers here build representative solver
//! states and handle output files under `target/experiments/`.

use rbx::comm::SingleComm;
use rbx::core::{CaseSetup, Simulation, SolverConfig};
use std::path::PathBuf;

/// Build a single-rank simulation whose borrowed inputs are leaked so the
/// `Simulation` can be returned from a helper (experiment binaries are
/// one-shot processes; the leak is intentional and bounded).
pub fn leaked_sim(case: CaseSetup, cfg: SolverConfig) -> Simulation<'static> {
    let case = Box::leak(Box::new(case));
    let comm = Box::leak(Box::new(SingleComm::new()));
    let all: Vec<usize> = (0..case.mesh.num_elements()).collect();
    let part = vec![0usize; case.mesh.num_elements()];
    let part = Box::leak(Box::new(part));
    let mut sim = Simulation::new(cfg, &case.mesh, part, all, comm);
    sim.init_rbc();
    sim
}

/// A developed laptop-scale RBC state: Γ = 2 box, Ra = 10⁵, run for
/// `steps` time steps from the seeded initial condition.
pub fn developed_box(order: usize, steps: usize) -> Simulation<'static> {
    let case = rbx::core::rbc_box_case(2.0, 3, 3, false, 1);
    let cfg = SolverConfig {
        ra: 1e5,
        order,
        dt: 2e-3,
        ic_noise: 0.05,
        ..Default::default()
    };
    let mut sim = leaked_sim(case, cfg);
    for _ in 0..steps {
        let st = sim.step();
        assert!(
            st.converged,
            "solver diverged while preparing state: {st:?}"
        );
    }
    sim
}

/// Output directory for experiment artifacts (`target/experiments/<name>`).
pub fn out_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from("target/experiments").join(name);
    std::fs::create_dir_all(&dir).expect("create experiment output dir");
    dir
}

/// Write CSV rows (with a header) to `path`.
pub fn write_csv(path: &std::path::Path, header: &str, rows: &[String]) {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create csv"));
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
}

/// Render a simple text timeline of vgpu trace events (Fig. 2 style),
/// bucketing each stream's kernel spans onto a character raster.
pub fn render_timeline(trace: &[rbx::device::TraceEvent], width: usize) -> String {
    render_timeline_unit(trace, width, "time units")
}

/// Like [`render_timeline`] with an explicit unit label for the span line
/// (vgpu traces are in seconds, device-simulator traces in µs).
pub fn render_timeline_unit(trace: &[rbx::device::TraceEvent], width: usize, unit: &str) -> String {
    if trace.is_empty() {
        return "(empty trace)".into();
    }
    let t0 = trace.iter().map(|e| e.start).fold(f64::MAX, f64::min);
    let t1 = trace.iter().map(|e| e.end).fold(f64::MIN, f64::max);
    let span = (t1 - t0).max(1e-12);
    let nstreams = trace.iter().map(|e| e.stream).max().unwrap_or(0) + 1;
    let mut rows = vec![vec![b'.'; width]; nstreams];
    for e in trace {
        let a = (((e.start - t0) / span) * (width - 1) as f64) as usize;
        let b = (((e.end - t0) / span) * (width - 1) as f64) as usize;
        let glyph = e.name.bytes().next().unwrap_or(b'#');
        for cell in &mut rows[e.stream][a..=b.min(width - 1)] {
            *cell = glyph;
        }
    }
    let mut out = String::new();
    for (s, row) in rows.iter().enumerate() {
        out.push_str(&format!("  stream {s}: "));
        out.push_str(std::str::from_utf8(row).unwrap());
        out.push('\n');
    }
    out.push_str(&format!("  (span: {span:.1} {unit})\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn developed_box_advances() {
        let sim = developed_box(3, 3);
        assert_eq!(sim.state.istep, 3);
    }

    #[test]
    fn timeline_renders_streams() {
        use rbx::device::TraceEvent;
        let trace = vec![
            TraceEvent {
                worker: 0,
                stream: 0,
                name: "a".into(),
                start: 0.0,
                end: 0.5,
            },
            TraceEvent {
                worker: 1,
                stream: 1,
                name: "b".into(),
                start: 0.2,
                end: 1.0,
            },
        ];
        let s = render_timeline(&trace, 40);
        assert!(s.contains("stream 0"));
        assert!(s.contains("stream 1"));
        assert!(s.contains('a'));
        assert!(s.contains('b'));
    }
}
