//! **Fig. 5** — in-situ compression of a velocity field.
//!
//! The paper compresses a streamwise velocity field of an RBC run at
//! Ra = 10¹¹ to 3 % of its size (97 % reduction) with 2.5 % relative
//! weighted-L2 error, and recommends conservative production levels of
//! 85–90 % reduction. This experiment:
//!
//! 1. develops an RBC state with the real solver;
//! 2. sweeps the compressor's error bound and reports the
//!    reduction-vs-error curve, locating the paper's operating point and
//!    the conservative band;
//! 3. writes before/after mid-plane slices of the vertical velocity (the
//!    paper's visual comparison — "no appreciable differences").
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin fig5_compression [steps]
//! ```

use rbx::basis::ModalBasis;
use rbx::compress::{
    compress_field, decompress_field, weighted_l2_error, Codec, CompressionConfig,
};
use rbx::core::slice::{sample_slice, write_slice_csv, write_slice_ppm, SliceAxis};
use rbx_bench::{developed_box, out_dir, write_csv};

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    println!("Fig. 5 reproduction: lossy compression of a velocity field");
    println!("(developing the flow for {steps} steps first)\n");
    let sim = developed_box(6, steps);
    let basis = ModalBasis::new(sim.cfg.order + 1);
    let field = &sim.state.u[2]; // vertical velocity (the convective field)

    println!("error-bound sweep (16-bit quantization, range coder):");
    println!("  bound      kept     reduction   measured err");
    let mut rows = Vec::new();
    let mut paper_point: Option<(f64, f64, f64)> = None;
    for eps in [1e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1] {
        let cfg = CompressionConfig {
            error_bound: eps,
            quant_bits: Some(16),
            codec: Codec::Range,
        };
        let c = compress_field(field, &sim.geom, &basis, &cfg);
        let recon = decompress_field(&c, &basis);
        let err = weighted_l2_error(field, &recon, &sim.geom.mass);
        println!(
            "  {eps:<8.1e} {:>7.3} %   {:>7.2} %   {:>9.3} %",
            100.0 * c.kept_fraction,
            c.reduction_percent(),
            100.0 * err
        );
        rows.push(format!(
            "{eps},{},{},{}",
            c.kept_fraction,
            c.reduction_percent(),
            err
        ));
        if eps == 2.5e-2 {
            paper_point = Some((c.reduction_percent(), err, c.kept_fraction));
        }
    }

    let (reduction, err, kept) = paper_point.expect("paper operating point in sweep");
    println!("\npaper operating point (error bound 2.5 %):");
    println!(
        "  reduction {reduction:.1} % at measured error {:.2} % (kept {:.2} % of modes)",
        100.0 * err,
        100.0 * kept
    );
    println!("  paper: 97 % reduction at 2.5 % relative error — shape check: ");
    println!(
        "  {} (≥ 90 % reduction while respecting the bound)",
        if reduction >= 90.0 && err <= 0.03 {
            "PASS"
        } else {
            "DIFFERS"
        }
    );
    println!("\nconservative band (paper: 85–90 % reduction for high-fidelity post-processing):");
    // Find the error bounds bracketing 85–90 % reduction from the sweep.
    for row in &rows {
        let parts: Vec<&str> = row.split(',').collect();
        let red: f64 = parts[2].parse().unwrap();
        if (85.0..=92.0).contains(&red) {
            println!(
                "  bound {:>8} → reduction {red:.1} %, error {:.3} %",
                parts[0],
                100.0 * parts[3].parse::<f64>().unwrap()
            );
        }
    }

    // ---- visual comparison (2-D slice, original vs reconstructed) --------
    let dir = out_dir("fig5_compression");
    let cfg = CompressionConfig {
        error_bound: 2.5e-2,
        quant_bits: Some(16),
        codec: Codec::Range,
    };
    let c = compress_field(field, &sim.geom, &basis, &cfg);
    let recon = decompress_field(&c, &basis);
    let z0 = 0.5;
    let orig_slice = sample_slice(&sim.geom, field, SliceAxis::Y, 1.0);
    let recon_slice = sample_slice(&sim.geom, &recon, SliceAxis::Y, 1.0);
    write_slice_csv(&orig_slice, &dir.join("uz_original.csv")).unwrap();
    write_slice_csv(&recon_slice, &dir.join("uz_reconstructed.csv")).unwrap();
    write_slice_ppm(&orig_slice, 256, 128, &dir.join("uz_original.ppm")).unwrap();
    write_slice_ppm(&recon_slice, 256, 128, &dir.join("uz_reconstructed.ppm")).unwrap();
    let _ = z0;

    write_csv(
        &dir.join("fig5_sweep.csv"),
        "error_bound,kept_fraction,reduction_pct,measured_error",
        &rows,
    );
    println!("\nwrote sweep + before/after slices to {}", dir.display());
}
