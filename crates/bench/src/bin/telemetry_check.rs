//! **telemetry_check** — schema validator for telemetry artifacts.
//!
//! Validates `rbx.telemetry.v1` JSONL streams and `rbx.bench.v1` JSON
//! records against the in-repo schema (`rbx::telemetry::schema`). Used by
//! CI to guard the observability contract: every line a run emits must
//! parse and validate, or this tool exits non-zero.
//!
//! ```sh
//! telemetry_check --jsonl out/tel.jsonl --min-lines 10 --expect-kind step
//! telemetry_check --bench out/fig2_overlap/fig2.json
//! ```

use rbx::telemetry::json::Value;
use rbx::telemetry::schema::{validate_bench, validate_line};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    jsonl: Vec<PathBuf>,
    bench: Vec<PathBuf>,
    expect_kinds: Vec<String>,
    min_lines: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: telemetry_check [--jsonl FILE.jsonl]... [--bench FILE.json]... \
         [--expect-kind KIND]... [--min-lines N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        jsonl: Vec::new(),
        bench: Vec::new(),
        expect_kinds: Vec::new(),
        min_lines: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--jsonl" => args.jsonl.push(PathBuf::from(val())),
            "--bench" => args.bench.push(PathBuf::from(val())),
            "--expect-kind" => args.expect_kinds.push(val()),
            "--min-lines" => {
                args.min_lines = val().parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("telemetry_check: unknown flag {other}");
                usage();
            }
        }
    }
    if args.jsonl.is_empty() && args.bench.is_empty() {
        usage();
    }
    args
}

/// Validate one JSONL stream; returns per-kind record counts.
fn check_jsonl(path: &PathBuf, min_lines: usize) -> Result<BTreeMap<String, usize>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let mut kinds: BTreeMap<String, usize> = BTreeMap::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        lines += 1;
        let kind = Value::parse(line)
            .ok()
            .and_then(|v| v.get("kind").and_then(|k| k.as_str().map(String::from)))
            .unwrap_or_default();
        *kinds.entry(kind).or_insert(0) += 1;
    }
    if lines < min_lines {
        return Err(format!(
            "{}: only {lines} valid record(s), expected at least {min_lines}",
            path.display()
        ));
    }
    Ok(kinds)
}

fn check_bench(path: &PathBuf) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let v =
        Value::parse(text.trim()).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    validate_bench(&v).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(v.get("name")
        .and_then(|n| n.as_str().map(String::from))
        .unwrap_or_default())
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut failed = false;

    for path in &args.jsonl {
        match check_jsonl(path, args.min_lines) {
            Ok(kinds) => {
                let total: usize = kinds.values().sum();
                let detail = kinds
                    .iter()
                    .map(|(k, n)| format!("{k}={n}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                println!("ok   {} ({total} records: {detail})", path.display());
                for want in &args.expect_kinds {
                    if !kinds.contains_key(want) {
                        eprintln!("FAIL {}: no record of kind {want:?}", path.display());
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
            }
        }
    }

    for path in &args.bench {
        match check_bench(path) {
            Ok(name) => println!("ok   {} (bench record {name:?})", path.display()),
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
