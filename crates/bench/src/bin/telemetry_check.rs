//! **telemetry_check** — schema validator for telemetry artifacts.
//!
//! Validates `rbx.telemetry.v1` JSONL streams and `rbx.bench.v1` JSON
//! records against the in-repo schema (`rbx::telemetry::schema`). Used by
//! CI to guard the observability contract: every line a run emits must
//! parse and validate, or this tool exits non-zero.
//!
//! ```sh
//! telemetry_check --jsonl out/tel.jsonl --min-lines 10 --expect-kind step
//! telemetry_check --bench out/fig2_overlap/fig2.json
//! telemetry_check --flight out/flight/flight_r0_s17_shrink.jsonl
//! telemetry_check --timeline out/timeline.jsonl --health out/health.jsonl
//! telemetry_check --insitu out/tel.rank2.jsonl
//! ```

use rbx::telemetry::json::Value;
use rbx::telemetry::schema::{
    validate_bench, validate_flight_header, validate_health, validate_insitu, validate_line,
    validate_timeline_record, INSITU_SCHEMA,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    jsonl: Vec<PathBuf>,
    bench: Vec<PathBuf>,
    flight: Vec<PathBuf>,
    timeline: Vec<PathBuf>,
    health: Vec<PathBuf>,
    insitu: Vec<PathBuf>,
    expect_kinds: Vec<String>,
    min_lines: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: telemetry_check [--jsonl FILE.jsonl]... [--bench FILE.json]... \
         [--flight FILE.jsonl]... [--timeline FILE.jsonl]... [--health FILE.jsonl]... \
         [--insitu FILE.jsonl]... [--expect-kind KIND]... [--min-lines N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        jsonl: Vec::new(),
        bench: Vec::new(),
        flight: Vec::new(),
        timeline: Vec::new(),
        health: Vec::new(),
        insitu: Vec::new(),
        expect_kinds: Vec::new(),
        min_lines: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--jsonl" => args.jsonl.push(PathBuf::from(val())),
            "--bench" => args.bench.push(PathBuf::from(val())),
            "--flight" => args.flight.push(PathBuf::from(val())),
            "--timeline" => args.timeline.push(PathBuf::from(val())),
            "--health" => args.health.push(PathBuf::from(val())),
            "--insitu" => args.insitu.push(PathBuf::from(val())),
            "--expect-kind" => args.expect_kinds.push(val()),
            "--min-lines" => {
                args.min_lines = val().parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("telemetry_check: unknown flag {other}");
                usage();
            }
        }
    }
    if args.jsonl.is_empty()
        && args.bench.is_empty()
        && args.flight.is_empty()
        && args.timeline.is_empty()
        && args.health.is_empty()
        && args.insitu.is_empty()
    {
        usage();
    }
    args
}

/// Validate one JSONL stream; returns per-kind record counts.
fn check_jsonl(path: &PathBuf, min_lines: usize) -> Result<BTreeMap<String, usize>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let mut kinds: BTreeMap<String, usize> = BTreeMap::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        lines += 1;
        let kind = Value::parse(line)
            .ok()
            .and_then(|v| v.get("kind").and_then(|k| k.as_str().map(String::from)))
            .unwrap_or_default();
        *kinds.entry(kind).or_insert(0) += 1;
    }
    if lines < min_lines {
        return Err(format!(
            "{}: only {lines} valid record(s), expected at least {min_lines}",
            path.display()
        ));
    }
    Ok(kinds)
}

/// Validate an `rbx.flight.v1` post-mortem dump: one header line, then
/// ordinary telemetry records, with the header's count honest.
fn check_flight(path: &PathBuf) -> Result<usize, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (i, header) = lines
        .next()
        .ok_or_else(|| format!("{}: empty flight dump", path.display()))?;
    let hv = Value::parse(header)
        .map_err(|e| format!("{}:{}: invalid JSON: {e}", path.display(), i + 1))?;
    validate_flight_header(&hv).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
    let mut records = 0usize;
    for (i, line) in lines {
        validate_line(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        records += 1;
    }
    let declared = hv.get("records").and_then(Value::as_u64).unwrap_or(0) as usize;
    if declared != records {
        return Err(format!(
            "{}: header declares {declared} record(s), file has {records}",
            path.display()
        ));
    }
    Ok(records)
}

/// Validate every line of a one-schema JSONL stream with `validate`.
fn check_stream(
    path: &PathBuf,
    min_lines: usize,
    validate: impl Fn(&Value) -> Result<(), String>,
) -> Result<usize, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Value::parse(line)
            .map_err(|e| format!("{}:{}: invalid JSON: {e}", path.display(), i + 1))?;
        validate(&v).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
        lines += 1;
    }
    if lines < min_lines {
        return Err(format!(
            "{}: only {lines} valid record(s), expected at least {min_lines}",
            path.display()
        ));
    }
    Ok(lines)
}

fn check_bench(path: &PathBuf) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let v =
        Value::parse(text.trim()).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    validate_bench(&v).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(v.get("name")
        .and_then(|n| n.as_str().map(String::from))
        .unwrap_or_default())
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut failed = false;

    for path in &args.jsonl {
        match check_jsonl(path, args.min_lines) {
            Ok(kinds) => {
                let total: usize = kinds.values().sum();
                let detail = kinds
                    .iter()
                    .map(|(k, n)| format!("{k}={n}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                println!("ok   {} ({total} records: {detail})", path.display());
                for want in &args.expect_kinds {
                    if !kinds.contains_key(want) {
                        eprintln!("FAIL {}: no record of kind {want:?}", path.display());
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
            }
        }
    }

    for path in &args.flight {
        match check_flight(path) {
            Ok(n) => println!("ok   {} (flight dump, {n} records)", path.display()),
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
            }
        }
    }

    for path in &args.timeline {
        match check_stream(path, args.min_lines, validate_timeline_record) {
            Ok(n) => println!("ok   {} (timeline, {n} records)", path.display()),
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
            }
        }
    }

    for path in &args.health {
        // A healthy run emits no events; zero lines is a valid stream.
        match check_stream(path, 0, validate_health) {
            Ok(n) => println!("ok   {} (health, {n} events)", path.display()),
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
            }
        }
    }

    for path in &args.insitu {
        // A mixed per-rank stream is fine: only `rbx.insitu.v1` records
        // are held to the in-situ schema, but at least `--min-lines` of
        // them must be present (a silent analysis plane is a failure).
        let check = |path: &PathBuf| -> Result<usize, String> {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
            let mut insitu_lines = 0usize;
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let v = Value::parse(line)
                    .map_err(|e| format!("{}:{}: invalid JSON: {e}", path.display(), i + 1))?;
                if v.get("schema").and_then(Value::as_str) == Some(INSITU_SCHEMA) {
                    validate_insitu(&v)
                        .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
                    insitu_lines += 1;
                }
            }
            if insitu_lines < args.min_lines {
                return Err(format!(
                    "{}: only {insitu_lines} in-situ record(s), expected at least {}",
                    path.display(),
                    args.min_lines
                ));
            }
            Ok(insitu_lines)
        };
        match check(path) {
            Ok(n) => println!("ok   {} (in-situ, {n} records)", path.display()),
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
            }
        }
    }

    for path in &args.bench {
        match check_bench(path) {
            Ok(name) => println!("ok   {} (bench record {name:?})", path.display()),
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
