//! **bench_kernels** — serial vs pooled hot-kernel timings.
//!
//! Times the four kernels the persistent worker pool accelerates —
//! Helmholtz apply, solver dot product, gather-scatter local phase, and
//! the element-FDM batch sweep — at polynomial degrees 5, 7 and 9, serial
//! against pooled, and writes an `rbx.bench.v1` record (validated by
//! `telemetry_check --bench`).
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin bench_kernels -- \
//!     --quick --threads 4 --out BENCH_kernels.json --assert-speedup 2.0
//! ```
//!
//! `--assert-speedup X` exits non-zero if the pooled Helmholtz apply is
//! slower than `X`× serial at any degree — but only on hosts with at
//! least 4 cores, so single-core CI runners still validate the schema
//! and the bitwise agreement without a meaningless performance gate.

use rbx::comm::SingleComm;
use rbx::device::WorkerPool;
use rbx::gs::{GatherScatter, GsOp};
use rbx::la::helmholtz::{HelmholtzOp, HelmholtzScratch};
use rbx::la::ops::DotProduct;
use rbx::la::ElementFdm;
use rbx::mesh::generators::box_mesh;
use rbx::mesh::GeomFactors;
use rbx::telemetry::json::Value;
use rbx::telemetry::schema::{bench_record, validate_bench};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    quick: bool,
    threads: usize,
    out: PathBuf,
    assert_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: 4,
        out: PathBuf::from("BENCH_kernels.json"),
        assert_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("bench_kernels: missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--threads" => {
                args.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("bench_kernels: invalid --threads");
                    std::process::exit(2);
                })
            }
            "--out" => args.out = PathBuf::from(value("--out")),
            "--assert-speedup" => {
                args.assert_speedup = Some(value("--assert-speedup").parse().unwrap_or_else(|_| {
                    eprintln!("bench_kernels: invalid --assert-speedup");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!("flags: --quick --threads N --out FILE.json --assert-speedup X");
                std::process::exit(0);
            }
            other => {
                eprintln!("bench_kernels: unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if args.threads == 0 {
        eprintln!("bench_kernels: --threads must be at least 1");
        std::process::exit(2);
    }
    args
}

/// Best-of-`reps` wall time of `f`, in microseconds (one warmup call).
fn time_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = if args.quick { 5 } else { 30 };
    let pool = WorkerPool::new(args.threads);
    println!(
        "bench_kernels: {} host cores, pool of {} threads, {} reps{}",
        cores,
        pool.threads(),
        reps,
        if args.quick { " (quick)" } else { "" }
    );

    let comm = SingleComm::new();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut helmholtz_speedups: Vec<(usize, f64)> = Vec::new();

    for p in [5usize, 7, 9] {
        let mesh = box_mesh(3, 3, 3, [0., 1.], [0., 1.], [0., 1.], false, false);
        let part = vec![0usize; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        let geom = GeomFactors::new(&mesh, p);
        let n = geom.total_nodes();
        let u: Vec<f64> = (0..n)
            .map(|i| ((i * 31 % 97) as f64) * 0.01 - 0.4)
            .collect();
        let mask = vec![1.0; n];

        // Helmholtz local apply: serial vs pooled (bitwise identical).
        let gs = Arc::new(GatherScatter::build(&mesh, p, &part, &my, &comm));
        let op = HelmholtzOp {
            geom: &geom,
            gs: &gs,
            mask: &mask,
            h1: 1.0,
            h2: 0.5,
        };
        let mut y = vec![0.0; n];
        let mut scratch = HelmholtzScratch::default();
        let serial = time_us(reps, || op.apply_local(&u, &mut y, &mut scratch));
        let y_serial = y.clone();
        let pooled = time_us(reps, || op.apply_local_with(&u, &mut y, &pool));
        assert_eq!(y_serial, y, "pooled Helmholtz apply diverged at p={p}");
        let speedup = serial / pooled;
        helmholtz_speedups.push((p, speedup));
        rows.push(row("helmholtz_apply", p, serial, pooled));

        // Solver dot product (pooled bits are schedule-independent).
        let mult = gs.multiplicity(&comm);
        let dp = DotProduct::new(&mult);
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 17 % 89) as f64) * 0.02 - 0.9)
            .collect();
        let serial = time_us(reps, || {
            std::hint::black_box(dp.dot(&u, &b, &comm));
        });
        let pooled = time_us(reps, || {
            std::hint::black_box(dp.dot_with(&u, &b, &pool, &comm));
        });
        rows.push(row("dot_product", p, serial, pooled));

        // Gather-scatter local phase (pool handle is set-once, so the
        // pooled timing uses a second operator instance).
        let gs_pooled = GatherScatter::build(&mesh, p, &part, &my, &comm);
        gs_pooled.set_pool(&pool);
        let mut v = u.clone();
        let serial = time_us(reps, || gs.apply(&mut v, GsOp::Add, &comm));
        let mut v2 = u.clone();
        let pooled = time_us(reps, || gs_pooled.apply(&mut v2, GsOp::Add, &comm));
        rows.push(row("gs_local", p, serial, pooled));

        // Element-FDM batch sweep (the Schwarz fine level).
        let fdm = ElementFdm::new(&geom);
        let mut z = vec![0.0; n];
        let serial = time_us(reps, || {
            z.iter_mut().for_each(|x| *x = 0.0);
            fdm.apply_add(&u, &mut z, 1.0, 0.0);
        });
        let z_serial = z.clone();
        let pooled = time_us(reps, || {
            z.iter_mut().for_each(|x| *x = 0.0);
            fdm.apply_add_with(&u, &mut z, 1.0, 0.0, &pool);
        });
        assert_eq!(z_serial, z, "pooled FDM sweep diverged at p={p}");
        rows.push(row("fdm_batch", p, serial, pooled));
    }

    for r in &rows {
        let (k, p) = (r[0].as_str().unwrap_or("?"), r[1].as_f64().unwrap_or(0.0));
        let (s, q, x) = (
            r[2].as_f64().unwrap_or(0.0),
            r[3].as_f64().unwrap_or(0.0),
            r[4].as_f64().unwrap_or(0.0),
        );
        println!("  {k:<16} p={p:<2} serial {s:>9.1} us  pooled {q:>9.1} us  speedup {x:.2}x");
    }

    let record = bench_record(
        "bench_kernels",
        &["kernel", "p", "serial_us", "pooled_us", "speedup"],
        rows,
        vec![
            ("cores", Value::int(cores as u64)),
            ("threads", Value::int(pool.threads() as u64)),
            ("reps", Value::int(reps as u64)),
            ("quick", Value::int(u64::from(args.quick))),
        ],
    );
    validate_bench(&record).expect("bench record must self-validate");
    std::fs::write(&args.out, format!("{record}\n")).unwrap_or_else(|e| {
        eprintln!("bench_kernels: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    });
    println!("wrote {}", args.out.display());

    if let Some(min) = args.assert_speedup {
        if cores >= 4 {
            for (p, s) in &helmholtz_speedups {
                if *s < min {
                    eprintln!(
                        "bench_kernels: FAIL: pooled Helmholtz speedup {s:.2}x < {min}x at p={p} \
                         ({cores} cores, {} pool threads)",
                        pool.threads()
                    );
                    std::process::exit(1);
                }
            }
            println!("speedup gate passed (>= {min}x on {cores} cores)");
        } else {
            println!("speedup gate skipped: only {cores} core(s) available");
        }
    }
}

fn row(kernel: &str, p: usize, serial_us: f64, pooled_us: f64) -> Vec<Value> {
    vec![
        Value::str(kernel),
        Value::int(p as u64),
        Value::num(serial_us),
        Value::num(pooled_us),
        Value::num(serial_us / pooled_us),
    ]
}
