//! **bench_kernels** — serial vs pooled hot-kernel timings.
//!
//! Times the four kernels the persistent worker pool accelerates —
//! Helmholtz apply, solver dot product, gather-scatter local phase, and
//! the element-FDM batch sweep — at polynomial degrees 5, 7 and 9, serial
//! against pooled, and writes an `rbx.bench.v1` record (validated by
//! `telemetry_check --bench`).
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin bench_kernels -- \
//!     --quick --threads 4 --out BENCH_kernels.json --assert-speedup 2.0
//! ```
//!
//! `--assert-speedup X` exits non-zero unless every kernel that actually
//! dispatched to the pool reached `X`× serial at every degree — but only
//! on hosts with at least 4 cores, so single-core CI runners still
//! validate the schema and the bitwise agreement without a meaningless
//! performance gate. Kernels whose work size sat below the tuned grain
//! crossover (detected from the pool's `grained` counter) ran inline by
//! design; for those the gate only requires parity with serial (≥ 0.8×),
//! since the grain gate exists precisely because pooling loses there.
//!
//! `--compare BASELINE.json` is the regression gate: every (kernel, p)
//! row is diffed against the baseline record and the run exits non-zero
//! if any pooled speedup fell by more than `--tolerance` (default 50%).
//! Absolute `serial_us` is only gated when the baseline was produced on
//! a host with the same core count — wall microseconds are not
//! comparable across machine classes, ratios mostly are.
//!
//! `--history FILE.jsonl` appends the (dated) record, so successive runs
//! accumulate a performance trajectory instead of overwriting it.

use rbx::comm::SingleComm;
use rbx::device::WorkerPool;
use rbx::gs::{GatherScatter, GsOp};
use rbx::la::helmholtz::{HelmholtzOp, HelmholtzScratch};
use rbx::la::ops::DotProduct;
use rbx::la::ElementFdm;
use rbx::mesh::generators::box_mesh;
use rbx::mesh::GeomFactors;
use rbx::telemetry::json::Value;
use rbx::telemetry::schema::{bench_record, validate_bench};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    quick: bool,
    threads: usize,
    out: PathBuf,
    assert_speedup: Option<f64>,
    compare: Option<PathBuf>,
    tolerance: f64,
    history: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        threads: 4,
        out: PathBuf::from("BENCH_kernels.json"),
        assert_speedup: None,
        compare: None,
        tolerance: 0.5,
        history: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("bench_kernels: missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--threads" => {
                args.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("bench_kernels: invalid --threads");
                    std::process::exit(2);
                })
            }
            "--out" => args.out = PathBuf::from(value("--out")),
            "--assert-speedup" => {
                args.assert_speedup = Some(value("--assert-speedup").parse().unwrap_or_else(|_| {
                    eprintln!("bench_kernels: invalid --assert-speedup");
                    std::process::exit(2);
                }))
            }
            "--compare" => args.compare = Some(PathBuf::from(value("--compare"))),
            "--tolerance" => {
                args.tolerance = value("--tolerance").parse().unwrap_or_else(|_| {
                    eprintln!("bench_kernels: invalid --tolerance");
                    std::process::exit(2);
                })
            }
            "--history" => args.history = Some(PathBuf::from(value("--history"))),
            "--help" | "-h" => {
                println!(
                    "flags: --quick --threads N --out FILE.json --assert-speedup X \
                     --compare BASELINE.json --tolerance F --history FILE.jsonl"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("bench_kernels: unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if args.threads == 0 {
        eprintln!("bench_kernels: --threads must be at least 1");
        std::process::exit(2);
    }
    if !(args.tolerance > 0.0 && args.tolerance < 1.0) {
        eprintln!("bench_kernels: --tolerance must be in (0, 1)");
        std::process::exit(2);
    }
    args
}

/// UTC calendar date `YYYY-MM-DD` from the system clock (no chrono):
/// civil-from-days, Hinnant's algorithm.
fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// `(serial_us, speedup)` keyed by `(kernel, p)`.
type BenchRows = Vec<((String, u64), (f64, f64))>;

/// Index the `(kernel, p)` rows of a bench record:
/// `(serial_us, speedup)` per key, plus the host core count from meta.
fn index_record(v: &Value) -> Result<(BenchRows, Option<u64>), String> {
    validate_bench(v)?;
    let columns = v.get("columns").and_then(Value::as_arr).unwrap();
    let col = |name: &str| {
        columns
            .iter()
            .position(|c| c.as_str() == Some(name))
            .ok_or_else(|| format!("record has no {name:?} column"))
    };
    let (ck, cp, cs, cx) = (
        col("kernel")?,
        col("p")?,
        col("serial_us")?,
        col("speedup")?,
    );
    let rows = v.get("rows").and_then(Value::as_arr).unwrap();
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let row = row.as_arr().unwrap();
        let key = (
            row[ck].as_str().unwrap_or("?").to_string(),
            row[cp].as_f64().unwrap_or(0.0) as u64,
        );
        let serial = row[cs].as_f64().ok_or("serial_us must be numeric")?;
        let speedup = row[cx].as_f64().ok_or("speedup must be numeric")?;
        out.push((key, (serial, speedup)));
    }
    let cores = v
        .get("meta")
        .and_then(|m| m.get("cores"))
        .and_then(Value::as_u64);
    Ok((out, cores))
}

/// The regression gate: diff `record` against the baseline file. Returns
/// human-readable regression lines (empty = gate passed).
fn compare_against(
    baseline: &std::path::Path,
    record: &Value,
    tol: f64,
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(baseline)
        .map_err(|e| format!("reading {}: {e}", baseline.display()))?;
    let base_v =
        Value::parse(text.trim()).map_err(|e| format!("parsing {}: {e}", baseline.display()))?;
    let (base_rows, base_cores) =
        index_record(&base_v).map_err(|e| format!("{}: {e}", baseline.display()))?;
    let (now_rows, now_cores) = index_record(record)?;
    let gate_serial = base_cores.is_some() && base_cores == now_cores;
    if !gate_serial {
        println!(
            "  compare: serial_us gate skipped (baseline cores {:?}, host cores {:?})",
            base_cores, now_cores
        );
    }
    let mut regressions = Vec::new();
    for ((kernel, p), (base_serial, base_speedup)) in &base_rows {
        let Some((_, (serial, speedup))) =
            now_rows.iter().find(|((k, q), _)| k == kernel && q == p)
        else {
            regressions.push(format!("{kernel} p={p}: row missing from current run"));
            continue;
        };
        if *speedup < base_speedup * (1.0 - tol) {
            regressions.push(format!(
                "{kernel} p={p}: speedup {speedup:.2}x < baseline {base_speedup:.2}x - {:.0}%",
                tol * 100.0
            ));
        }
        if gate_serial && *serial > base_serial * (1.0 + tol) {
            regressions.push(format!(
                "{kernel} p={p}: serial {serial:.1} us > baseline {base_serial:.1} us + {:.0}%",
                tol * 100.0
            ));
        }
    }
    Ok(regressions)
}

/// Best-of-`reps` wall time of `f`, in microseconds (one warmup call).
fn time_us<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = if args.quick { 5 } else { 30 };
    let pool = WorkerPool::new(args.threads);
    println!(
        "bench_kernels: {} host cores, pool of {} threads, {} reps{}",
        cores,
        pool.threads(),
        reps,
        if args.quick { " (quick)" } else { "" }
    );

    let comm = SingleComm::new();
    println!("  simd level: {}", rbx::basis::simd::level_name());
    let mut rows: Vec<Vec<Value>> = Vec::new();
    // (kernel, p, speedup, dispatched): `dispatched` is false when the
    // pooled run stayed under the grain crossover and ran inline.
    let mut gate_rows: Vec<(&'static str, usize, f64, bool)> = Vec::new();
    // Time a pooled kernel and report whether it truly dispatched to the
    // worker pool (vs being grain-gated to the inline path).
    let time_pooled = |reps: usize, pool: &WorkerPool, f: &mut dyn FnMut()| -> (f64, bool) {
        let before = pool.stats().dispatches;
        let us = time_us(reps, f);
        (us, pool.stats().dispatches > before)
    };

    for p in [5usize, 7, 9] {
        let mesh = box_mesh(3, 3, 3, [0., 1.], [0., 1.], [0., 1.], false, false);
        let part = vec![0usize; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        let geom = GeomFactors::new(&mesh, p);
        let n = geom.total_nodes();
        let u: Vec<f64> = (0..n)
            .map(|i| ((i * 31 % 97) as f64) * 0.01 - 0.4)
            .collect();
        let mask = vec![1.0; n];

        // Helmholtz local apply: serial vs pooled (bitwise identical).
        let gs = Arc::new(GatherScatter::build(&mesh, p, &part, &my, &comm));
        let op = HelmholtzOp {
            geom: &geom,
            gs: &gs,
            mask: &mask,
            h1: 1.0,
            h2: 0.5,
        };
        let mut y = vec![0.0; n];
        let mut scratch = HelmholtzScratch::default();
        let serial = time_us(reps, || op.apply_local(&u, &mut y, &mut scratch));
        let y_serial = y.clone();
        let (pooled, dispatched) =
            time_pooled(reps, &pool, &mut || op.apply_local_with(&u, &mut y, &pool));
        assert_eq!(y_serial, y, "pooled Helmholtz apply diverged at p={p}");
        gate_rows.push(("helmholtz_apply", p, serial / pooled, dispatched));
        rows.push(row("helmholtz_apply", p, serial, pooled));

        // Solver dot product (pooled bits are schedule-independent).
        let mult = gs.multiplicity(&comm);
        let dp = DotProduct::new(&mult);
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 17 % 89) as f64) * 0.02 - 0.9)
            .collect();
        let serial = time_us(reps, || {
            std::hint::black_box(dp.dot(&u, &b, &comm));
        });
        let (pooled, dispatched) = time_pooled(reps, &pool, &mut || {
            std::hint::black_box(dp.dot_with(&u, &b, &pool, &comm));
        });
        gate_rows.push(("dot_product", p, serial / pooled, dispatched));
        rows.push(row("dot_product", p, serial, pooled));

        // Gather-scatter local phase (pool handle is set-once, so the
        // pooled timing uses a second operator instance).
        let gs_pooled = GatherScatter::build(&mesh, p, &part, &my, &comm);
        gs_pooled.set_pool(&pool);
        let mut v = u.clone();
        let serial = time_us(reps, || gs.apply(&mut v, GsOp::Add, &comm));
        let mut v2 = u.clone();
        let (pooled, dispatched) = time_pooled(reps, &pool, &mut || {
            gs_pooled.apply(&mut v2, GsOp::Add, &comm)
        });
        gate_rows.push(("gs_local", p, serial / pooled, dispatched));
        rows.push(row("gs_local", p, serial, pooled));

        // Element-FDM batch sweep (the Schwarz fine level).
        let fdm = ElementFdm::new(&geom);
        let mut z = vec![0.0; n];
        let serial = time_us(reps, || {
            z.iter_mut().for_each(|x| *x = 0.0);
            fdm.apply_add(&u, &mut z, 1.0, 0.0);
        });
        let z_serial = z.clone();
        let (pooled, dispatched) = time_pooled(reps, &pool, &mut || {
            z.iter_mut().for_each(|x| *x = 0.0);
            fdm.apply_add_with(&u, &mut z, 1.0, 0.0, &pool);
        });
        assert_eq!(z_serial, z, "pooled FDM sweep diverged at p={p}");
        gate_rows.push(("fdm_batch", p, serial / pooled, dispatched));
        rows.push(row("fdm_batch", p, serial, pooled));
    }

    for r in &rows {
        let (k, p) = (r[0].as_str().unwrap_or("?"), r[1].as_f64().unwrap_or(0.0));
        let (s, q, x) = (
            r[2].as_f64().unwrap_or(0.0),
            r[3].as_f64().unwrap_or(0.0),
            r[4].as_f64().unwrap_or(0.0),
        );
        println!("  {k:<16} p={p:<2} serial {s:>9.1} us  pooled {q:>9.1} us  speedup {x:.2}x");
    }

    let record = bench_record(
        "bench_kernels",
        &["kernel", "p", "serial_us", "pooled_us", "speedup"],
        rows,
        vec![
            ("cores", Value::int(cores as u64)),
            ("threads", Value::int(pool.threads() as u64)),
            ("reps", Value::int(reps as u64)),
            ("quick", Value::int(u64::from(args.quick))),
            ("date", Value::str(utc_date())),
            ("simd", Value::str(rbx::basis::simd::level_name())),
        ],
    );
    validate_bench(&record).expect("bench record must self-validate");
    std::fs::write(&args.out, format!("{record}\n")).unwrap_or_else(|e| {
        eprintln!("bench_kernels: cannot write {}: {e}", args.out.display());
        std::process::exit(1);
    });
    println!("wrote {}", args.out.display());

    if let Some(hist) = &args.history {
        use std::io::Write;
        let append = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(hist)
            .and_then(|mut f| writeln!(f, "{record}"));
        match append {
            Ok(()) => println!("appended to history {}", hist.display()),
            Err(e) => {
                eprintln!("bench_kernels: cannot append {}: {e}", hist.display());
                std::process::exit(1);
            }
        }
    }

    if let Some(base) = &args.compare {
        match compare_against(base, &record, args.tolerance) {
            Ok(regressions) if regressions.is_empty() => println!(
                "compare gate passed vs {} (tolerance {:.0}%)",
                base.display(),
                args.tolerance * 100.0
            ),
            Ok(regressions) => {
                for r in &regressions {
                    eprintln!("bench_kernels: REGRESSION: {r}");
                }
                eprintln!(
                    "bench_kernels: FAIL: {} regression(s) vs {}",
                    regressions.len(),
                    base.display()
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("bench_kernels: cannot compare: {e}");
                std::process::exit(2);
            }
        }
    }

    if let Some(min) = args.assert_speedup {
        if cores >= 4 {
            // Grain-gated kernels ran inline by design: the tuned
            // crossover says pooling loses at this work size, so the gate
            // only demands near-parity with the serial path there.
            const GATED_PARITY: f64 = 0.8;
            let mut failed = false;
            for (kernel, p, speedup, dispatched) in &gate_rows {
                let bound = if *dispatched { min } else { GATED_PARITY };
                if *speedup < bound {
                    eprintln!(
                        "bench_kernels: FAIL: {kernel} speedup {speedup:.2}x < {bound}x at p={p} \
                         ({}, {cores} cores, {} pool threads)",
                        if *dispatched {
                            "dispatched"
                        } else {
                            "grain-gated"
                        },
                        pool.threads()
                    );
                    failed = true;
                }
            }
            if failed {
                std::process::exit(1);
            }
            println!(
                "speedup gate passed (dispatched >= {min}x, gated >= {GATED_PARITY}x parity, \
                 {cores} cores)"
            );
        } else {
            println!("speedup gate skipped: only {cores} core(s) available");
        }
    }
}

fn row(kernel: &str, p: usize, serial_us: f64, pooled_us: f64) -> Vec<Value> {
    vec![
        Value::str(kernel),
        Value::int(p as u64),
        Value::num(serial_us),
        Value::num(pooled_us),
        Value::num(serial_us / pooled_us),
    ]
}
