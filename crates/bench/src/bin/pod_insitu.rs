//! **§5.2 in-situ analysis** — streaming POD while the solver runs.
//!
//! Reproduces the paper's asynchronous post-processing architecture: the
//! solver streams snapshots through the staging engine to a POD consumer
//! on a separate CPU thread. Reports modal energies, agreement with the
//! offline method of snapshots, and the overhead the streaming imposes on
//! the solver (the paper claims "low impact on the simulation
//! performance").
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin pod_insitu
//! ```

use rbx::insitu::{PodBatch, PodConsumer};
use rbx::io::{staging_channel, StepData, Variable};
use rbx_bench::{developed_box, out_dir, write_csv};

const STEPS: usize = 200;
const SAMPLE_EVERY: usize = 10;

fn main() {
    println!("in-situ streaming POD (paper §5.2)\n");

    // ---- baseline: solver only -------------------------------------------
    let mut sim = developed_box(5, 20);
    let t0 = std::time::Instant::now();
    for _ in 0..STEPS {
        assert!(sim.step().converged);
    }
    let solver_only = t0.elapsed().as_secs_f64();

    // ---- solver + in-situ POD ---------------------------------------------
    let mut sim = developed_box(5, 20);
    let n = sim.n_local();
    let weights = sim.geom.mass.clone();
    let comm = rbx::comm::SingleComm::new();
    let (writer, reader) = staging_channel(4);
    let consumer =
        PodConsumer::spawn(reader, "uz", weights.clone(), 16).expect("spawn POD consumer");
    let mut kept = Vec::new();
    let t0 = std::time::Instant::now();
    for step in 1..=STEPS {
        assert!(sim.step().converged);
        if step % SAMPLE_EVERY == 0 {
            let snap = sim.state.u[2].clone();
            writer.put(StepData {
                step: step as u64,
                time: sim.state.time,
                vars: vec![Variable::f64("uz", vec![n as u64], snap.clone())],
            });
            kept.push(snap);
        }
    }
    writer.close();
    let with_insitu = t0.elapsed().as_secs_f64();
    let pod = consumer.join().expect("POD consumer finished cleanly");

    println!("overhead of in-situ processing:");
    println!("  solver only     : {:.2} s for {STEPS} steps", solver_only);
    println!("  solver + POD    : {:.2} s", with_insitu);
    println!(
        "  overhead        : {:.1} % (paper: \"low impact on the simulation performance\")\n",
        100.0 * (with_insitu / solver_only - 1.0)
    );

    let offline = PodBatch::new(weights).compute(&kept, &comm);
    println!(
        "modal spectrum ({} snapshots, streaming rank {}):",
        pod.count(),
        pod.rank()
    );
    println!("  mode   σ (streaming)   σ (offline)    energy frac");
    let total: f64 = offline.singular_values.iter().map(|s| s * s).sum();
    let mut rows = Vec::new();
    for k in 0..offline.singular_values.len().min(8) {
        let s_stream = pod.singular_values().get(k).copied().unwrap_or(0.0);
        let s_off = offline.singular_values[k];
        println!(
            "  {k:>4}   {s_stream:>12.5e}   {s_off:>12.5e}   {:>10.4}",
            s_off * s_off / total
        );
        rows.push(format!("{k},{s_stream},{s_off},{}", s_off * s_off / total));
    }
    println!("\n  (tail modes beyond the energetic leading ones differ between the");
    println!("   rank-capped streaming update and the offline reference — expected");
    println!("   for truncated incremental SVD; the captured energy matches)");
    let dir = out_dir("pod_insitu");
    write_csv(
        &dir.join("pod_spectrum.csv"),
        "mode,sigma_streaming,sigma_offline,energy_fraction",
        &rows,
    );
    println!("\nwrote {}", dir.join("pod_spectrum.csv").display());
}
