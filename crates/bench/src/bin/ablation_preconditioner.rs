//! **Ablation** — pressure preconditioner variants.
//!
//! The design choice the paper's §5.3 is built on: how much does the
//! two-level Schwarz preconditioner buy over plain Jacobi, and what does
//! the task overlap add on top? Measured on the real solver: pressure
//! GMRES iterations and accumulated pressure-phase seconds over a fixed
//! number of steps.
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin ablation_preconditioner
//! ```

use rbx::core::Phase;
use rbx::la::SchwarzMode;
use rbx_bench::{out_dir, write_csv};

const STEPS: usize = 30;

struct Variant {
    name: &'static str,
    schwarz: bool,
    mode: SchwarzMode,
    coarse_order: usize,
}

fn main() {
    println!("pressure preconditioner ablation ({STEPS} RBC steps, degree 6)\n");
    let variants = [
        Variant {
            name: "jacobi",
            schwarz: false,
            mode: SchwarzMode::Serial,
            coarse_order: 1,
        },
        Variant {
            name: "schwarz-serial",
            schwarz: true,
            mode: SchwarzMode::Serial,
            coarse_order: 1,
        },
        Variant {
            name: "schwarz-overlapped",
            schwarz: true,
            mode: SchwarzMode::Overlapped,
            coarse_order: 1,
        },
        Variant {
            name: "schwarz-coarse-p2",
            schwarz: true,
            mode: SchwarzMode::Serial,
            coarse_order: 2,
        },
    ];
    println!("  variant              p-iters/step   pressure time [s]   total [s]");
    let mut rows = Vec::new();
    for v in &variants {
        let mut sim = {
            // coarse_order is fixed at construction, so rebuild per variant.
            let case = rbx::core::rbc_box_case(2.0, 3, 3, false, 1);
            let cfg = rbx::core::SolverConfig {
                ra: 1e5,
                order: 6,
                dt: 2e-3,
                ic_noise: 0.05,
                coarse_order: v.coarse_order,
                schwarz_enabled: v.schwarz,
                schwarz_mode: v.mode,
                ..Default::default()
            };
            let mut sim = rbx_bench::leaked_sim(case, cfg);
            for _ in 0..5 {
                assert!(sim.step().converged);
            }
            sim
        };
        sim.timers.reset();
        let mut total_iters = 0usize;
        for _ in 0..STEPS {
            let st = sim.step();
            assert!(st.converged, "{}: {st:?}", v.name);
            total_iters += st.p_iters;
        }
        let iters = total_iters as f64 / STEPS as f64;
        let p_time = sim.timers.seconds(Phase::Pressure);
        let total = sim.timers.total();
        println!(
            "  {:<20} {:>12.1}   {:>17.3}   {:>9.3}",
            v.name, iters, p_time, total
        );
        rows.push(format!("{},{iters},{p_time},{total}", v.name));
    }
    let dir = out_dir("ablation_preconditioner");
    write_csv(
        &dir.join("preconditioner.csv"),
        "variant,p_iters_per_step,pressure_s,total_s",
        &rows,
    );
    println!("\nwrote {}", dir.join("preconditioner.csv").display());
}
