//! **§4.3 / §8.1** — aspect-ratio dependence of the RBC cell.
//!
//! The paper argues (citing Ahlers et al. 2022) that the aspect ratio
//! plays a role in the transition to the ultimate regime, and plans runs
//! "at high Ra and different aspect ratios". This experiment runs the
//! cylindrical cell at several Γ = D/H at fixed Ra and reports the heat
//! transport and solver behaviour — the sweep an aspect-ratio campaign
//! automates.
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin aspect_ratio_sweep [steps]
//! ```

use rbx::comm::SingleComm;
use rbx::core::{Observables, Simulation, SolverConfig};
use rbx::mesh::BoundaryTag;
use rbx_bench::{out_dir, write_csv};

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    println!("aspect-ratio sweep: cylindrical RBC at Ra = 1e5, {steps} steps each\n");
    println!("  Γ       elems   Nu(vol)   Nu(hot)   KE          p-its/step");
    let mut rows = Vec::new();
    for gamma in [0.5, 1.0, 2.0] {
        let case = rbx::core::rbc_cylinder_case(gamma, 1, 1);
        let comm = SingleComm::new();
        let cfg = SolverConfig {
            ra: 1e5,
            order: 5,
            dt: 1e-3,
            ic_noise: 0.05,
            ..Default::default()
        };
        let mut sim = Simulation::new(
            cfg.clone(),
            &case.mesh,
            &case.part,
            case.elems[0].clone(),
            &comm,
        );
        sim.init_rbc();
        let mut iters = 0usize;
        for s in 1..=steps {
            let st = sim.step();
            assert!(st.converged, "Γ = {gamma}, step {s}: {st:?}");
            iters += st.p_iters;
        }
        let obs = Observables::new(&sim.geom, &case.mesh, &sim.my_elems);
        let nu_v = obs.nusselt_volume(&sim.state.u[2], &sim.state.t, cfg.ra, cfg.pr, &comm);
        let nu_h = obs.nusselt_wall(&sim.state.t, BoundaryTag::HotWall, &comm);
        let ke = obs.kinetic_energy([&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]], &comm);
        let ipx = iters as f64 / steps as f64;
        println!(
            "  {gamma:<5}   {:>5}   {nu_v:7.4}   {nu_h:7.4}   {ke:9.3e}   {ipx:8.1}",
            case.mesh.num_elements()
        );
        rows.push(format!(
            "{gamma},{},{nu_v},{nu_h},{ke},{ipx}",
            case.mesh.num_elements()
        ));
    }
    println!("\nnote: short runs demonstrate the sweep machinery; the paper's");
    println!("scientific campaign would run each Γ to statistical convergence.");
    let dir = out_dir("aspect_ratio_sweep");
    write_csv(
        &dir.join("sweep.csv"),
        "gamma,elements,nu_volume,nu_hot,kinetic_energy,p_iters_per_step",
        &rows,
    );
    println!("wrote {}", dir.join("sweep.csv").display());
}
