//! **§5.1 auto-tuning** — per-kernel serial/pooled crossover sweep.
//!
//! The paper's device layer auto-tunes key kernels per architecture. The
//! CPU analogue has two parts. First, the degree-specialized tensor
//! kernels: the derivative contraction carries const-generic
//! specializations for the production node counts (now including n = 10),
//! measured here against the generic path. Second — the part that feeds
//! back into the runtime — every pooled hot kernel (Helmholtz apply, dot
//! product, gather-scatter local phase, element-FDM sweep) is swept over
//! ascending work sizes serial vs pooled to locate its dispatch-overhead
//! *crossover*: the smallest size at which waking the pool beats running
//! inline. The crossovers are emitted as a schema-valid `rbx.bench.v1`
//! record and as a `tuning.json` consumable by `run_dns --tuning`, which
//! installs them as the process-wide grain gates
//! ([`rbx::device::KernelTuning`]).
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin autotune_kernels -- \
//!     --threads 4 --out out/autotune/autotune.json \
//!     --tuning-out out/autotune/tuning.json
//! ```

use rbx::basis::{autotune_deriv, sweep_crossover, CrossoverSweep};
use rbx::comm::SingleComm;
use rbx::device::{set_tuning, KernelTuning, WorkerPool};
use rbx::gs::{GatherScatter, GsOp};
use rbx::la::helmholtz::{HelmholtzOp, HelmholtzScratch};
use rbx::la::ops::DotProduct;
use rbx::la::ElementFdm;
use rbx::mesh::generators::box_mesh;
use rbx::mesh::GeomFactors;
use rbx::telemetry::json::Value;
use rbx::telemetry::schema::{bench_record, validate_bench};
use rbx_bench::out_dir;
use std::path::PathBuf;

struct Args {
    threads: usize,
    quick: bool,
    out: Option<PathBuf>,
    tuning_out: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        threads: 4,
        quick: false,
        out: None,
        tuning_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("autotune_kernels: missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--threads" => {
                args.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("autotune_kernels: invalid --threads");
                    std::process::exit(2);
                })
            }
            "--out" => args.out = Some(PathBuf::from(value("--out"))),
            "--tuning-out" => args.tuning_out = Some(PathBuf::from(value("--tuning-out"))),
            "--help" | "-h" => {
                println!("flags: --quick --threads N --out FILE.json --tuning-out FILE.json");
                std::process::exit(0);
            }
            other => {
                eprintln!("autotune_kernels: unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Element-count ladder shared by the element-loop kernels, and the box
/// dimensions producing each count.
const ELEM_LADDER: [(usize, [usize; 3]); 6] = [
    (1, [1, 1, 1]),
    (4, [2, 2, 1]),
    (8, [2, 2, 2]),
    (18, [3, 3, 2]),
    (27, [3, 3, 3]),
    (64, [4, 4, 4]),
];

fn main() {
    let args = parse_args();
    // Disable every grain gate for this process: the sweep must measure
    // the *real* pooled dispatch cost at every size, not the gated
    // fallback the measurements exist to calibrate.
    let installed = set_tuning(KernelTuning {
        helmholtz_elems: 0,
        fdm_elems: 0,
        gs_groups: 0,
        dot_len: 0,
        elemwise_len: 0,
        grad_elems: 0,
    });
    assert!(
        installed,
        "autotune must install its tuning before any kernel runs"
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let reps = if args.quick { 5 } else { 20 };
    let pool = WorkerPool::new(args.threads);
    let comm = SingleComm::new();
    let p = 7usize; // representative production degree (n = 8 nodes)

    println!(
        "autotune_kernels: {} host cores, pool of {} threads, {} reps, simd={}\n",
        cores,
        pool.threads(),
        reps,
        rbx::basis::simd::level_name()
    );

    // --- Part 1: degree specialization report (generic vs dispatched) ---
    println!("  deriv_x specialization: n (pts)  generic [us]  dispatched [us]  speedup");
    for n in [4usize, 5, 6, 7, 8, 10, 12] {
        let r = autotune_deriv(n, 64, reps);
        let specialized = matches!(n, 4 | 6 | 8 | 10 | 12);
        println!(
            "    n={n:<2} {}  {:>10.2}  {:>13.2}  {:>6.2}x",
            if specialized { "[spec]" } else { "[gen] " },
            1e6 * r.generic_secs,
            1e6 * r.dispatched_secs,
            r.speedup()
        );
    }
    println!();

    // --- Part 2: per-kernel serial/pooled crossover sweeps ---------------
    let mut rows: Vec<Vec<Value>> = Vec::new();
    fn record_sweep(rows: &mut Vec<Vec<Value>>, kernel: &str, sweep: &CrossoverSweep) {
        for pt in &sweep.points {
            rows.push(vec![
                Value::str(kernel),
                Value::int(pt.size as u64),
                Value::num(pt.serial_us),
                Value::num(pt.pooled_us),
                Value::num(pt.speedup()),
            ]);
        }
        match sweep.crossover {
            Some(c) => println!("  {kernel:<12} crossover at {c}"),
            None => println!("  {kernel:<12} pooling never won (inline always)"),
        }
    }

    // Helmholtz apply + FDM sweep: sweep the element-count ladder. The
    // meshes/operators are prebuilt so closures only run the kernel.
    let mut helm_setups = Vec::new();
    for &(nelv, [bx, by, bz]) in &ELEM_LADDER {
        let mesh = box_mesh(bx, by, bz, [0., 1.], [0., 1.], [0., 1.], false, false);
        let part = vec![0usize; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        let geom = GeomFactors::new(&mesh, p);
        let gs = GatherScatter::build(&mesh, p, &part, &my, &comm);
        let n = geom.total_nodes();
        let u: Vec<f64> = (0..n)
            .map(|i| ((i * 31 % 97) as f64) * 0.01 - 0.4)
            .collect();
        helm_setups.push((nelv, geom, gs, u));
    }
    let sizes: Vec<usize> = ELEM_LADDER.iter().map(|&(n, _)| n).collect();
    let find = |size: usize| {
        helm_setups
            .iter()
            .find(|(nelv, ..)| *nelv == size)
            .expect("ladder size prebuilt")
    };

    let nmax = helm_setups.iter().map(|s| s.3.len()).max().unwrap();
    let mask = vec![1.0f64; nmax];
    let helm_sweep = {
        // Separate output buffers: both closures stay alive for the whole
        // sweep, so they cannot share one mutable scratch.
        let mut y1 = vec![0.0; nmax];
        let mut y2 = vec![0.0; nmax];
        let mut scratch = HelmholtzScratch::default();
        sweep_crossover(
            &sizes,
            reps,
            |size| {
                let (_, geom, gs, u) = find(size);
                let op = HelmholtzOp {
                    geom,
                    gs,
                    mask: &mask[..u.len()],
                    h1: 1.0,
                    h2: 0.5,
                };
                op.apply_local(u, &mut y1[..u.len()], &mut scratch);
            },
            |size| {
                let (_, geom, gs, u) = find(size);
                let op = HelmholtzOp {
                    geom,
                    gs,
                    mask: &mask[..u.len()],
                    h1: 1.0,
                    h2: 0.5,
                };
                op.apply_local_with(u, &mut y2[..u.len()], &pool);
            },
        )
    };
    record_sweep(&mut rows, "helmholtz", &helm_sweep);

    let fdms: Vec<ElementFdm> = helm_setups
        .iter()
        .map(|(_, geom, ..)| ElementFdm::new(geom))
        .collect();
    let fdm_sweep = {
        let mut z1 = vec![0.0; nmax];
        let mut z2 = vec![0.0; nmax];
        sweep_crossover(
            &sizes,
            reps,
            |size| {
                let i = helm_setups.iter().position(|s| s.0 == size).unwrap();
                let u = &helm_setups[i].3;
                z1[..u.len()].fill(0.0);
                fdms[i].apply_add(u, &mut z1[..u.len()], 1.0, 0.0);
            },
            |size| {
                let i = helm_setups.iter().position(|s| s.0 == size).unwrap();
                let u = &helm_setups[i].3;
                z2[..u.len()].fill(0.0);
                fdms[i].apply_add_with(u, &mut z2[..u.len()], 1.0, 0.0, &pool);
            },
        )
    };
    record_sweep(&mut rows, "fdm", &fdm_sweep);

    // Gather-scatter local phase: the sweep unit is the *group count* of
    // each ladder mesh (what the runtime gate compares against).
    let gs_sweep = {
        let pooled_gs: Vec<GatherScatter> = helm_setups
            .iter()
            .map(|(nelv, _, _, _)| {
                let dims = ELEM_LADDER.iter().find(|&&(n, _)| n == *nelv).unwrap().1;
                let mesh = box_mesh(
                    dims[0],
                    dims[1],
                    dims[2],
                    [0., 1.],
                    [0., 1.],
                    [0., 1.],
                    false,
                    false,
                );
                let part = vec![0usize; mesh.num_elements()];
                let my: Vec<usize> = (0..mesh.num_elements()).collect();
                let g = GatherScatter::build(&mesh, p, &part, &my, &comm);
                g.set_pool(&pool);
                g
            })
            .collect();
        let group_sizes: Vec<usize> = pooled_gs.iter().map(|g| g.num_groups()).collect();
        assert!(
            group_sizes.windows(2).all(|w| w[0] < w[1]),
            "ladder group counts must be strictly increasing to key the sweep"
        );
        let mut v1 = vec![0.0; nmax];
        let mut v2 = vec![0.0; nmax];
        sweep_crossover(
            &group_sizes,
            reps,
            |groups| {
                let i = group_sizes.iter().position(|&g| g == groups).unwrap();
                let (_, _, gs, u) = &helm_setups[i];
                v1[..u.len()].copy_from_slice(u);
                gs.apply(&mut v1[..u.len()], GsOp::Add, &comm);
            },
            |groups| {
                let i = group_sizes.iter().position(|&g| g == groups).unwrap();
                let u = &helm_setups[i].3;
                v2[..u.len()].copy_from_slice(u);
                pooled_gs[i].apply(&mut v2[..u.len()], GsOp::Add, &comm);
            },
        )
    };
    record_sweep(&mut rows, "gs_local", &gs_sweep);

    // Dot product: the sweep unit is the vector length.
    let dot_sweep = {
        let lens = [1usize << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18];
        let nmax = *lens.last().unwrap();
        let a: Vec<f64> = (0..nmax)
            .map(|i| ((i * 29 % 101) as f64) * 1e-2 - 0.5)
            .collect();
        let b: Vec<f64> = (0..nmax)
            .map(|i| ((i * 43 % 97) as f64) * 1e-2 - 0.4)
            .collect();
        let dps: Vec<DotProduct> = lens
            .iter()
            .map(|&l| DotProduct::new(&vec![1.0; l]))
            .collect();
        sweep_crossover(
            &lens,
            reps,
            |len| {
                let i = lens.iter().position(|&l| l == len).unwrap();
                std::hint::black_box(dps[i].dot(&a[..len], &b[..len], &comm));
            },
            |len| {
                let i = lens.iter().position(|&l| l == len).unwrap();
                std::hint::black_box(dps[i].dot_with(&a[..len], &b[..len], &pool, &comm));
            },
        )
    };
    record_sweep(&mut rows, "dot", &dot_sweep);

    // --- Derive the tuning table -----------------------------------------
    // No crossover found means pooling never won on this host: gate with a
    // sentinel far above any realistic per-rank work size.
    const NEVER: usize = 1 << 30;
    let pick = |s: &CrossoverSweep| s.crossover.unwrap_or(NEVER);
    let tuned = KernelTuning {
        helmholtz_elems: pick(&helm_sweep),
        fdm_elems: pick(&fdm_sweep),
        gs_groups: pick(&gs_sweep),
        dot_len: pick(&dot_sweep),
        elemwise_len: pick(&dot_sweep),
        grad_elems: pick(&helm_sweep),
    };
    println!("\n  tuned table: {}", tuned.to_json());

    let record = bench_record(
        "autotune_kernels",
        &["kernel", "size", "serial_us", "pooled_us", "speedup"],
        rows,
        vec![
            ("cores", Value::int(cores as u64)),
            ("threads", Value::int(pool.threads() as u64)),
            ("reps", Value::int(reps as u64)),
            ("p", Value::int(p as u64)),
            ("simd", Value::str(rbx::basis::simd::level_name())),
            (
                "crossover_helmholtz_elems",
                Value::int(tuned.helmholtz_elems as u64),
            ),
            ("crossover_fdm_elems", Value::int(tuned.fdm_elems as u64)),
            ("crossover_gs_groups", Value::int(tuned.gs_groups as u64)),
            ("crossover_dot_len", Value::int(tuned.dot_len as u64)),
        ],
    );
    validate_bench(&record).expect("autotune record must self-validate");

    let dir = out_dir("autotune_kernels");
    let out = args.out.unwrap_or_else(|| dir.join("autotune.json"));
    if let Some(parent) = out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out, format!("{record}\n")).unwrap_or_else(|e| {
        eprintln!("autotune_kernels: cannot write {}: {e}", out.display());
        std::process::exit(1);
    });
    println!("wrote {}", out.display());

    let tuning_out = args.tuning_out.unwrap_or_else(|| dir.join("tuning.json"));
    if let Some(parent) = tuning_out.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&tuning_out, format!("{}\n", tuned.to_json())).unwrap_or_else(|e| {
        eprintln!(
            "autotune_kernels: cannot write {}: {e}",
            tuning_out.display()
        );
        std::process::exit(1);
    });
    println!("wrote {} (pass to run_dns --tuning)", tuning_out.display());
}
