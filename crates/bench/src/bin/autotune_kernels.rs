//! **§5.1 auto-tuning** — specialized vs generic tensor kernels.
//!
//! The paper's device layer auto-tunes key kernels per architecture. The
//! CPU analogue here: the x-derivative contraction has const-generic
//! specializations for common polynomial degrees; this binary measures the
//! benefit on the running machine for each node count and reports which
//! path the dispatcher uses.
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin autotune_kernels
//! ```

use rbx::basis::autotune_deriv;
use rbx_bench::{out_dir, write_csv};

fn main() {
    println!("kernel auto-tuning: generic vs dispatched x-derivative\n");
    println!("  n (pts)   degree   generic [µs]   dispatched [µs]   speedup   specialized?");
    let mut rows = Vec::new();
    for n in [4usize, 5, 6, 7, 8, 10, 12] {
        let r = autotune_deriv(n, 64, 50);
        let specialized = matches!(n, 4 | 6 | 8 | 12);
        println!(
            "  {n:>7}   {:>6}   {:>12.2}   {:>15.2}   {:>7.2}   {}",
            n - 1,
            1e6 * r.generic_secs,
            1e6 * r.dispatched_secs,
            r.speedup(),
            specialized
        );
        rows.push(format!(
            "{n},{},{},{},{specialized}",
            r.generic_secs,
            r.dispatched_secs,
            r.speedup()
        ));
    }
    println!("\n(dispatched == generic for node counts without a specialization)");
    let dir = out_dir("autotune_kernels");
    write_csv(
        &dir.join("autotune.csv"),
        "n,generic_s,dispatched_s,speedup,specialized",
        &rows,
    );
    println!("wrote {}", dir.join("autotune.csv").display());
}
