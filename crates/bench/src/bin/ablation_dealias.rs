//! **Ablation** — 3/2-rule dealiasing on vs off.
//!
//! The paper performs "dealiasing (overintegration) according to the
//! 3/2-rule" (§6). This experiment quantifies its cost (time per step) and
//! its effect on the solution (kinetic-energy trajectory divergence and
//! stability margin) at identical parameters.
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin ablation_dealias
//! ```

use rbx::comm::SingleComm;
use rbx::core::{Observables, Simulation, SolverConfig};
use rbx_bench::{out_dir, write_csv};

const STEPS: usize = 150;

fn run(dealias: bool) -> (f64, Vec<f64>, bool) {
    let case = rbx::core::rbc_box_case(2.0, 3, 3, false, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: 1e5,
        order: 5,
        dt: 2e-3,
        ic_noise: 0.05,
        dealias,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg, &case.mesh, &case.part, case.elems[0].clone(), &comm);
    sim.init_rbc();
    let mut kes = Vec::new();
    let t0 = std::time::Instant::now();
    let mut stable = true;
    for _ in 0..STEPS {
        let st = sim.step();
        stable &= st.converged;
        let obs = Observables::new(&sim.geom, &case.mesh, &sim.my_elems);
        let ke = obs.kinetic_energy([&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]], &comm);
        stable &= ke.is_finite();
        kes.push(ke);
    }
    (t0.elapsed().as_secs_f64() / STEPS as f64, kes, stable)
}

fn main() {
    println!("dealiasing ablation ({STEPS} steps, Ra = 1e5, degree 5)\n");
    let (t_on, ke_on, stable_on) = run(true);
    let (t_off, ke_off, stable_off) = run(false);

    println!("  variant        time/step [ms]   stable   final KE");
    println!(
        "  dealias 3/2    {:>13.2}   {:>6}   {:.4e}",
        1e3 * t_on,
        stable_on,
        ke_on.last().unwrap()
    );
    println!(
        "  collocation    {:>13.2}   {:>6}   {:.4e}",
        1e3 * t_off,
        stable_off,
        ke_off.last().unwrap()
    );
    println!(
        "\n  dealiasing overhead: {:.1} % per step",
        100.0 * (t_on / t_off - 1.0)
    );
    let max_rel_dev = ke_on
        .iter()
        .zip(&ke_off)
        .map(|(a, b)| (a - b).abs() / a.abs().max(1e-300))
        .fold(0.0f64, f64::max);
    println!(
        "  max relative KE-trajectory deviation (aliasing error signature): {:.2e}",
        max_rel_dev
    );

    let dir = out_dir("ablation_dealias");
    let rows: Vec<String> = ke_on
        .iter()
        .zip(&ke_off)
        .enumerate()
        .map(|(i, (a, b))| format!("{i},{a},{b}"))
        .collect();
    write_csv(
        &dir.join("kinetic_energy.csv"),
        "step,ke_dealias,ke_collocation",
        &rows,
    );
    println!("\nwrote {}", dir.join("kinetic_energy.csv").display());
}
