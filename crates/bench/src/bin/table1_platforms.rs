//! **Table 1** — hardware and software details of the experimental
//! platforms (LUMI, Leonardo).
//!
//! Prints the machine-model registry that parameterizes every performance
//! simulation in this repository, alongside the paper's reported values.
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin table1_platforms
//! ```

use rbx::perf::{leonardo, lumi};

fn main() {
    let machines = [lumi(), leonardo()];
    println!("Table 1: Hardware details of the experimental platforms");
    println!("(paper values; per-GPU bandwidth and peak performance)\n");
    println!("{}", rbx::perf::machine::table1(&machines));

    println!("model-only parameters (substitution layer, see DESIGN.md):");
    println!(
        "  {:<22}{:<28}{:<28}",
        "", machines[0].name, machines[1].name
    );
    println!(
        "  {:<22}{:<28}{:<28}",
        "launch latency [µs]", machines[0].launch_latency_us, machines[1].launch_latency_us
    );
    println!(
        "  {:<22}{:<28}{:<28}",
        "link latency [µs]", machines[0].link_latency_us, machines[1].link_latency_us
    );
    println!(
        "  {:<22}{:<28}{:<28}",
        "allreduce hop [µs]", machines[0].allreduce_hop_us, machines[1].allreduce_hop_us
    );
    println!(
        "  {:<22}{:<28}{:<28}",
        "sustained BW frac", machines[0].bw_efficiency, machines[1].bw_efficiency
    );

    // Paper cross-checks.
    assert_eq!(machines[0].peak_tflops_fp64, 47.9);
    assert_eq!(machines[1].peak_tflops_fp64, 9.7);
    assert_eq!(machines[0].n_devices, 10240);
    assert_eq!(machines[1].n_devices, 13824);
    println!("\nall Table 1 values verified against the paper.");
}
