//! **§1 / §8.1 — time-to-solution and storage for the ultimate-regime
//! campaign.**
//!
//! The paper's Gordon Bell justification: the workflow "puts answering
//! this question within reach of modern computational science with regards
//! to time-to-solution, storage requirements, and pre/post-processing."
//! This planner quantifies exactly that with RBX's models:
//!
//! * mesh sizes across a Ra sweep from the resolution law `H/η ~ Ra^{3/8}`
//!   (paper §4.1), anchored to the paper's 108 M-element mesh at 10¹⁵;
//! * wall time per Rayleigh number from the cost model at 16,384 LUMI
//!   GCDs, with the CFL-driven time-step shrink `Δt ~ Ra^{-1/8}` (finer
//!   grid) over a fixed number of free-fall times;
//! * storage for the snapshot database with and without the §5.2
//!   compression (97 % reduction at the Fig. 5 operating point).
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin campaign_planner
//! ```

use rbx::perf::{lumi, CaseSize, CostModel, SolverMix};
use rbx_bench::{out_dir, write_csv};

const RANKS: usize = 16384;
const FREE_FALL_TIMES: f64 = 200.0; // statistics window per Ra
const SNAPSHOTS: f64 = 1000.0; // stored instantaneous fields per Ra
const FIELDS_PER_SNAPSHOT: f64 = 5.0; // u, v, w, p, T

fn main() {
    println!("ultimate-regime campaign planner (LUMI model, {RANKS} GCDs)\n");
    let machine = lumi();

    // Anchor: the paper's Ra = 10¹⁵ case.
    let anchor_ra: f64 = 1e15;
    let anchor_elems = 108_000_000f64;
    let anchor_dt = 1e-4; // free-fall units, representative of the case

    println!("  Ra        elements    grid points   t/step    steps      wall time   snapshots raw → compressed");
    let mut rows = Vec::new();
    for exp in [14.0, 15.0, 16.0] {
        let ra = 10f64.powf(exp);
        // Resolution law: linear resolution ~ Ra^{3/8} ⇒ elements ~ Ra^{9/8}.
        let nelem = (anchor_elems * (ra / anchor_ra).powf(9.0 / 8.0)).round() as usize;
        let case = CaseSize { nelem, order: 7 };
        let model = CostModel::new(machine.clone(), case, SolverMix::default());
        let t_step = model.time_per_step(RANKS).total();
        // Finer grids need smaller steps: Δt ~ Ra^{-1/8} (advective CFL on
        // the Ra^{3/8} grid with free-fall velocities ~Ra^{1/4} boundary
        // layer dynamics folded into the anchor).
        let dt = anchor_dt * (ra / anchor_ra).powf(-1.0 / 8.0);
        let steps = (FREE_FALL_TIMES / dt).ceil();
        let wall_s = steps * t_step;
        let wall_h = wall_s / 3600.0;
        let pts = case.unique_grid_points();
        let raw_tb = SNAPSHOTS * FIELDS_PER_SNAPSHOT * pts * 8.0 / 1e12;
        let compressed_tb = raw_tb * 0.03; // Fig. 5: 97 % reduction
        println!(
            "  1e{exp:<5.0} {nelem:>11}   {:>8.1}e9   {:>6.1} ms  {:>8.2e}  {:>8.1} h   {:>7.1} TB → {:>5.1} TB",
            pts / 1e9,
            1e3 * t_step,
            steps,
            wall_h,
            raw_tb,
            compressed_tb
        );
        rows.push(format!(
            "{ra},{nelem},{pts},{t_step},{steps},{wall_h},{raw_tb},{compressed_tb}"
        ));
    }

    println!("\nreading the table:");
    println!("  - at Ra = 10¹⁵ (the paper's case) a {FREE_FALL_TIMES}-free-fall-time statistics");
    println!("    window is a multi-day, not multi-year, computation on 80 % of LUMI —");
    println!("    the paper's time-to-solution claim;");
    println!("  - the snapshot database shrinks by ~33× under the §5.2 compression at");
    println!("    the Fig. 5 operating point, turning petabyte-scale storage into");
    println!("    tens of terabytes — the paper's storage claim;");
    println!(
        "  - one decade higher in Ra costs ~{:.0}× more wall time (mesh growth ×",
        10f64.powf(9.0 / 8.0) * 10f64.powf(1.0 / 8.0)
    );
    println!("    step-count growth), which is why 10¹⁶ defines the exascale frontier.");

    let dir = out_dir("campaign_planner");
    write_csv(
        &dir.join("campaign.csv"),
        "ra,elements,grid_points,t_step_s,steps,wall_hours,raw_tb,compressed_tb",
        &rows,
    );
    println!("\nwrote {}", dir.join("campaign.csv").display());
}
