//! **Fig. 2** — serial vs task-parallel additive Schwarz preconditioner.
//!
//! The paper shows trace timelines of both variants on an NVIDIA A100 and
//! reports ≈20 % wall-time reduction of the Schwarz phase over 50 time
//! steps for a small strong-scaling-regime test case. Two reproductions:
//!
//! 1. **device simulation (virtual time)** — the Schwarz phase's kernel
//!    mix (many tiny coarse-solve kernels that are launch-latency bound +
//!    a few large smoother kernels) scheduled on the discrete-event device
//!    simulator: serial single-stream launching vs dual-host-thread,
//!    dual-stream launching with priorities. Deterministic and
//!    host-independent;
//! 2. **real solver** — the actual `SchwarzMg` preconditioner in Serial vs
//!    Overlapped mode inside the pressure solve of an RBC run. (Note: real
//!    thread overlap needs > 1 host core to pay off; the output reports
//!    the host's parallelism.)
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin fig2_overlap
//! ```

use rbx::device::{simulate, SimConfig, SimKernel, StreamPriority};
use rbx::la::SchwarzMode;
use rbx::telemetry::json::Value;
use rbx::telemetry::schema::bench_record;
use rbx_bench::{developed_box, out_dir, write_csv};

/// Kernel mix of one Schwarz application in the strong-scaling regime:
/// the coarse solve is ~10 PCG iterations of tiny kernels (launch-latency
/// dominated), the fine level is a few large memory-bound kernels.
const COARSE_KERNELS: usize = 30; // 10 iterations × 3 kernels
const COARSE_KERNEL_US: f64 = 12.0;
const FINE_KERNELS: usize = 4;
const FINE_KERNEL_US: f64 = 330.0;
const LAUNCH_US: f64 = 8.0;
const STEPS: usize = 50;

fn coarse_kernels(stream: usize) -> Vec<SimKernel> {
    (0..COARSE_KERNELS)
        .map(|i| SimKernel {
            stream,
            name: format!("c{i}"),
            duration_us: COARSE_KERNEL_US,
        })
        .collect()
}

fn fine_kernels(stream: usize) -> Vec<SimKernel> {
    (0..FINE_KERNELS)
        .map(|i| SimKernel {
            stream,
            name: format!("F{i}"),
            duration_us: FINE_KERNEL_US,
        })
        .collect()
}

fn main() {
    println!("Fig. 2 reproduction: serial (A) vs task-parallel (B) additive Schwarz\n");

    // ---- (A) serial: one host thread, one stream -------------------------
    let serial_cfg = SimConfig {
        executors: 2,
        launch_latency_us: LAUNCH_US,
        stream_priorities: vec![StreamPriority::Normal],
    };
    let mut serial_launches = coarse_kernels(0);
    serial_launches.extend(fine_kernels(0));
    let serial = simulate(&serial_cfg, &[serial_launches]);

    // ---- (B) task-parallel: two host threads, two prioritized streams ----
    let overlap_cfg = SimConfig {
        executors: 2,
        launch_latency_us: LAUNCH_US,
        stream_priorities: vec![StreamPriority::High, StreamPriority::Normal],
    };
    let overlap = simulate(&overlap_cfg, &[coarse_kernels(0), fine_kernels(1)]);

    let reduction = 100.0 * (1.0 - overlap.makespan_us / serial.makespan_us);
    println!("device simulation (one Schwarz application; virtual time):");
    println!(
        "  (A) serial       : {:>7.1} µs   device utilization {:.0} %",
        serial.makespan_us,
        100.0 * serial.utilization()
    );
    println!(
        "  (B) task-parallel: {:>7.1} µs   device utilization {:.0} %",
        overlap.makespan_us,
        100.0 * overlap.utilization()
    );
    println!("  wall-time reduction of the Schwarz phase: {reduction:.1} %");
    println!(
        "  over {STEPS} time steps: {:.2} ms → {:.2} ms",
        serial.makespan_us * STEPS as f64 / 1e3,
        overlap.makespan_us * STEPS as f64 / 1e3
    );
    println!("  (paper: ≈20 % on 4×A100 for a comparable small test case)\n");

    println!("trace timeline, serial (c = coarse-solve kernels, F = fine smoother):");
    println!(
        "{}",
        rbx_bench::render_timeline_unit(&serial.trace, 100, "µs")
    );
    println!("trace timeline, task-parallel (coarse on high-priority stream 0):");
    println!(
        "{}",
        rbx_bench::render_timeline_unit(&overlap.trace, 100, "µs")
    );

    // ---- real-solver measurement ------------------------------------------
    let cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    println!(
        "real-solver experiment ({STEPS} RBC steps, pressure phase; host has {cores} core(s)):"
    );
    let mut sim = developed_box(5, 5);
    sim.cfg.schwarz_mode = SchwarzMode::Serial;
    sim.timers.reset();
    for _ in 0..STEPS {
        assert!(sim.step().converged);
    }
    let real_serial = sim.timers.seconds(rbx::core::Phase::Pressure);

    let mut sim = developed_box(5, 5);
    sim.cfg.schwarz_mode = SchwarzMode::Overlapped;
    sim.timers.reset();
    for _ in 0..STEPS {
        assert!(sim.step().converged);
    }
    let real_overlap = sim.timers.seconds(rbx::core::Phase::Pressure);
    let real_reduction = 100.0 * (1.0 - real_overlap / real_serial);
    println!("  serial Schwarz    : {real_serial:.3} s");
    println!("  overlapped Schwarz: {real_overlap:.3} s");
    println!("  pressure-phase reduction: {real_reduction:.1} %");
    if cores == 1 {
        println!("  (single-core host: the coarse-solve helper thread cannot run");
        println!("   concurrently, so no real-time gain is expected here; the");
        println!("   virtual-time result above carries the Fig. 2 comparison)");
    }

    let dir = out_dir("fig2_overlap");
    write_csv(
        &dir.join("fig2.csv"),
        "experiment,serial,overlapped,reduction_pct",
        &[
            format!(
                "device_sim_us,{},{},{reduction}",
                serial.makespan_us, overlap.makespan_us
            ),
            format!("real_solver_s,{real_serial},{real_overlap},{real_reduction}"),
        ],
    );
    println!("\nwrote {}", dir.join("fig2.csv").display());

    // Machine-readable record mirroring the CSV, for CI consumption.
    let record = bench_record(
        "fig2_overlap",
        &["experiment", "serial", "overlapped", "reduction_pct"],
        vec![
            vec![
                Value::str("device_sim_us"),
                Value::num(serial.makespan_us),
                Value::num(overlap.makespan_us),
                Value::num(reduction),
            ],
            vec![
                Value::str("real_solver_s"),
                Value::num(real_serial),
                Value::num(real_overlap),
                Value::num(real_reduction),
            ],
        ],
        vec![
            ("steps", Value::int(STEPS as u64)),
            ("host_cores", Value::int(cores as u64)),
        ],
    );
    let json_path = dir.join("fig2.json");
    std::fs::write(&json_path, format!("{record}\n")).expect("write fig2.json");
    println!("wrote {}", json_path.display());
}
