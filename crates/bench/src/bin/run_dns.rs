//! `run_dns` — the production-style DNS driver.
//!
//! A configurable Rayleigh-Bénard run with the full workflow of the paper:
//! time stepping, running statistics and z-profiles, periodic compressed
//! field output, checkpointing with rotation, and optional in-situ
//! streaming POD. The time loop runs under the [`ResilientRunner`]: a
//! diverged step rolls back to the last good checkpoint with a reduced
//! dt instead of aborting the campaign.
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin run_dns -- \
//!     --case cylinder --gamma 1.0 --ra 1e5 --order 5 --dt 1.5e-3 \
//!     --steps 500 --sample-every 20 --checkpoint-every 200 --pod
//! ```
//!
//! A deterministic fault-injection demo (NaN mid-flight, recovered by
//! rollback + dt reduction; bit-flipped checkpoint rejected by checksum):
//!
//! ```sh
//! run_dns --steps 40 --checkpoint-every 5 \
//!     --inject-nan-at 17 --corrupt-checkpoint-at 15 --fault-seed 42
//! ```
//!
//! All flags are optional; defaults give a small box run. Outputs land in
//! `target/dns_run/` (override with `--out`).
//!
//! `--ranks N` runs the time loop distributed over N in-process ranks.
//! Checkpoints are topology-independent, so `--ranks` is decoupled from
//! checkpoint provenance: a run checkpointed at one rank count restarts
//! at any other via `--restart`, with the partition rebuilt by the
//! restart repartitioner:
//!
//! ```sh
//! run_dns --ranks 4 --steps 200 --checkpoint-every 100   # checkpoint at 4
//! run_dns --ranks 2 --steps 100 \
//!     --restart target/dns_run/checkpoints/chk_0000000200.bpl  # restart at 2
//! ```
//!
//! `--analysis-ranks K` dedicates K extra ranks to the asynchronous
//! in-situ analysis plane (DESIGN.md §16): solver ranks ship compressed
//! field slabs over a bounded best-effort channel and never block on
//! analysis — a full queue or a dead analysis rank degrades to
//! drop-with-counter (`rbx_insitu_dropped_total`), and the solver
//! trajectory stays byte-identical to an analysis-free run:
//!
//! ```sh
//! run_dns --ranks 4 --analysis-ranks 2 --steps 200 --sample-every 10 \
//!     --telemetry-jsonl target/dns_run/tel.jsonl
//! ```

use rbx::comm::SingleComm;
use rbx::compress::{AsyncFieldCompressor, CompressionConfig};
use rbx::core::stats::{RunStatistics, ZProfiles};
use rbx::core::RecoveryEvent;
use rbx::core::{
    CheckpointSet, FaultPlan, Observables, RecoveryPolicy, ResilientRunner, Simulation,
    SolverConfig,
};
use rbx::insitu::PodConsumer;
use rbx::io::{staging_channel, AsyncBplWriter, StepData, Variable};
use rbx::mesh::BoundaryTag;
use rbx::obs::prom::PromServer;
use rbx::obs::{HealthConfig, HealthMonitor};
use rbx::telemetry::json::Value;
use rbx::telemetry::schema::TELEMETRY_SCHEMA;
use rbx::telemetry::Telemetry;
use std::path::{Path, PathBuf};

#[derive(Debug)]
struct Args {
    case: String,
    gamma: f64,
    ra: f64,
    order: usize,
    dt: f64,
    steps: usize,
    ranks: usize,
    analysis_ranks: usize,
    threads: usize,
    resolution: usize,
    sample_every: usize,
    checkpoint_every: usize,
    checkpoint_keep: usize,
    max_rollbacks: usize,
    dt_factor: f64,
    fault_seed: u64,
    inject_nan_at: Vec<usize>,
    corrupt_checkpoint_at: Vec<usize>,
    fail_checkpoint_at: Vec<usize>,
    pod: bool,
    restart: Option<PathBuf>,
    tuning: Option<PathBuf>,
    out: PathBuf,
    telemetry_jsonl: Option<PathBuf>,
    telemetry_prom: Option<PathBuf>,
    trace_depth: Option<usize>,
    json_summary: Option<PathBuf>,
    prom_listen: Option<String>,
    health_jsonl: Option<PathBuf>,
    flight: usize,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            case: "box".into(),
            gamma: 2.0,
            ra: 1e5,
            order: 5,
            dt: 2e-3,
            steps: 300,
            ranks: 1,
            analysis_ranks: 0,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            resolution: 3,
            sample_every: 20,
            checkpoint_every: 0,
            checkpoint_keep: 3,
            max_rollbacks: 5,
            dt_factor: 0.5,
            fault_seed: 0,
            inject_nan_at: Vec::new(),
            corrupt_checkpoint_at: Vec::new(),
            fail_checkpoint_at: Vec::new(),
            pod: false,
            restart: None,
            tuning: None,
            out: PathBuf::from("target/dns_run"),
            telemetry_jsonl: None,
            telemetry_prom: None,
            trace_depth: None,
            json_summary: None,
            prom_listen: None,
            health_jsonl: None,
            flight: 0,
        }
    }
}

/// Load and globally install the kernel tuning table from `--tuning`
/// (no-op without the flag: the compiled-in defaults apply). Kernel grain
/// gating is part of the run configuration, so it is installed exactly
/// once, before any pooled kernel executes.
fn install_tuning(args: &Args) {
    let Some(path) = &args.tuning else { return };
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read --tuning {}: {e}", path.display())));
    let table = rbx::device::KernelTuning::from_json(text.trim())
        .unwrap_or_else(|e| die(&format!("invalid --tuning {}: {e}", path.display())));
    if !rbx::device::set_tuning(table) {
        die("kernel tuning was already fixed before --tuning could install");
    }
    println!("  kernel tuning: {} -> {}", path.display(), table.to_json());
}

/// Report a usage error on stderr and exit nonzero without a panic
/// backtrace — this is an operator mistake, not a program bug.
fn die(msg: &str) -> ! {
    eprintln!("run_dns: error: {msg}");
    std::process::exit(2);
}

/// Parse a flag value, naming the flag and the offending input on error.
fn parse<T: std::str::FromStr>(flag: &str, raw: &str) -> T {
    raw.parse()
        .unwrap_or_else(|_| die(&format!("invalid value {raw:?} for {flag}")))
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next()
                .unwrap_or_else(|| die(&format!("missing value for {name}")))
        };
        match flag.as_str() {
            "--case" => args.case = value("--case"),
            "--gamma" => args.gamma = parse("--gamma", &value("--gamma")),
            "--ra" => args.ra = parse("--ra", &value("--ra")),
            "--order" => args.order = parse("--order", &value("--order")),
            "--dt" => args.dt = parse("--dt", &value("--dt")),
            "--steps" => args.steps = parse("--steps", &value("--steps")),
            "--ranks" => args.ranks = parse("--ranks", &value("--ranks")),
            "--analysis-ranks" => {
                args.analysis_ranks = parse("--analysis-ranks", &value("--analysis-ranks"))
            }
            "--threads" => args.threads = parse("--threads", &value("--threads")),
            "--resolution" => args.resolution = parse("--resolution", &value("--resolution")),
            "--sample-every" => {
                args.sample_every = parse("--sample-every", &value("--sample-every"))
            }
            "--checkpoint-every" => {
                args.checkpoint_every = parse("--checkpoint-every", &value("--checkpoint-every"))
            }
            "--checkpoint-keep" => {
                args.checkpoint_keep = parse("--checkpoint-keep", &value("--checkpoint-keep"))
            }
            "--max-rollbacks" => {
                args.max_rollbacks = parse("--max-rollbacks", &value("--max-rollbacks"))
            }
            "--dt-factor" => args.dt_factor = parse("--dt-factor", &value("--dt-factor")),
            "--fault-seed" => args.fault_seed = parse("--fault-seed", &value("--fault-seed")),
            "--inject-nan-at" => args
                .inject_nan_at
                .push(parse("--inject-nan-at", &value("--inject-nan-at"))),
            "--corrupt-checkpoint-at" => args.corrupt_checkpoint_at.push(parse(
                "--corrupt-checkpoint-at",
                &value("--corrupt-checkpoint-at"),
            )),
            "--fail-checkpoint-at" => args.fail_checkpoint_at.push(parse(
                "--fail-checkpoint-at",
                &value("--fail-checkpoint-at"),
            )),
            "--pod" => args.pod = true,
            "--restart" => args.restart = Some(PathBuf::from(value("--restart"))),
            "--tuning" => args.tuning = Some(PathBuf::from(value("--tuning"))),
            "--out" => args.out = PathBuf::from(value("--out")),
            "--telemetry-jsonl" => {
                args.telemetry_jsonl = Some(PathBuf::from(value("--telemetry-jsonl")))
            }
            "--telemetry-prom" => {
                args.telemetry_prom = Some(PathBuf::from(value("--telemetry-prom")))
            }
            "--trace-depth" => {
                args.trace_depth = Some(parse("--trace-depth", &value("--trace-depth")))
            }
            "--json-summary" => args.json_summary = Some(PathBuf::from(value("--json-summary"))),
            "--prom-listen" => args.prom_listen = Some(value("--prom-listen")),
            "--health-jsonl" => args.health_jsonl = Some(PathBuf::from(value("--health-jsonl"))),
            "--flight" => args.flight = parse("--flight", &value("--flight")),
            "--help" | "-h" => {
                println!(
                    "flags: --case box|cylinder --gamma G --ra RA --order P --dt DT \
                     --steps N --ranks N --analysis-ranks K --threads N --resolution R \
                     --sample-every N --checkpoint-every N \
                     --checkpoint-keep K --max-rollbacks N --dt-factor F \
                     --fault-seed S --inject-nan-at STEP --corrupt-checkpoint-at STEP \
                     --fail-checkpoint-at STEP --pod --restart CHECKPOINT.bpl \
                     --tuning TUNING.json --out DIR \
                     --telemetry-jsonl FILE.jsonl --telemetry-prom FILE.prom \
                     --trace-depth N --json-summary FILE.json \
                     --prom-listen ADDR:PORT --health-jsonl FILE.jsonl --flight N"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }
    if !args.dt.is_finite() || args.dt <= 0.0 {
        die("--dt must be a positive finite number");
    }
    if args.order == 0 {
        die("--order must be at least 1");
    }
    if !(args.dt_factor > 0.0 && args.dt_factor < 1.0) {
        die("--dt-factor must be in (0, 1)");
    }
    if args.threads == 0 {
        die("--threads must be at least 1");
    }
    if args.ranks == 0 || args.ranks > 64 {
        die("--ranks must be in 1..=64 (survivor masks are 64-bit)");
    }
    if args.ranks + args.analysis_ranks > 64 {
        die("--ranks plus --analysis-ranks must not exceed 64");
    }
    if args.analysis_ranks > 0 && args.sample_every == 0 {
        die("--analysis-ranks needs --sample-every > 0 (slabs ship on sample steps)");
    }
    args
}

/// True when any observability surface was requested — telemetry then
/// runs enabled even without a JSONL sink (the flight ring, health
/// detectors, and live scrape endpoint all feed off the same emit path).
fn obs_requested(args: &Args) -> bool {
    args.telemetry_jsonl.is_some()
        || args.telemetry_prom.is_some()
        || args.prom_listen.is_some()
        || args.health_jsonl.is_some()
        || args.flight > 0
}

/// Per-rank JSONL stream path: `tel.jsonl` → `tel.rank3.jsonl`. One
/// stream per rank is what `rbx-obs merge` expects.
fn rank_jsonl_path(base: &Path, rank: usize) -> PathBuf {
    base.with_extension(format!("rank{rank}.jsonl"))
}

/// Install the online health detectors (tap on the telemetry stream) and
/// the optional live Prometheus scrape endpoint.
fn attach_observers(tel: &Telemetry, args: &Args) -> (HealthMonitor, Option<PromServer>) {
    let mon = HealthMonitor::new(HealthConfig::default(), tel);
    let mon = match &args.health_jsonl {
        Some(path) => match mon.with_jsonl(path) {
            Ok(m) => {
                println!("  health: detector events -> {}", path.display());
                m
            }
            Err(e) => die(&format!(
                "cannot create health JSONL {}: {e}",
                path.display()
            )),
        },
        None => mon,
    };
    mon.install(tel);
    let prom = args
        .prom_listen
        .as_deref()
        .map(|addr| match rbx::obs::prom::serve(tel, addr) {
            Ok(s) => {
                println!("  telemetry: live scrape endpoint on http://{}/", s.addr());
                s
            }
            Err(e) => die(&format!("cannot bind --prom-listen {addr}: {e}")),
        });
    (mon, prom)
}

/// Recovery events aggregated by token, for the machine-readable summary.
fn recovery_totals(events: &[RecoveryEvent]) -> Vec<(&'static str, Value)> {
    let mut totals: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for e in events {
        *totals.entry(e.token()).or_insert(0) += 1;
    }
    totals
        .into_iter()
        .map(|(k, v)| (k, Value::int(v)))
        .collect()
}

/// Sender-side in-situ vitals of one solver rank, for the run summary.
struct InsituSenderSummary {
    dest: usize,
    stats: rbx::comm::SlabSenderStats,
    compress_busy: u64,
    stalled: bool,
}

/// One rank's result from the distributed run: a solver rank's report
/// bundle, or what a dedicated analysis rank saw.
enum RankOut {
    Solver {
        report: Box<rbx::core::RunReport>,
        elapsed: f64,
        obs_rows: Vec<String>,
        stats: RunStatistics,
        health_events: Option<usize>,
        insitu: Option<InsituSenderSummary>,
    },
    Analysis {
        rank: usize,
        outcome: Result<rbx::insitu::AnalysisOutcome, rbx::insitu::InsituError>,
    },
}

/// The distributed time loop: `--ranks N` runs the case partitioned over
/// N in-process ranks. The partition comes from the restart
/// repartitioner's cost model, not from whatever layout a restart
/// checkpoint was written under — checkpoints are topology-independent,
/// so `--restart` accepts a checkpoint of any provenance. A reduced
/// output set (observables CSV, checkpoints, telemetry, summary) keeps
/// the rank-local paths honest; the field/POD pipelines stay
/// single-rank.
///
/// `--analysis-ranks K` appends K dedicated analysis ranks to the world.
/// Solver collectives run on a [`rbx::comm::SubsetComm`] restricted to
/// the solver ranks, so the trajectory is byte-identical with or without
/// the analysis plane; slabs travel solver rank `r` → analysis rank
/// `N + (r mod K)` over the best-effort slab channel.
fn run_multirank(args: Args) {
    use rbx::comm::{run_on_ranks, Communicator};
    use rbx::core::plan_repartition;

    for (flag, set) in [
        ("--pod", args.pod),
        ("--inject-nan-at", !args.inject_nan_at.is_empty()),
        (
            "--corrupt-checkpoint-at",
            !args.corrupt_checkpoint_at.is_empty(),
        ),
        ("--fail-checkpoint-at", !args.fail_checkpoint_at.is_empty()),
    ] {
        if set {
            die(&format!(
                "{flag} is single-rank only (drop --ranks/--analysis-ranks)"
            ));
        }
    }

    let case = match args.case.as_str() {
        "box" => rbx::core::rbc_box_case(args.gamma, args.resolution, args.resolution, false, 1),
        "cylinder" => rbx::core::rbc_cylinder_case(args.gamma, (args.resolution / 2).max(1), 1),
        other => die(&format!("unknown case {other:?} for --case (box|cylinder)")),
    };
    let cfg = SolverConfig {
        ra: args.ra,
        order: args.order,
        dt: args.dt,
        ic_noise: 0.05,
        ..Default::default()
    };
    let plan = match plan_repartition(&case.mesh, args.order, args.ranks, None, None) {
        Ok(p) => p,
        Err(e) => die(&format!("cannot partition for --ranks {}: {e}", args.ranks)),
    };
    println!(
        "run_dns: {} case, Γ = {}, Ra = {:.1e}, degree {}, dt = {}, {} ranks",
        args.case, args.gamma, args.ra, args.order, args.dt, args.ranks
    );
    println!(
        "  {} elements over {} ranks ({}..{} per rank), {} steps",
        case.mesh.num_elements(),
        args.ranks,
        plan.min_elems,
        plan.max_elems,
        args.steps
    );
    let solver_n = args.ranks;
    let analysis_k = args.analysis_ranks;
    if analysis_k > 0 {
        println!(
            "  in-situ analysis: {analysis_k} dedicated rank{} (world {}..{}), \
             best-effort slab channel, drop-with-counter degradation",
            if analysis_k == 1 { "" } else { "s" },
            solver_n,
            solver_n + analysis_k - 1
        );
    }

    let checkpoint_dir = args.out.join("checkpoints");
    let cfg_ref = &cfg;
    let case_ref = &case;
    let plan_ref = &plan;
    let args_ref = &args;
    let results = run_on_ranks(solver_n + analysis_k, move |comm| {
        let rank = comm.rank();
        if rank >= solver_n {
            // Dedicated analysis rank: never joins a solver collective,
            // never touches the checkpoint set. It drains slab channels
            // from its assigned solver peers until they close (or die —
            // the idle deadline covers a world that stopped sending).
            let tel = Telemetry::disabled();
            if obs_requested(args_ref) {
                tel.set_enabled(true);
                if let Some(path) = &args_ref.telemetry_jsonl {
                    let rp = rank_jsonl_path(path, rank);
                    if let Err(e) = tel.open_jsonl(&rp) {
                        die(&format!(
                            "cannot create telemetry JSONL {}: {e}",
                            rp.display()
                        ));
                    }
                }
            }
            let me = rank - solver_n;
            let cfg = rbx::insitu::AnalysisConfig {
                senders: (0..solver_n).filter(|s| s % analysis_k == me).collect(),
                idle_timeout: std::time::Duration::from_secs(60),
                ..Default::default()
            };
            let outcome = rbx::insitu::run_analysis_rank(comm, &cfg, &tel);
            tel.flush();
            return RankOut::Analysis { rank, outcome };
        }
        // Solver rank. With an analysis plane the simulation communicates
        // over a subset communicator covering exactly the solver ranks:
        // collectives (and hence the trajectory) are unchanged by K.
        let subset;
        let solver_comm: &dyn Communicator = if analysis_k > 0 {
            subset = rbx::comm::SubsetComm::new(comm, (0..solver_n).collect())
                .expect("solver rank is in the solver subset");
            &subset
        } else {
            comm
        };
        let mut sim = Simulation::new(
            cfg_ref.clone(),
            &case_ref.mesh,
            &plan_ref.part,
            plan_ref.elems[rank].clone(),
            solver_comm,
        );
        // Observability is per-rank: every rank gets its own JSONL stream
        // (`tel.rank{r}.jsonl` — the unit `rbx-obs merge` consumes) and
        // its own flight ring; the health detectors and live export run
        // on rank 0, fed out-of-band by the other ranks.
        let tel = Telemetry::disabled();
        let mut health: Option<HealthMonitor> = None;
        let mut prom: Option<PromServer> = None;
        if obs_requested(args_ref) {
            tel.set_enabled(true);
            if let Some(depth) = args_ref.trace_depth {
                tel.set_trace_depth(depth);
            }
            if let Some(path) = &args_ref.telemetry_jsonl {
                let rp = rank_jsonl_path(path, rank);
                if let Err(e) = tel.open_jsonl(&rp) {
                    die(&format!(
                        "cannot create telemetry JSONL {}: {e}",
                        rp.display()
                    ));
                }
                if rank == 0 {
                    println!(
                        "  telemetry: per-rank JSONL streams -> {} ... ({} ranks)",
                        rp.display(),
                        args_ref.ranks
                    );
                }
            }
            if args_ref.flight > 0 {
                tel.attach_flight(args_ref.flight);
            }
            if rank == 0 {
                let (mon, server) = attach_observers(&tel, args_ref);
                health = Some(mon);
                prom = server;
            }
        }
        sim.set_telemetry(&tel);

        // In-situ tap: a bounded best-effort slab channel to this rank's
        // analysis peer plus an off-thread double-buffered encoder. Both
        // run on the world communicator (the destination is outside the
        // solver subset) and both degrade by dropping-with-counter, never
        // by blocking the step loop.
        let insitu_dest = (analysis_k > 0).then(|| solver_n + rank % analysis_k);
        let mut slab_tx = insitu_dest.map(|dest| {
            let mut tx = rbx::comm::SlabSender::new(comm, dest, 8);
            tx.set_telemetry(&tel);
            tx
        });
        let mut encoder = insitu_dest.map(|_| {
            AsyncFieldCompressor::new(&sim.geom, args_ref.order + 1, CompressionConfig::default())
        });

        let checkpoints = CheckpointSet::new(&checkpoint_dir, args_ref.checkpoint_keep);
        if let Some(chk) = &args_ref.restart {
            // Topology-independent restore: the checkpoint may have been
            // written at any rank count.
            match rbx::core::read_checkpoint(&mut sim, chk) {
                Ok(()) => {
                    if rank == 0 {
                        println!(
                            "  restarted from {} at step {} (t = {:.4})",
                            chk.display(),
                            sim.state.istep,
                            sim.state.time
                        );
                    }
                }
                Err(e) => die(&format!("restart checkpoint rejected: {e}")),
            }
        } else {
            sim.init_rbc();
        }

        let policy = RecoveryPolicy {
            max_rollbacks: args_ref.max_rollbacks,
            dt_factor: args_ref.dt_factor,
            checkpoint_every: args_ref.checkpoint_every,
            ..Default::default()
        };
        let mut runner = ResilientRunner::new(checkpoints, policy);
        if args_ref.flight > 0 {
            runner = runner.with_flight_dir(args_ref.out.join("flight"));
        }
        let target_step = sim.state.istep + args_ref.steps;
        let mut last_sampled = sim.state.istep;
        let mut obs_rows = Vec::new();
        let mut stats = RunStatistics::default();
        // Out-of-band vitals: step → (reports, wall max, wall sum),
        // folded into the imbalance detector once every rank reported.
        let obs_on = tel.is_enabled();
        let mut pending: std::collections::BTreeMap<u64, (usize, f64, f64)> =
            std::collections::BTreeMap::new();
        let mut prev_comm = 0.0f64;
        let mut prev_gs = 0u64;
        let t0 = std::time::Instant::now();
        let report = runner.run_with(&mut sim, target_step, |sim, st| {
            let step = sim.state.istep;
            if obs_on {
                // Every step, off the collective path: fire-and-forget
                // this rank's vitals at rank 0, which drains whatever has
                // arrived and folds complete step groups into the
                // cross-rank imbalance detector.
                let comm_now = tel.tracer().seconds("gs/shared");
                let gs_now = tel.metrics().counter("rbx_gs_bytes_total");
                let my = rbx::comm::StepHealthReport {
                    rank: sim.comm.rank(),
                    step: step as u64,
                    wall_s: st.wall_seconds,
                    cfl: 0.0,
                    comm_s: (comm_now - prev_comm).max(0.0),
                    gs_bytes: gs_now.saturating_sub(prev_gs),
                };
                prev_comm = comm_now;
                prev_gs = gs_now;
                if sim.comm.rank() == 0 {
                    let mut fold = |r: &rbx::comm::StepHealthReport| {
                        let e = pending.entry(r.step).or_insert((0, f64::NEG_INFINITY, 0.0));
                        e.0 += 1;
                        e.1 = e.1.max(r.wall_s);
                        e.2 += r.wall_s;
                    };
                    fold(&my);
                    let batch =
                        rbx::comm::drain_step_health(sim.comm, std::time::Duration::from_millis(1));
                    for r in &batch {
                        fold(r);
                    }
                    if !batch.is_empty() {
                        tel.counter_add(
                            rbx::telemetry::names::OBS_GATHER_REPORTS_TOTAL,
                            batch.len() as u64,
                        );
                    }
                    let complete: Vec<u64> = pending
                        .iter()
                        .filter(|(_, e)| e.0 >= args_ref.ranks)
                        .map(|(&s, _)| s)
                        .collect();
                    for s in complete {
                        if let Some((c, max, sum)) = pending.remove(&s) {
                            let mean = sum / c as f64;
                            if let Some(mon) = &health {
                                if mean > 0.0 {
                                    mon.observe_imbalance(s, max / mean);
                                }
                            }
                        }
                    }
                    // A report lost on the wire must not pin its step
                    // group (and the map) forever.
                    while pending.len() > 256 {
                        let s = *pending.keys().next().unwrap();
                        pending.remove(&s);
                    }
                } else {
                    rbx::comm::send_step_health(sim.comm, &my);
                }
            }
            if args_ref.sample_every == 0
                || step % args_ref.sample_every != 0
                || step <= last_sampled
            {
                return;
            }
            last_sampled = step;
            // Collective reductions: every rank participates, rank 0
            // records.
            let obs = Observables::new(&sim.geom, &case_ref.mesh, &sim.my_elems);
            let comm = sim.comm;
            let nu_v =
                obs.nusselt_volume(&sim.state.u[2], &sim.state.t, cfg_ref.ra, cfg_ref.pr, comm);
            let ke = obs.kinetic_energy([&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]], comm);
            if sim.comm.rank() == 0 {
                stats.nu_volume.push(nu_v);
                stats.kinetic_energy.push(ke);
                obs_rows.push(format!(
                    "{step},{},{nu_v},{ke},{}",
                    sim.state.time, st.p_iters
                ));
                println!(
                    "  step {step:>6}  t = {:.3}  Nu = {nu_v:.4}  KE = {ke:.3e}  p-its = {}",
                    sim.state.time, st.p_iters
                );
            }
            // In-situ ship: snapshot into the encoder (drop-if-busy),
            // forward finished encodings onto the slab channel
            // (drop-if-full), and publish the sender vitals. Nothing on
            // this path can block or fail the step.
            if let (Some(enc), Some(tx)) = (encoder.as_mut(), slab_tx.as_mut()) {
                if !enc.try_submit(step as u64, sim.state.time, "uz", &sim.state.u[2]) {
                    tel.counter_add(rbx::telemetry::names::INSITU_COMPRESS_BUSY_TOTAL, 1);
                }
                while let Some(done) = enc.poll() {
                    let body = rbx::io::encode_slab_body(
                        done.step,
                        done.time,
                        &done.var,
                        &done.compressed.to_bytes(),
                    );
                    let _ = tx.offer(&body);
                }
                let s = tx.stats();
                tel.emit(&rbx::telemetry::schema::insitu_sender_record(
                    step as u64,
                    rank as u64,
                    insitu_dest.unwrap_or(0) as u64,
                    s.sent,
                    s.dropped,
                    s.acked,
                    s.inflight_highwater,
                    tx.is_stalled(),
                ));
            }
        });
        let elapsed = t0.elapsed().as_secs_f64();
        let report = match report {
            Ok(r) => r,
            Err(e) => die(&format!("simulation failed on rank {rank}: {e}")),
        };
        // Drain the encoder tail and close the slab channel; the CLOSE
        // frame lets the analysis peer exit cleanly instead of waiting
        // out its idle deadline.
        let insitu = match (encoder, slab_tx) {
            (Some(enc), Some(mut tx)) => {
                let (rest, enc_stats) = enc.finish();
                for done in rest {
                    let body = rbx::io::encode_slab_body(
                        done.step,
                        done.time,
                        &done.var,
                        &done.compressed.to_bytes(),
                    );
                    let _ = tx.offer(&body);
                }
                tx.close();
                Some(InsituSenderSummary {
                    dest: insitu_dest.unwrap_or(0),
                    stats: tx.stats(),
                    compress_busy: enc_stats.busy_dropped,
                    stalled: tx.is_stalled(),
                })
            }
            _ => None,
        };
        if rank == 0 {
            if let Some(path) = &args_ref.telemetry_prom {
                match tel.write_prometheus(path) {
                    Ok(()) => println!("  telemetry: Prometheus snapshot in {}", path.display()),
                    Err(e) => {
                        eprintln!("run_dns: warning: could not write {}: {e}", path.display())
                    }
                }
            }
            if let Some(mon) = &health {
                mon.flush();
            }
            tel.flush();
        }
        let health_events = health.as_ref().map(|m| m.event_count());
        if let Some(server) = prom {
            server.shutdown();
        }
        RankOut::Solver {
            report: Box::new(report),
            elapsed,
            obs_rows,
            stats,
            health_events,
            insitu,
        }
    });

    // Flight dumps land per rank; surface all of them, not just rank 0's.
    let all_dumps: Vec<PathBuf> = results
        .iter()
        .flat_map(|r| match r {
            RankOut::Solver { report, .. } => report.flight_dumps.clone(),
            RankOut::Analysis { .. } => Vec::new(),
        })
        .collect();
    let mut analysis_rows = Vec::new();
    let mut insitu_senders = Vec::new();
    let mut rank0 = None;
    for (i, r) in results.into_iter().enumerate() {
        match r {
            RankOut::Solver {
                report,
                elapsed,
                obs_rows,
                stats,
                health_events,
                insitu,
            } => {
                if let Some(s) = insitu {
                    insitu_senders.push((i, s));
                }
                if i == 0 {
                    rank0 = Some((report, elapsed, obs_rows, stats, health_events));
                }
            }
            RankOut::Analysis { rank, outcome } => analysis_rows.push((rank, outcome)),
        }
    }
    let (report, elapsed, obs_rows, stats, health_events) = rank0.expect("rank 0 result");
    use std::io::Write;
    let csv = std::fs::File::create(args.out.join("observables.csv")).and_then(|mut f| {
        writeln!(f, "step,time,nu_volume,kinetic_energy,p_iters")?;
        for r in &obs_rows {
            writeln!(f, "{r}")?;
        }
        Ok(())
    });
    if let Err(e) = csv {
        eprintln!("run_dns: warning: could not write observables.csv: {e}");
    }

    println!("\n── run summary ───────────────────────────────────────────");
    let row = |k: &str, v: String| println!("  {k:<22} {v}");
    row("ranks", format!("{}", args.ranks));
    if analysis_k > 0 {
        row("analysis ranks", format!("{analysis_k}"));
        let sent: u64 = insitu_senders.iter().map(|(_, s)| s.stats.sent).sum();
        let dropped: u64 = insitu_senders.iter().map(|(_, s)| s.stats.dropped).sum();
        let busy: u64 = insitu_senders.iter().map(|(_, s)| s.compress_busy).sum();
        row(
            "in-situ slabs",
            format!("{sent} sent, {dropped} dropped (window full), {busy} dropped (encoder busy)"),
        );
        for (rank, s) in &insitu_senders {
            if s.stalled {
                println!(
                    "  [insitu]   solver rank {rank}: analysis rank {} stalled or dead \
                     (degraded to drop-with-counter)",
                    s.dest
                );
            }
        }
    }
    row("steps completed", format!("{}", report.steps_completed));
    row(
        "wall time",
        format!(
            "{elapsed:.2} s ({:.1} ms/step)",
            1e3 * elapsed / args.steps.max(1) as f64
        ),
    );
    row("rollbacks", format!("{}", report.rollbacks));
    row("final dt", format!("{}", report.final_dt));
    row("recovery events", format!("{}", report.events.len()));
    if let Some(n) = health_events {
        row("health events", format!("{n}"));
    }
    if stats.nu_volume.count() > 0 {
        row(
            "Nu(vol)",
            format!(
                "{:.4} ± {:.4} over {} samples",
                stats.nu_volume.mean(),
                stats.nu_volume.std(),
                stats.nu_volume.count()
            ),
        );
    }
    row("outputs", args.out.display().to_string());
    for e in &report.events {
        println!("  [recovery] {e}");
    }
    for (rank, outcome) in &analysis_rows {
        match outcome {
            Ok(o) => {
                let pods = o
                    .pods
                    .iter()
                    .map(|p| format!("r{}:{} snaps rank {}", p.src, p.count, p.rank))
                    .collect::<Vec<_>>()
                    .join(", ");
                println!(
                    "  [insitu]   analysis rank {rank}: {} slabs, {} corrupt, {} gaps{}{}",
                    o.received,
                    o.corrupt,
                    o.gaps,
                    if o.idle_exit { ", idle exit" } else { "" },
                    if pods.is_empty() {
                        String::new()
                    } else {
                        format!(" | pod {pods}")
                    }
                );
            }
            Err(e) => eprintln!("run_dns: warning: analysis rank {rank} failed: {e}"),
        }
    }
    for p in &all_dumps {
        println!("  [flight]   post-mortem ring dump in {}", p.display());
    }
}

fn main() {
    let args = parse_args();
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        die(&format!(
            "cannot create output dir {}: {e}",
            args.out.display()
        ));
    }
    // Install the per-kernel grain-crossover table before any kernel runs
    // (first writer wins, so this pins the selection for the whole run —
    // including elastic restarts, which replay the same table from the run
    // config and therefore the same serial/pooled decisions).
    install_tuning(&args);
    if args.ranks > 1 || args.analysis_ranks > 0 {
        run_multirank(args);
        return;
    }

    let case = match args.case.as_str() {
        "box" => rbx::core::rbc_box_case(args.gamma, args.resolution, args.resolution, false, 1),
        "cylinder" => rbx::core::rbc_cylinder_case(args.gamma, (args.resolution / 2).max(1), 1),
        other => die(&format!("unknown case {other:?} for --case (box|cylinder)")),
    };
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: args.ra,
        order: args.order,
        dt: args.dt,
        ic_noise: 0.05,
        ..Default::default()
    };
    println!(
        "run_dns: {} case, Γ = {}, Ra = {:.1e}, degree {}, dt = {}",
        args.case, args.gamma, args.ra, args.order, args.dt
    );
    println!(
        "  {} elements, {} grid points, {} steps",
        case.mesh.num_elements(),
        case.mesh.num_elements() * (args.order + 1).pow(3),
        args.steps
    );
    println!("  config: {}", cfg.to_json());

    let mut sim = Simulation::new(
        cfg.clone(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        &comm,
    );
    // Persistent worker pool for every hot-path kernel; the pooled step is
    // bitwise identical for any --threads value.
    let pool = rbx::device::WorkerPool::new(args.threads);
    sim.set_pool(&pool);
    println!(
        "  worker pool: {} thread{}",
        pool.threads(),
        if pool.threads() == 1 { "" } else { "s" }
    );
    sim.init_rbc();

    // Observability: off (a single relaxed atomic load per hook) unless a
    // surface was requested.
    let tel = Telemetry::disabled();
    let mut health: Option<HealthMonitor> = None;
    let mut prom: Option<PromServer> = None;
    if obs_requested(&args) {
        tel.set_enabled(true);
        if let Some(depth) = args.trace_depth {
            tel.set_trace_depth(depth);
        }
        if let Some(path) = &args.telemetry_jsonl {
            if let Err(e) = tel.open_jsonl(path) {
                die(&format!(
                    "cannot create telemetry JSONL {}: {e}",
                    path.display()
                ));
            }
            println!("  telemetry: JSONL stream -> {}", path.display());
        }
        if args.flight > 0 {
            tel.attach_flight(args.flight);
            println!("  telemetry: flight ring of {} records", args.flight);
        }
        let (mon, server) = attach_observers(&tel, &args);
        health = Some(mon);
        prom = server;
    }
    sim.set_telemetry(&tel);

    let checkpoint_dir = args.out.join("checkpoints");
    let checkpoints = CheckpointSet::new(&checkpoint_dir, args.checkpoint_keep);

    if let Some(chk) = &args.restart {
        match rbx::core::read_checkpoint(&mut sim, chk) {
            Ok(()) => println!(
                "  restarted from {} at step {} (t = {:.4})",
                chk.display(),
                sim.state.istep,
                sim.state.time
            ),
            Err(e) => {
                // A rejected restart file (truncated, bit-flipped, stale
                // metadata) falls back to the newest verifiable rotation
                // generation rather than aborting the campaign.
                eprintln!("run_dns: warning: restart checkpoint rejected: {e}");
                match checkpoints.restore_latest(&mut sim) {
                    Ok(outcome) => {
                        for (p, err) in &outcome.rejected {
                            eprintln!("run_dns: warning: also rejected {}: {err}", p.display());
                        }
                        println!(
                            "  restarted from fallback {} at step {} (t = {:.4})",
                            outcome.path.display(),
                            sim.state.istep,
                            sim.state.time
                        );
                    }
                    Err(e2) => {
                        eprintln!("run_dns: error: no usable checkpoint to restart from: {e2}");
                        std::process::exit(1);
                    }
                }
            }
        }
    }

    // Mesh quality report (pre-flight check, as a production campaign
    // would run before burning machine time).
    let (aspect, jac_ratio) = rbx::mesh::quality_summary(&sim.geom);
    println!("  mesh quality: max aspect ratio {aspect:.2}, max Jacobian ratio {jac_ratio:.2}");

    // Output channels: async field file, observables CSV, optional POD.
    let fields = match AsyncBplWriter::create(&args.out.join("fields.bpl"), 4) {
        Ok(f) => f,
        Err(e) => die(&format!("cannot create field file: {e}")),
    };
    // Field compression runs off the critical path: the sample callback
    // only snapshots into the double-buffered encoder (drop-if-busy) and
    // forwards finished encodings to the async file engine.
    let mut encoder =
        AsyncFieldCompressor::new(&sim.geom, args.order + 1, CompressionConfig::default());
    let pod = if args.pod {
        let (w, r) = staging_channel(4);
        match PodConsumer::spawn(r, "uz", sim.geom.mass.clone(), 12) {
            Ok(c) => Some((w, c)),
            Err(e) => die(&format!("cannot start in-situ POD consumer: {e}")),
        }
    } else {
        None
    };
    let mut stats = RunStatistics::default();
    let mut profiles = ZProfiles::new(0.0, 1.0, 8);
    let mut obs_rows = Vec::new();

    let mut faults = FaultPlan::new(args.fault_seed);
    for &s in &args.inject_nan_at {
        faults = faults.inject_nan_at(s);
    }
    for &s in &args.corrupt_checkpoint_at {
        faults = faults.corrupt_checkpoint_at(s);
    }
    for &s in &args.fail_checkpoint_at {
        faults = faults.fail_write_at(s);
    }

    let policy = RecoveryPolicy {
        max_rollbacks: args.max_rollbacks,
        dt_factor: args.dt_factor,
        checkpoint_every: args.checkpoint_every,
        ..Default::default()
    };
    let mut runner = ResilientRunner::new(checkpoints, policy).with_faults(faults);
    if args.flight > 0 {
        runner = runner.with_flight_dir(args.out.join("flight"));
    }

    let target_step = sim.state.istep + args.steps;
    // After a rollback the runner replays steps already sampled; skip
    // those so the observables CSV stays monotone in step number.
    let mut last_sampled = sim.state.istep;
    let t0 = std::time::Instant::now();
    let report = runner.run_with(&mut sim, target_step, |sim, st| {
        let step = sim.state.istep;
        if args.sample_every == 0 || step % args.sample_every != 0 || step <= last_sampled {
            return;
        }
        last_sampled = step;
        let obs = Observables::new(&sim.geom, &case.mesh, &sim.my_elems);
        let nu_v = obs.nusselt_volume(&sim.state.u[2], &sim.state.t, cfg.ra, cfg.pr, &comm);
        let nu_h = obs.nusselt_wall(&sim.state.t, BoundaryTag::HotWall, &comm);
        let nu_c = obs.nusselt_wall(&sim.state.t, BoundaryTag::ColdWall, &comm);
        let ke = obs.kinetic_energy(
            [&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]],
            &comm,
        );
        let cfl = obs.cfl(
            [&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]],
            sim.cfg.dt,
            &comm,
        );
        stats.nu_volume.push(nu_v);
        stats.nu_hot.push(nu_h);
        stats.nu_cold.push(nu_c);
        stats.kinetic_energy.push(ke);
        profiles.sample(
            &sim.geom,
            [&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]],
            &sim.state.t,
        );
        obs_rows.push(format!(
            "{step},{},{nu_v},{nu_h},{nu_c},{ke},{cfl},{}",
            sim.state.time, st.p_iters
        ));
        println!(
            "  step {step:>6}  t = {:.3}  Nu = {nu_v:.4}  KE = {ke:.3e}  CFL = {cfl:.3}  p-its = {}",
            sim.state.time, st.p_iters
        );

        // Compressed field sample: snapshot into the async encoder
        // (drop-and-count when both buffers are busy — the step loop
        // never waits), then forward whatever finished encoding.
        if !encoder.try_submit(step as u64, sim.state.time, "uz", &sim.state.u[2]) {
            tel.counter_add(rbx::telemetry::names::INSITU_COMPRESS_BUSY_TOTAL, 1);
        }
        while let Some(done) = encoder.poll() {
            let shape = vec![done.compressed.data.len() as u64];
            fields.put(StepData {
                step: done.step,
                time: done.time,
                vars: vec![Variable::bytes("uz_compressed", shape, done.compressed.data)],
            });
        }
        if let Some((w, _)) = &pod {
            w.put(StepData {
                step: step as u64,
                time: sim.state.time,
                vars: vec![Variable::f64(
                    "uz",
                    vec![sim.n_local() as u64],
                    sim.state.u[2].clone(),
                )],
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("run_dns: error: simulation failed: {e}");
            std::process::exit(1);
        }
    };

    // Finalize outputs.
    use std::io::Write;
    let csv = std::fs::File::create(args.out.join("observables.csv")).and_then(|mut f| {
        writeln!(
            f,
            "step,time,nu_volume,nu_hot,nu_cold,kinetic_energy,cfl,p_iters"
        )?;
        for r in &obs_rows {
            writeln!(f, "{r}")?;
        }
        Ok(())
    });
    if let Err(e) = csv {
        eprintln!("run_dns: warning: could not write observables.csv: {e}");
    }
    if let Err(e) = profiles.write_csv(&comm, &args.out.join("z_profiles.csv")) {
        eprintln!("run_dns: warning: could not write z_profiles.csv: {e}");
    }
    // Drain the encoder tail (snapshots still in flight when the loop
    // ended) into the field file before closing it.
    let (tail, comp_stats) = encoder.finish();
    for done in tail {
        let shape = vec![done.compressed.data.len() as u64];
        fields.put(StepData {
            step: done.step,
            time: done.time,
            vars: vec![Variable::bytes(
                "uz_compressed",
                shape,
                done.compressed.data,
            )],
        });
    }
    let written = match fields.close() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("run_dns: warning: field file close failed: {e}");
            0
        }
    };

    // Optional POD drain (prints its own lines before the summary table).
    // A crashed consumer degrades to a warning — the run's outputs are
    // already on disk and must not be lost to an analysis failure.
    let pod_summary = pod.and_then(|(w, consumer)| {
        w.close();
        match consumer.join() {
            Ok(p) => {
                let sv = p.singular_values();
                let lead = if sv.is_empty() {
                    0.0
                } else {
                    let total: f64 = sv.iter().map(|s| s * s).sum();
                    sv[0] * sv[0] / total
                };
                Some((p.count(), p.rank(), lead))
            }
            Err(e) => {
                eprintln!("run_dns: warning: in-situ POD consumer failed: {e}");
                None
            }
        }
    });

    // Post-run resolution check (spectral tail energy of the temperature).
    let indicator = rbx::core::SpectralIndicator::new(args.order + 1);
    let under = indicator.underresolved_fraction(&sim.geom, &sim.state.t, 1e-4, &comm);
    let pct = sim.timers.percentages();
    let ms_per_step = 1e3 * elapsed / args.steps.max(1) as f64;

    // ---- structured end-of-run summary ------------------------------------
    println!("\n── run summary ───────────────────────────────────────────");
    let row = |k: &str, v: String| println!("  {k:<22} {v}");
    row("steps completed", format!("{}", report.steps_completed));
    row(
        "wall time",
        format!("{elapsed:.2} s ({ms_per_step:.1} ms/step)"),
    );
    let pstats = pool.stats();
    row(
        "worker pool",
        format!(
            "{} threads, {} dispatches, {} grain-gated, {} chunks",
            pstats.threads, pstats.dispatches, pstats.grained, pstats.chunks
        ),
    );
    row(
        "kernels",
        format!(
            "simd {}, tuning {}",
            rbx::basis::simd::level_name(),
            rbx::device::tuning().to_json()
        ),
    );
    row("rollbacks", format!("{}", report.rollbacks));
    row("final dt", format!("{}", report.final_dt));
    row("recovery events", format!("{}", report.events.len()));
    if let Some(mon) = &health {
        row("health events", format!("{}", mon.event_count()));
    }
    if stats.nu_volume.count() > 0 {
        row(
            "Nu(vol)",
            format!(
                "{:.4} ± {:.4} over {} samples",
                stats.nu_volume.mean(),
                stats.nu_volume.std(),
                stats.nu_volume.count()
            ),
        );
    }
    row(
        "field samples",
        format!(
            "{written} in fields.bpl ({} encoded async, {} dropped busy)",
            comp_stats.submitted, comp_stats.busy_dropped
        ),
    );
    if let Some((count, rank, lead)) = pod_summary {
        row(
            "in-situ POD",
            format!("{count} snapshots, rank {rank}, leading mode {lead:.4}"),
        );
    }
    row(
        "resolution monitor",
        format!(
            "{:.1} % of elements exceed 1e-4 spectral tail",
            100.0 * under
        ),
    );
    row(
        "phase split",
        format!(
            "P {:.0} % | V {:.0} % | T {:.0} % | other {:.0} %",
            pct[0], pct[1], pct[2], pct[3]
        ),
    );
    row("outputs", args.out.display().to_string());
    if report.rollbacks > 0 || !runner.faults.fired.is_empty() {
        for f in &runner.faults.fired {
            println!("  [fault]    {f}");
        }
        for e in &report.events {
            println!("  [recovery] {e}");
        }
    }
    for p in &report.flight_dumps {
        println!("  [flight]   post-mortem ring dump in {}", p.display());
    }

    // Machine-readable summary: one `kind: "summary"` record, shared by the
    // JSONL stream and the optional standalone --json-summary file.
    let summary = Value::obj([
        ("schema", Value::str(TELEMETRY_SCHEMA)),
        ("kind", Value::str("summary")),
        ("steps", Value::int(report.steps_completed as u64)),
        ("wall_s", Value::num(elapsed)),
        ("ms_per_step", Value::num(ms_per_step)),
        ("rollbacks", Value::int(report.rollbacks as u64)),
        ("final_dt", Value::num(report.final_dt)),
        ("threads", Value::int(pstats.threads as u64)),
        ("pool_dispatches", Value::int(pstats.dispatches)),
        ("pool_grained", Value::int(pstats.grained)),
        ("simd", Value::str(rbx::basis::simd::level_name())),
        (
            "kernel_tuning",
            Value::parse(&rbx::device::tuning().to_json())
                .expect("tuning serialization is valid JSON"),
        ),
        (
            "phase_pct",
            Value::obj([
                ("pressure", Value::num(pct[0])),
                ("velocity", Value::num(pct[1])),
                ("temperature", Value::num(pct[2])),
                ("other", Value::num(pct[3])),
            ]),
        ),
        (
            "recovery_events",
            Value::arr(report.events.iter().map(|e| e.telemetry_record())),
        ),
        (
            "recovery_totals",
            Value::obj(recovery_totals(&report.events)),
        ),
        (
            "flight_dumps",
            Value::arr(
                report
                    .flight_dumps
                    .iter()
                    .map(|p| Value::str(p.display().to_string())),
            ),
        ),
    ]);
    if tel.is_enabled() {
        tel.emit(&summary);
        tel.flush();
        if let Some(path) = &args.telemetry_jsonl {
            println!(
                "  telemetry: {} JSONL records in {}",
                tel.jsonl_lines(),
                path.display()
            );
        }
        if let Some(path) = &args.telemetry_prom {
            match tel.write_prometheus(path) {
                Ok(()) => println!("  telemetry: Prometheus snapshot in {}", path.display()),
                Err(e) => eprintln!("run_dns: warning: could not write {}: {e}", path.display()),
            }
        }
    }
    if let Some(path) = &args.json_summary {
        if let Err(e) = std::fs::write(path, format!("{summary}\n")) {
            eprintln!("run_dns: warning: could not write {}: {e}", path.display());
        } else {
            println!("  json summary in {}", path.display());
        }
    }
    if let Some(mon) = &health {
        mon.flush();
    }
    // Keep the scrape endpoint alive until the very end: the last scrape
    // sees the final counters, including the summary emit above.
    if let Some(server) = prom {
        server.shutdown();
    }
}
