//! `run_dns` — the production-style DNS driver.
//!
//! A configurable Rayleigh-Bénard run with the full workflow of the paper:
//! time stepping, running statistics and z-profiles, periodic compressed
//! field output, checkpointing, and optional in-situ streaming POD.
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin run_dns -- \
//!     --case cylinder --gamma 1.0 --ra 1e5 --order 5 --dt 1.5e-3 \
//!     --steps 500 --sample-every 20 --checkpoint-every 200 --pod
//! ```
//!
//! All flags are optional; defaults give a small box run. Outputs land in
//! `target/dns_run/` (override with `--out`).

use rbx::basis::ModalBasis;
use rbx::comm::SingleComm;
use rbx::compress::{compress_field, CompressionConfig};
use rbx::core::stats::{RunStatistics, ZProfiles};
use rbx::core::{write_checkpoint, Observables, Simulation, SolverConfig};
use rbx::insitu::PodConsumer;
use rbx::io::{staging_channel, AsyncBplWriter, StepData, Variable};
use rbx::mesh::BoundaryTag;
use std::path::PathBuf;

#[derive(Debug)]
struct Args {
    case: String,
    gamma: f64,
    ra: f64,
    order: usize,
    dt: f64,
    steps: usize,
    resolution: usize,
    sample_every: usize,
    checkpoint_every: usize,
    pod: bool,
    restart: Option<PathBuf>,
    out: PathBuf,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            case: "box".into(),
            gamma: 2.0,
            ra: 1e5,
            order: 5,
            dt: 2e-3,
            steps: 300,
            resolution: 3,
            sample_every: 20,
            checkpoint_every: 0,
            pod: false,
            restart: None,
            out: PathBuf::from("target/dns_run"),
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--case" => args.case = value("--case"),
            "--gamma" => args.gamma = value("--gamma").parse().expect("gamma"),
            "--ra" => args.ra = value("--ra").parse().expect("ra"),
            "--order" => args.order = value("--order").parse().expect("order"),
            "--dt" => args.dt = value("--dt").parse().expect("dt"),
            "--steps" => args.steps = value("--steps").parse().expect("steps"),
            "--resolution" => args.resolution = value("--resolution").parse().expect("resolution"),
            "--sample-every" => args.sample_every = value("--sample-every").parse().expect("sample-every"),
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every").parse().expect("checkpoint-every")
            }
            "--pod" => args.pod = true,
            "--restart" => args.restart = Some(PathBuf::from(value("--restart"))),
            "--out" => args.out = PathBuf::from(value("--out")),
            "--help" | "-h" => {
                println!(
                    "flags: --case box|cylinder --gamma G --ra RA --order P --dt DT \
                     --steps N --resolution R --sample-every N --checkpoint-every N \
                     --pod --restart CHECKPOINT.bpl --out DIR"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out).expect("create output dir");

    let case = match args.case.as_str() {
        "box" => rbx::core::rbc_box_case(args.gamma, args.resolution, args.resolution, false, 1),
        "cylinder" => rbx::core::rbc_cylinder_case(args.gamma, (args.resolution / 2).max(1), 1),
        other => panic!("unknown case {other} (box|cylinder)"),
    };
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: args.ra,
        order: args.order,
        dt: args.dt,
        ic_noise: 0.05,
        ..Default::default()
    };
    println!("run_dns: {} case, Γ = {}, Ra = {:.1e}, degree {}, dt = {}",
        args.case, args.gamma, args.ra, args.order, args.dt);
    println!("  {} elements, {} grid points, {} steps",
        case.mesh.num_elements(),
        case.mesh.num_elements() * (args.order + 1).pow(3),
        args.steps);
    println!("  config: {}", cfg.to_json());

    let mut sim = Simulation::new(cfg.clone(), &case.mesh, &case.part, case.elems[0].clone(), &comm);
    sim.init_rbc();
    if let Some(chk) = &args.restart {
        rbx::core::read_checkpoint(&mut sim, chk).expect("read checkpoint");
        println!("  restarted from {} at step {} (t = {:.4})",
            chk.display(), sim.state.istep, sim.state.time);
    }

    // Mesh quality report (pre-flight check, as a production campaign
    // would run before burning machine time).
    let (aspect, jac_ratio) = rbx::mesh::quality_summary(&sim.geom);
    println!("  mesh quality: max aspect ratio {aspect:.2}, max Jacobian ratio {jac_ratio:.2}");

    // Output channels: async field file, observables CSV, optional POD.
    let fields = AsyncBplWriter::create(&args.out.join("fields.bpl"), 4).expect("field file");
    let basis = ModalBasis::new(args.order + 1);
    let comp_cfg = CompressionConfig::default();
    let pod = if args.pod {
        let (w, r) = staging_channel(4);
        Some((w, PodConsumer::spawn(r, "uz", sim.geom.mass.clone(), 12)))
    } else {
        None
    };
    let mut stats = RunStatistics::default();
    let mut profiles = ZProfiles::new(0.0, 1.0, 8);
    let mut obs_rows = Vec::new();

    let t0 = std::time::Instant::now();
    for step in 1..=args.steps {
        let st = sim.step();
        assert!(st.converged, "step {step} failed: {st:?}");

        if args.sample_every > 0 && step % args.sample_every == 0 {
            let obs = Observables::new(&sim.geom, &case.mesh, &sim.my_elems);
            let nu_v = obs.nusselt_volume(&sim.state.u[2], &sim.state.t, cfg.ra, cfg.pr, &comm);
            let nu_h = obs.nusselt_wall(&sim.state.t, BoundaryTag::HotWall, &comm);
            let nu_c = obs.nusselt_wall(&sim.state.t, BoundaryTag::ColdWall, &comm);
            let ke = obs.kinetic_energy(
                [&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]],
                &comm,
            );
            let cfl = obs.cfl(
                [&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]],
                cfg.dt,
                &comm,
            );
            stats.nu_volume.push(nu_v);
            stats.nu_hot.push(nu_h);
            stats.nu_cold.push(nu_c);
            stats.kinetic_energy.push(ke);
            profiles.sample(
                &sim.geom,
                [&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]],
                &sim.state.t,
            );
            obs_rows.push(format!(
                "{step},{},{nu_v},{nu_h},{nu_c},{ke},{cfl},{}",
                sim.state.time, st.p_iters
            ));
            println!(
                "  step {step:>6}  t = {:.3}  Nu = {nu_v:.4}  KE = {ke:.3e}  CFL = {cfl:.3}  p-its = {}",
                sim.state.time, st.p_iters
            );

            // Compressed field sample to the async file engine.
            let c = compress_field(&sim.state.u[2], &sim.geom, &basis, &comp_cfg);
            fields.put(StepData {
                step: step as u64,
                time: sim.state.time,
                vars: vec![Variable::bytes(
                    "uz_compressed",
                    vec![c.data.len() as u64],
                    c.data,
                )],
            });
            if let Some((w, _)) = &pod {
                w.put(StepData {
                    step: step as u64,
                    time: sim.state.time,
                    vars: vec![Variable::f64(
                        "uz",
                        vec![sim.n_local() as u64],
                        sim.state.u[2].clone(),
                    )],
                });
            }
        }
        if args.checkpoint_every > 0 && step % args.checkpoint_every == 0 {
            let path = args.out.join(format!("checkpoint_{step:06}.bpl"));
            write_checkpoint(&sim, &path).expect("write checkpoint");
            println!("  wrote {}", path.display());
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();

    // Finalize outputs.
    use std::io::Write;
    let mut f = std::fs::File::create(args.out.join("observables.csv")).unwrap();
    writeln!(f, "step,time,nu_volume,nu_hot,nu_cold,kinetic_energy,cfl,p_iters").unwrap();
    for r in &obs_rows {
        writeln!(f, "{r}").unwrap();
    }
    profiles
        .write_csv(&comm, &args.out.join("z_profiles.csv"))
        .expect("profiles");
    let written = fields.close().expect("close field file");

    println!("\nrun complete: {:.1} s ({:.1} ms/step)", elapsed, 1e3 * elapsed / args.steps as f64);
    if stats.nu_volume.count() > 0 {
        println!(
            "  time-averaged Nu(vol) = {:.4} ± {:.4} over {} samples",
            stats.nu_volume.mean(),
            stats.nu_volume.std(),
            stats.nu_volume.count()
        );
    }
    println!("  {} compressed field samples in fields.bpl", written);
    if let Some((w, consumer)) = pod {
        w.close();
        let p = consumer.join();
        println!("  in-situ POD: {} snapshots, rank {}", p.count(), p.rank());
        let sv = p.singular_values();
        if !sv.is_empty() {
            let total: f64 = sv.iter().map(|s| s * s).sum();
            println!(
                "  leading mode energy fraction: {:.4}",
                sv[0] * sv[0] / total
            );
        }
    }
    // Post-run resolution check (spectral tail energy of the temperature).
    let indicator = rbx::core::SpectralIndicator::new(args.order + 1);
    let under = indicator.underresolved_fraction(&sim.geom, &sim.state.t, 1e-4, &comm);
    println!(
        "  resolution monitor: {:.1} % of elements exceed 1e-4 spectral tail energy",
        100.0 * under
    );
    let pct = sim.timers.percentages();
    println!(
        "  phase split: P {:.0} % | V {:.0} % | T {:.0} % | other {:.0} %",
        pct[0], pct[1], pct[2], pct[3]
    );
    println!("  outputs in {}", args.out.display());
}
