//! **Fig. 3** — strong scaling of the RBC case on LUMI and Leonardo.
//!
//! Two reproductions of the paper's figure:
//!
//! 1. **modelled at paper scale** — the 108 M-element, degree-7 case on
//!    the LUMI and Leonardo machine models at the paper's rank counts
//!    (4096/8192/16384 GCDs; 3456/6912 A100s), with 99 % confidence
//!    intervals and the ideal-scaling reference, with and without the
//!    overlapped preconditioner;
//! 2. **measured on this machine** — the real distributed solver on
//!    thread-backed ranks (same code path as MPI ranks).
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin fig3_strong_scaling
//! ```

use rbx::comm::{run_on_ranks, Communicator};
use rbx::core::{Simulation, SolverConfig};
use rbx::perf::{leonardo, lumi, strong_scaling_sweep, CaseSize, CostModel, SolverMix};
use rbx_bench::{out_dir, write_csv};

fn main() {
    let dir = out_dir("fig3_strong_scaling");
    println!("Fig. 3 reproduction: strong scaling, average time per time step\n");

    // ---- modelled at paper scale ----------------------------------------
    let mut rows = Vec::new();
    for (machine, ranks) in [
        (lumi(), vec![4096usize, 8192, 16384]),
        (leonardo(), vec![3456, 6912]),
    ] {
        for overlapped in [true, false] {
            let mix = SolverMix {
                overlapped,
                ..Default::default()
            };
            let model = CostModel::new(machine.clone(), CaseSize::paper_ra1e15(), mix);
            let points = strong_scaling_sweep(&model, &ranks, 250, 2023);
            let label = if overlapped { "overlapped" } else { "serial" };
            println!("{} ({} Schwarz):", machine.name, label);
            println!("  ranks    elems/GPU   t/step [ms]   ±99%CI [ms]   ideal [ms]   efficiency");
            let t0 = points[0].t_step * points[0].ranks as f64;
            for p in &points {
                let ideal = t0 / p.ranks as f64;
                println!(
                    "  {:>6}   {:>9.0}   {:>11.1}   {:>11.3}   {:>10.1}   {:>10.3}",
                    p.ranks,
                    p.elems_per_gpu,
                    1e3 * p.t_step,
                    1e3 * p.ci99,
                    1e3 * ideal,
                    p.efficiency
                );
                rows.push(format!(
                    "{},{},{},{},{},{},{}",
                    machine.name, label, p.ranks, p.elems_per_gpu, p.t_step, p.ci99, p.efficiency
                ));
            }
            println!();
        }
    }
    // The paper's headline claim: close-to-perfect efficiency below 7000
    // elements per logical GPU with the overlapped formulation.
    let model = CostModel::new(lumi(), CaseSize::paper_ra1e15(), SolverMix::default());
    let pts = strong_scaling_sweep(&model, &[4096, 16384], 250, 1);
    println!(
        "claim check: {} elements/GCD at 16384 ranks → efficiency {:.3} (paper: \"close to perfect\")\n",
        pts[1].elems_per_gpu as i64, pts[1].efficiency
    );

    // ---- measured on this machine ----------------------------------------
    let cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    println!(
        "measured strong scaling (real solver, thread-backed ranks; host has {cores} core(s)):"
    );
    if cores == 1 {
        println!("  (single-core host: ranks time-share the core, so speedup cannot");
        println!("   exceed 1; this section demonstrates the distributed code path,");
        println!("   the modelled section above carries the Fig. 3 shape)");
    }
    println!("  ranks   t/step [ms]   speedup   efficiency");
    let cfg = SolverConfig {
        ra: 1e5,
        order: 5,
        dt: 2e-3,
        ic_noise: 0.05,
        ..Default::default()
    };
    let max_ranks = (2 * cores).min(4);
    let mut base: Option<f64> = None;
    for nranks in [1usize, 2, 4, 8].into_iter().filter(|&r| r <= max_ranks) {
        let case = rbx::core::rbc_box_case(2.0, 4, 4, false, nranks);
        let cfg = cfg.clone();
        let times = run_on_ranks(nranks, |comm| {
            let mut sim = Simulation::new(
                cfg.clone(),
                &case.mesh,
                &case.part,
                case.elems[comm.rank()].clone(),
                comm,
            );
            sim.init_rbc();
            for _ in 0..5 {
                sim.step();
            }
            comm.barrier();
            let t0 = comm.wtime();
            let n = 15;
            for _ in 0..n {
                sim.step();
            }
            comm.barrier();
            (comm.wtime() - t0) / n as f64
        });
        let t = times.iter().cloned().fold(0.0, f64::max);
        let t0 = *base.get_or_insert(t);
        println!(
            "  {nranks:>5}   {:>11.2}   {:>7.2}   {:>9.2}",
            1e3 * t,
            t0 / t,
            t0 / (t * nranks as f64)
        );
        rows.push(format!(
            "measured,threads,{nranks},,{t},,{}",
            t0 / (t * nranks as f64)
        ));
    }

    write_csv(
        &dir.join("fig3.csv"),
        "machine,schwarz,ranks,elems_per_gpu,t_step_s,ci99_s,efficiency",
        &rows,
    );
    println!("\nwrote {}", dir.join("fig3.csv").display());
}
