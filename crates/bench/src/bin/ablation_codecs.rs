//! **Ablation** — lossless codec stage of the compression pipeline.
//!
//! The paper's compression is transform + truncate + lossless encode
//! (§5.2). This experiment isolates the lossless stage: identical
//! truncated/quantized payloads through each codec, comparing size and
//! encode/decode throughput — quantifying why an entropy stage is worth
//! having even after the variance-reducing transform.
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin ablation_codecs
//! ```

use rbx::basis::ModalBasis;
use rbx::compress::{compress_field, decompress_field, Codec, CompressionConfig};
use rbx_bench::{developed_box, out_dir, write_csv};
use std::time::Instant;

fn main() {
    println!("lossless codec ablation (same truncated payload through each codec)\n");
    let sim = developed_box(6, 200);
    let basis = ModalBasis::new(sim.cfg.order + 1);
    let field = &sim.state.t;
    let raw_bytes = field.len() * 8;

    println!("  codec   bytes       vs raw field   encode [ms]   decode [ms]");
    let mut rows = Vec::new();
    for codec in [Codec::Raw, Codec::Rle, Codec::Range] {
        let cfg = CompressionConfig {
            error_bound: 0.01,
            quant_bits: Some(16),
            codec,
        };
        let t0 = Instant::now();
        let c = compress_field(field, &sim.geom, &basis, &cfg);
        let t_enc = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let recon = decompress_field(&c, &basis);
        let t_dec = t0.elapsed().as_secs_f64();
        assert_eq!(recon.len(), field.len());
        println!(
            "  {:<7} {:>9}   {:>10.2} %   {:>11.2}   {:>11.2}",
            format!("{codec:?}"),
            c.data.len(),
            100.0 * c.data.len() as f64 / raw_bytes as f64,
            1e3 * t_enc,
            1e3 * t_dec
        );
        rows.push(format!(
            "{codec:?},{},{},{t_enc},{t_dec}",
            c.data.len(),
            c.data.len() as f64 / raw_bytes as f64
        ));
    }
    println!("\n  (raw field: {} bytes)", raw_bytes);
    let dir = out_dir("ablation_codecs");
    write_csv(
        &dir.join("codecs.csv"),
        "codec,bytes,fraction_of_raw,encode_s,decode_s",
        &rows,
    );
    println!("wrote {}", dir.join("codecs.csv").display());
}
