//! **The science question (§3/§8.1)** — Nu(Ra) scaling: classical
//! `Ra^{1/3}` vs Kraichnan's ultimate `Ra^{1/2}`.
//!
//! The paper's whole workflow exists to answer this question at
//! Ra ≥ 10¹⁵. At laptop scale we reproduce the *analysis pipeline* that
//! such a campaign requires:
//!
//! 1. short DNS runs across a Ra sweep measure the growth of Nu above 1
//!    (demonstrating the measurement chain on real solver data — these
//!    short runs are *not* statistically converged, and say so);
//! 2. the regime-fitting tooling is validated on synthetic Nu(Ra) series
//!    with a known classical→ultimate transition, demonstrating that the
//!    pipeline would resolve the paper's question given converged data.
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin nu_ra_scaling
//! ```

use rbx::comm::SingleComm;
use rbx::core::{Observables, Simulation, SolverConfig};
use rbx::perf::regimes::{detect_transition, local_exponents, log_spaced_ra, synthetic_nu_ra};
use rbx::perf::{fit_scaling_exponent, ScalingRegime};
use rbx_bench::{out_dir, write_csv};

fn short_dns_nu(ra: f64) -> f64 {
    let case = rbx::core::rbc_box_case(2.0, 3, 3, false, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra,
        order: 5,
        dt: (2e-3 / (ra / 1e5).sqrt()).min(2e-3),
        ic_noise: 0.05,
        ..Default::default()
    };
    let mut sim = Simulation::new(
        cfg.clone(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        &comm,
    );
    sim.init_rbc();
    for _ in 0..300 {
        let st = sim.step();
        assert!(st.converged, "Ra = {ra:.1e}: {st:?}");
    }
    let obs = Observables::new(&sim.geom, &case.mesh, &sim.my_elems);
    obs.nusselt_volume(&sim.state.u[2], &sim.state.t, ra, cfg.pr, &comm)
}

fn main() {
    let dir = out_dir("nu_ra_scaling");
    println!("Nu(Ra) scaling analysis (the paper's scientific target)\n");

    // ---- 1. real DNS sweep (short runs; demonstration of the chain) -----
    println!("short-DNS sweep (300 steps each — NOT statistically converged,");
    println!("demonstrates the Nu measurement chain on real solver data):");
    println!("  Ra         Nu(vol)");
    let mut dns_rows = Vec::new();
    for ra in [3e4, 1e5, 3e5] {
        let nu = short_dns_nu(ra);
        println!("  {ra:<9.1e}  {nu:.4}");
        dns_rows.push(format!("{ra},{nu}"));
    }
    write_csv(&dir.join("dns_nu_ra.csv"), "ra,nu_volume", &dns_rows);

    // ---- 2. regime analysis on synthetic campaigns -----------------------
    println!("\nregime-fit validation on synthetic Nu(Ra) campaigns:");

    // Pure classical data (the Iyer et al. scenario up to 10¹⁵).
    let ra = log_spaced_ra(9.0, 15.0, 40);
    let classical = synthetic_nu_ra(&ra, f64::INFINITY, 0.02, 7);
    let fit = fit_scaling_exponent(&classical);
    println!(
        "  classical-only data:  γ = {:.4}  → classified {:?} (expect Classical, γ = 1/3)",
        fit.gamma,
        fit.classify(0.03)
    );
    assert_eq!(fit.classify(0.03), ScalingRegime::Classical);

    // Data with an ultimate transition at Ra* = 10¹⁴ (the Kraichnan
    // scenario the paper's campaign is designed to detect).
    let ra = log_spaced_ra(10.0, 17.0, 70);
    let ultimate = synthetic_nu_ra(&ra, 1e14, 0.02, 11);
    let tail: Vec<(f64, f64)> = ultimate.iter().copied().filter(|p| p.0 > 3e15).collect();
    let tail_fit = fit_scaling_exponent(&tail);
    println!(
        "  transitional data:    tail γ = {:.4} → classified {:?} (expect Ultimate, γ = 1/2)",
        tail_fit.gamma,
        tail_fit.classify(0.04)
    );
    let detected = detect_transition(&ultimate, 9).expect("transition not detected");
    println!(
        "  detected transition:  Ra* ≈ {detected:.2e} (truth 1.0e14, within one decade: {})",
        (detected / 1e14).log10().abs() < 1.0
    );

    let mut rows = Vec::new();
    for (ra, g) in local_exponents(&ultimate, 9) {
        rows.push(format!("{ra},{g}"));
    }
    write_csv(&dir.join("local_exponents.csv"), "ra,gamma_local", &rows);

    println!("\nconclusion: the analysis pipeline distinguishes γ = 1/3 from γ = 1/2");
    println!("and localizes the transition — the capability the paper's exascale");
    println!("campaign needs once converged high-Ra data exists.");
    println!("\nwrote {}", dir.display());
}
