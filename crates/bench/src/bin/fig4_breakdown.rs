//! **Fig. 4** — wall-time distribution of one time step.
//!
//! The paper reports the split of a 16,384-GCD LUMI step into Pressure
//! (> 85 %), Velocity, Temperature and the rest. Reproduced twice:
//!
//! 1. **measured** — the real solver's phase timers over an RBC run on
//!    this machine;
//! 2. **modelled** — the cost model's breakdown at 16,384 GCDs on LUMI.
//!
//! ```sh
//! cargo run --release -p rbx-bench --bin fig4_breakdown
//! ```

use rbx::core::Phase;
use rbx::perf::{lumi, CaseSize, CostModel, SolverMix};
use rbx::telemetry::json::Value;
use rbx::telemetry::schema::bench_record;
use rbx_bench::{developed_box, out_dir, write_csv};

fn main() {
    println!("Fig. 4 reproduction: wall-time distribution of one time step\n");

    // ---- measured ---------------------------------------------------------
    let mut sim = developed_box(6, 10);
    sim.timers.reset();
    for _ in 0..60 {
        assert!(sim.step().converged);
    }
    let pct = sim.timers.percentages();
    println!("measured (real solver, this machine, degree 6, Ra = 1e5):");
    for (phase, p) in Phase::ALL.iter().zip(pct) {
        println!("  {:<12} {:>5.1} %", phase.name(), p);
    }
    println!(
        "  avg time/step: {:.2} ms\n",
        1e3 * sim.timers.avg_per_step()
    );

    // ---- modelled at paper scale -------------------------------------------
    let model = CostModel::new(lumi(), CaseSize::paper_ra1e15(), SolverMix::default());
    let b = model.time_per_step(16384);
    let mpct = b.percentages();
    println!("modelled (LUMI, 16,384 GCDs, 108M elements — the paper's Fig. 4 point):");
    for (name, p) in ["Pressure", "Velocity", "Temperature", "Other"]
        .iter()
        .zip(mpct)
    {
        println!("  {name:<12} {p:>5.1} %");
    }
    println!("  modelled time/step: {:.1} ms", 1e3 * b.total());
    println!(
        "\npaper claim: \"pressure constituting more than 85% of the time for computing a time-step\" → modelled {:.1} %",
        mpct[0]
    );
    assert!(mpct[0] > 85.0, "model drifted away from the paper's Fig. 4");

    let dir = out_dir("fig4_breakdown");
    write_csv(
        &dir.join("fig4.csv"),
        "source,pressure_pct,velocity_pct,temperature_pct,other_pct",
        &[
            format!("measured,{},{},{},{}", pct[0], pct[1], pct[2], pct[3]),
            format!(
                "modelled_lumi_16384,{},{},{},{}",
                mpct[0], mpct[1], mpct[2], mpct[3]
            ),
        ],
    );
    println!("wrote {}", dir.join("fig4.csv").display());

    // Machine-readable record mirroring the CSV, for CI consumption.
    let pct_row = |source: &str, p: [f64; 4]| {
        vec![
            Value::str(source),
            Value::num(p[0]),
            Value::num(p[1]),
            Value::num(p[2]),
            Value::num(p[3]),
        ]
    };
    let record = bench_record(
        "fig4_breakdown",
        &[
            "source",
            "pressure_pct",
            "velocity_pct",
            "temperature_pct",
            "other_pct",
        ],
        vec![
            pct_row("measured", pct),
            pct_row("modelled_lumi_16384", mpct),
        ],
        vec![
            ("order", Value::int(6)),
            ("steps", Value::int(60)),
            (
                "measured_ms_per_step",
                Value::num(1e3 * sim.timers.avg_per_step()),
            ),
            ("modelled_ms_per_step", Value::num(1e3 * b.total())),
        ],
    );
    let json_path = dir.join("fig4.json");
    std::fs::write(&json_path, format!("{record}\n")).expect("write fig4.json");
    println!("wrote {}", json_path.display());
}
