//! Minimal in-tree substitute for the `bytes` crate (offline build).
//!
//! Covers the little-endian put/get surface the BPL container format uses:
//! `BytesMut` as a growable write buffer, `Bytes` as a frozen read-only
//! buffer, `Buf` for cursor-style reads over `&[u8]`, and `BufMut` for
//! appends. No refcounted zero-copy slicing — `Bytes` owns its storage.

use std::ops::Deref;
use std::sync::Arc;

/// Read-only byte buffer (cheaply clonable via `Arc`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_vec(v: Vec<u8>) -> Self {
        Self { data: Arc::new(v) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Append-style writes (always-successful; the buffer grows as needed).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Cursor-style reads. Provided getters panic when the buffer is too
/// short (matching the real crate); callers guard with `remaining()`.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow: {} > {}", dst.len(), self.len());
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x53);
        buf.put_u16_le(513);
        buf.put_u32_le(70000);
        buf.put_u64_le(1 << 40);
        buf.put_f64_le(-0.125);
        buf.put_slice(b"tail");
        let frozen = buf.freeze();
        let mut cur = &frozen[..];
        assert_eq!(cur.get_u8(), 0x53);
        assert_eq!(cur.get_u16_le(), 513);
        assert_eq!(cur.get_u32_le(), 70000);
        assert_eq!(cur.get_u64_le(), 1 << 40);
        assert_eq!(cur.get_f64_le(), -0.125);
        let mut tail = [0u8; 4];
        cur.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert!(!cur.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }
}
