//! Minimal in-tree substitute for the `proptest` crate (offline build).
//!
//! A deterministic mini property-testing runner: each `proptest!` test
//! samples its strategies from a SplitMix64 stream seeded by the test
//! name and runs a fixed number of cases. No shrinking, no persistence
//! (`*.proptest-regressions` files are ignored), no `prop_compose!` —
//! just the surface this workspace's property tests use.

pub mod test_runner {
    use std::fmt;

    /// Cases per property (the real crate defaults to 256; kept smaller
    /// here because some properties build meshes per case).
    pub const CASES: u64 = 48;

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            Self { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StubRng {
        state: u64,
    }

    impl StubRng {
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Stable per-test seed derived from the test's name (FNV-1a).
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::StubRng;
    use std::ops::Range;

    /// Value generators. Sampling borrows the strategy so range strategies
    /// (which are not `Copy`) can be reused across cases.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StubRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StubRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StubRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (self.end - self.start) * rng.next_unit_f64()
        }
    }

    /// `any::<T>()` — the full value range of `T`.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Types `any::<T>()` can produce.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StubRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StubRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StubRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StubRng) -> Self {
            // Finite, roughly centred values; the real crate generates
            // specials (NaN/inf) too, which these tests don't rely on.
            (rng.next_unit_f64() - 0.5) * 2e6
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StubRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::StubRng;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty vec size range");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StubRng) -> Vec<S::Value> {
            let span = (self.sizes.end - self.sizes.start) as u64;
            let len = self.sizes.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual glob import: strategies plus the assertion/runner macros
/// (exported at crate root by `#[macro_export]`, re-exported here).
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each function samples its arguments and runs
/// [`test_runner::CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut proptest_rng = $crate::test_runner::StubRng::new(
                    $crate::test_runner::seed_from_name(stringify!($name)),
                );
                for proptest_case in 0..$crate::test_runner::CASES {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut proptest_rng);
                    )+
                    let proptest_outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = proptest_outcome {
                        panic!(
                            "property {} failed on case {}: {}",
                            stringify!($name),
                            proptest_case,
                            e
                        );
                    }
                }
            }
        )+
    };
}

/// Assert inside a `proptest!` body; failure fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
}

/// Skip the current case when a precondition fails. The real crate
/// re-draws; this substitute simply treats the case as passing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(
            n in 3usize..10,
            x in -2.0f64..2.0,
            data in crate::collection::vec(any::<u8>(), 0..64),
        ) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x), "x = {}", x);
            prop_assert!(data.len() < 64);
        }

        #[test]
        fn eq_assertion_passes(a in 0u64..100) {
            prop_assert_eq!(a, a);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::StubRng::new(5);
        let mut b = crate::test_runner::StubRng::new(5);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            fn always_fails(_x in 0u64..2) {
                prop_assert!(false, "doomed");
            }
        }
        always_fails();
    }
}
