//! No-op `Serialize`/`Deserialize` derives for the in-tree serde
//! substitute. Emits empty marker impls: the traits have no required
//! methods (deserialization has an erroring default body), so the derive
//! only needs the type's name. Generic types are not supported — nothing
//! in this workspace derives serde on a generic type.

use proc_macro::{TokenStream, TokenTree};

/// Find the identifier following the `struct`/`enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" {
                    saw_kw = true;
                }
            }
            // Skip attribute/visibility punctuation and groups.
            _ => {}
        }
    }
    panic!("serde substitute derive: could not find a struct or enum name");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl should parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl should parse")
}
