//! Minimal in-tree substitute for the `crossbeam` crate (offline build).
//!
//! Provides only `crossbeam::channel::{unbounded, bounded}` with the
//! disconnect semantics the workspace relies on: `recv` fails once every
//! sender is gone, `send` fails once every receiver is gone, and bounded
//! channels block the sender at capacity. Built on `Mutex` + `Condvar`;
//! correctness over throughput.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; clonable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// `send` failed: all receivers dropped. Carries the unsent value.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// `recv` failed: channel empty and all senders dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// `try_recv` failure reasons.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// `recv_timeout` failure reasons.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    /// Channel with unlimited buffering; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Channel holding at most `cap` messages; `send` blocks at capacity.
    /// `cap = 0` is treated as capacity 1 (this stub has no rendezvous mode;
    /// the workspace always passes `cap >= 1`).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self
                            .shared
                            .not_full
                            .wait(st)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking receive with a deadline: waits at most `timeout` for a
        /// message, failing with `Timeout` once it elapses or with
        /// `Disconnected` when the channel is empty and every sender is
        /// gone.
        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Blocking iterator: yields until all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver { shared: self.shared.clone() }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
            let last = st.receivers == 0;
            drop(st);
            if last {
                // Wake blocked senders so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn recv_fails_after_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_blocks_at_capacity() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = std::thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a slot frees up
                "done"
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(t.join().unwrap(), "done");
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            use std::time::Duration;
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_many_producers() {
            let (tx, rx) = unbounded::<usize>();
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..250 {
                            tx.send(t * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(got.len(), 1000);
        }
    }
}
