//! Minimal in-tree substitute for the `serde` crate (offline build).
//!
//! The workspace derives `Serialize`/`Deserialize` on a few config structs
//! but never drives them through a data format (its JSON output is
//! hand-written), so the traits here are markers with enough shape for the
//! custom `#[serde(with = ...)]` proxy modules to type-check. Attempting an
//! actual deserialization returns an error rather than data.

use std::fmt::Display;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    use super::Display;

    /// Errors a serializer may produce.
    pub trait Error: Sized + Display {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

pub mod de {
    use super::Display;

    /// Errors a deserializer may produce.
    pub trait Error: Sized + Display {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Marker for serializable types (no-op in this substitute).
pub trait Serialize {}

/// Deserializable types. The default body reports "unsupported" — nothing
/// in-tree deserializes through serde.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        Err(de::Error::custom("serde substitute: deserialization is not supported"))
    }
}

pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;

    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
}

pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
}

// Primitive impls the workspace's proxy modules rely on.
impl Serialize for String {}
impl<'de> Deserialize<'de> for String {}
