//! Minimal in-tree substitute for the `rand` crate (offline build).
//!
//! Implements only what this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` over
//! half-open integer and float ranges. The generator is SplitMix64 — a
//! solid 64-bit mixer, deterministic for a given seed, but *not* the
//! ChaCha12 stream the real `StdRng` uses, so sequences differ from
//! upstream rand.

use std::ops::Range;

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Seedable construction (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value range.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types uniformly samplable over a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = hi.wrapping_sub(lo) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

/// Ranges a value can be drawn from (`rng.gen_range(a..b)`). The single
/// blanket impl (mirroring the real crate) is what lets integer-literal
/// ranges infer their type from the call site.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(0..17usize);
            assert!(n < 17);
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn bytes_cover_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<u8> = (0..4096).map(|_| rng.gen::<u8>()).collect();
        let mut seen = [false; 256];
        for &b in &data {
            seen[b as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 200);
    }
}
