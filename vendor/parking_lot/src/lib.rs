//! Minimal in-tree substitute for the `parking_lot` crate (offline build).
//!
//! Wraps `std::sync` primitives behind parking_lot's signatures: `lock()`
//! returns the guard directly (poison is swallowed — a panicking holder
//! doesn't invalidate the data for this workspace's usage), and
//! `Condvar::wait` takes `&mut MutexGuard` instead of consuming it.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { guard: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { guard: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard taken");
        guard.guard = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard taken");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(g);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(t.join().unwrap());
    }
}
