//! Minimal in-tree substitute for the `criterion` crate (offline build).
//!
//! A wall-clock benchmark shim: `criterion_group!`/`criterion_main!`
//! expand the same way as upstream, `Bencher::iter` times the closure
//! over `sample_size` batches and prints mean ns/iter per benchmark.
//! No statistics, plotting, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; also serves as the per-group configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some((iters, elapsed)) => {
                let per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
                println!("{id:<50} {per_iter:>14.1} ns/iter ({iters} iters)");
            }
            None => println!("{id:<50} (no measurement)"),
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: one untimed call, then scale batches to roughly fill
        // the measurement window across `sample_size` batches.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_batch = self.measurement_time.as_nanos() as u64
            / (self.sample_size.max(1) as u64)
            / once.as_nanos().max(1) as u64;
        let batch = per_batch.clamp(1, 1_000_000);

        let mut iters = 0u64;
        let start = Instant::now();
        for _ in 0..self.sample_size {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
            if start.elapsed() > self.measurement_time {
                break;
            }
        }
        self.report = Some((iters, start.elapsed()));
    }
}

/// Define a group function that runs its targets with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
    }

    #[test]
    fn group_runs() {
        criterion_group! {
            name = quick;
            config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(10));
            targets = trivial
        }
        quick();
    }
}
