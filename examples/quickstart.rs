//! Quickstart: a small Rayleigh-Bénard box, 200 time steps, observables.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rbx::comm::SingleComm;
use rbx::core::{Observables, Simulation, SolverConfig};
use rbx::mesh::BoundaryTag;

fn main() {
    // A Γ = 2 box at Ra = 10⁵, degree 5 — laptop-sized but fully turbulent
    // machinery: dealiased advection, BDF3/EXT3, GMRES + hybrid Schwarz
    // pressure solve.
    let case = rbx::core::rbc_box_case(2.0, 3, 3, false, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: 1e5,
        order: 5,
        dt: 2e-3,
        ic_noise: 0.05,
        ..Default::default()
    };
    println!("RBX quickstart");
    println!(
        "  mesh: {} elements, degree {}, {} grid points",
        case.mesh.num_elements(),
        cfg.order,
        case.mesh.num_elements() * (cfg.order + 1).pow(3)
    );
    println!("  Ra = {:.0e}, Pr = {}, dt = {}", cfg.ra, cfg.pr, cfg.dt);

    let mut sim = Simulation::new(
        cfg.clone(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        &comm,
    );
    sim.init_rbc();

    println!("\n  step      time        KE        Nu(vol)   Nu(wall)  p-iters");
    for step in 1..=200 {
        let stats = sim.step();
        assert!(stats.converged, "solver failed to converge: {stats:?}");
        if step % 25 == 0 {
            let obs = Observables::new(&sim.geom, &case.mesh, &sim.my_elems);
            let ke = obs.kinetic_energy([&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]], &comm);
            let nu_v = obs.nusselt_volume(&sim.state.u[2], &sim.state.t, cfg.ra, cfg.pr, &comm);
            let nu_w = obs.nusselt_wall(&sim.state.t, BoundaryTag::HotWall, &comm);
            println!(
                "  {step:>4}   {:8.4}   {ke:9.3e}   {nu_v:7.4}   {nu_w:7.4}   {:>4}",
                sim.state.time, stats.p_iters
            );
        }
    }

    let pct = sim.timers.percentages();
    println!("\n  wall-time distribution (paper Fig. 4 categories):");
    println!(
        "    Pressure {:.1} %  Velocity {:.1} %  Temperature {:.1} %  Other {:.1} %",
        pct[0], pct[1], pct[2], pct[3]
    );
    println!("  avg time/step: {:.2} ms", 1e3 * sim.timers.avg_per_step());
}
