//! Constant-flux Rayleigh-Bénard convection.
//!
//! The canonical (paper) setup holds both plates at fixed temperature;
//! laboratory cells are often closer to *constant heat flux* at the heated
//! plate — a distinction that itself matters in the ultimate-regime
//! debate. This example runs the flux-heated variant
//! (`ThermalBc::BottomFluxTopIsothermal`) at supercritical Ra and shows
//! how the plate temperature becomes a dynamic quantity while the injected
//! flux is exactly controlled.
//!
//! ```sh
//! cargo run --release --example flux_driven_rbc [steps]
//! ```

use rbx::comm::SingleComm;
use rbx::core::config::ThermalBc;
use rbx::core::{Observables, Simulation, SolverConfig};
use rbx::mesh::BoundaryTag;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let ra = 1e5f64;
    let alpha = 1.0 / ra.sqrt();
    // Inject 1.5× the conductive flux: the fluid must transport the excess
    // by convection once the instability develops.
    let q = 1.5 * alpha;

    let case = rbx::core::rbc_box_case(2.0, 3, 3, false, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra,
        order: 5,
        dt: 2e-3,
        ic_noise: 0.05,
        thermal_bc: ThermalBc::BottomFluxTopIsothermal { q },
        ..Default::default()
    };
    println!("flux-driven RBC: Ra = {ra:.0e}, imposed flux q = {q:.4} (= 1.5·α)");
    println!("  bottom plate: constant flux; top plate: isothermal at −0.5\n");

    let mut sim = Simulation::new(
        cfg.clone(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        &comm,
    );
    sim.init_rbc();

    println!("  step      time     ⟨T⟩ bottom   plate −∂T/∂z   Nu(vol)     KE");
    for step in 1..=steps {
        let st = sim.step();
        assert!(st.converged, "step {step}: {st:?}");
        if step % 50 == 0 {
            let obs = Observables::new(&sim.geom, &case.mesh, &sim.my_elems);
            // Mean bottom-plate temperature: the free quantity under flux
            // heating.
            let n = sim.n_local();
            let mut t_sum = 0.0;
            let mut count = 0.0f64;
            for i in 0..n {
                if sim.geom.coords[2][i].abs() < 1e-12 {
                    t_sum += sim.state.t[i];
                    count += 1.0;
                }
            }
            let t_bottom = t_sum / count.max(1.0);
            let grad = obs.nusselt_wall(&sim.state.t, BoundaryTag::HotWall, &comm);
            let nu_v = obs.nusselt_volume(&sim.state.u[2], &sim.state.t, ra, cfg.pr, &comm);
            let ke = obs.kinetic_energy([&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]], &comm);
            println!(
                "  {step:>5}   {:7.3}   {t_bottom:>9.4}   {grad:>12.4}   {nu_v:7.4}   {ke:9.3e}",
                sim.state.time
            );
        }
    }
    println!("\n  reading the run: the plate gradient −∂T/∂z is pinned at q/α = 1.5");
    println!("  by the boundary condition (conduction would need ΔT = 1.5); as");
    println!("  convection develops, Nu(vol) rises and the bottom-plate mean");
    println!("  temperature drops below the conductive value — flux-driven cells");
    println!("  regulate their own ΔT, which is exactly why the two heating modes");
    println!("  can differ in the approach to the ultimate regime.");
}
