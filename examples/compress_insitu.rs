//! The paper's in-situ workflow (§5.2): while the solver runs, snapshots
//! stream through a staging channel to (a) the lossy compressor and (b) a
//! streaming-POD consumer on a separate CPU thread — no snapshot history
//! is ever stored.
//!
//! ```sh
//! cargo run --release --example compress_insitu
//! ```

use rbx::basis::ModalBasis;
use rbx::comm::SingleComm;
use rbx::compress::{compress_field, decompress_field, weighted_l2_error, CompressionConfig};
use rbx::core::{Simulation, SolverConfig};
use rbx::insitu::PodConsumer;
use rbx::io::{staging_channel, StepData, Variable};

fn main() {
    let case = rbx::core::rbc_box_case(2.0, 3, 3, false, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: 1e5,
        order: 5,
        dt: 2e-3,
        ic_noise: 0.05,
        ..Default::default()
    };
    let mut sim = Simulation::new(
        cfg.clone(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        &comm,
    );
    sim.init_rbc();
    let n = sim.n_local();

    // In-situ POD consumer on its own thread (the paper's "data processor
    // running on the mostly unused CPUs").
    let (writer, reader) = staging_channel(4);
    let pod = PodConsumer::spawn(reader, "temperature", sim.geom.mass.clone(), 10);

    let basis = ModalBasis::new(cfg.order + 1);
    let comp_cfg = CompressionConfig::default(); // 2.5 % error bound
    let mut total_raw = 0usize;
    let mut total_compressed = 0usize;
    let mut worst_error = 0.0f64;

    println!("running {} nodes, sampling every 20 steps", n);
    for step in 1..=400 {
        let stats = sim.step();
        assert!(stats.converged);
        if step % 20 == 0 {
            // Stream the raw snapshot to the POD consumer…
            writer.put(StepData {
                step: step as u64,
                time: sim.state.time,
                vars: vec![Variable::f64(
                    "temperature",
                    vec![n as u64],
                    sim.state.t.clone(),
                )],
            });
            // …and compress the vertical velocity for storage.
            let c = compress_field(&sim.state.u[2], &sim.geom, &basis, &comp_cfg);
            let recon = decompress_field(&c, &basis);
            let err = weighted_l2_error(&sim.state.u[2], &recon, &sim.geom.mass);
            total_raw += c.original_bytes();
            total_compressed += c.data.len();
            worst_error = worst_error.max(err);
        }
    }
    writer.close();
    let pod = pod.join();

    println!("\ncompression (paper §5.2 / Fig. 5 style):");
    println!(
        "  total reduction: {:.1} %  (raw {} KiB → {} KiB)",
        100.0 * (1.0 - total_compressed as f64 / total_raw as f64),
        total_raw / 1024,
        total_compressed / 1024
    );
    println!(
        "  worst relative weighted-L2 error: {:.3} %",
        100.0 * worst_error
    );

    println!(
        "\nstreaming POD ({} snapshots ingested in-situ):",
        pod.count()
    );
    let sv = pod.singular_values();
    let total_energy: f64 = sv.iter().map(|s| s * s).sum();
    for (k, s) in sv.iter().take(5).enumerate() {
        println!(
            "  mode {k}: σ = {s:.4e}  energy fraction = {:.4}",
            s * s / total_energy
        );
    }
}
