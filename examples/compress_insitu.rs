//! The paper's in-situ workflow (§5.2): while the solver runs, snapshots
//! stream through a staging channel to (a) the asynchronous lossy
//! compressor and (b) a streaming-POD consumer — both on separate CPU
//! threads, off the solver's critical path — and no snapshot history is
//! ever stored.
//!
//! ```sh
//! cargo run --release --example compress_insitu
//! ```

use rbx::basis::ModalBasis;
use rbx::comm::SingleComm;
use rbx::compress::{decompress_field, weighted_l2_error, AsyncFieldCompressor, CompressionConfig};
use rbx::core::{Simulation, SolverConfig};
use rbx::insitu::PodConsumer;
use rbx::io::{staging_channel, StepData, Variable};
use std::collections::BTreeMap;

fn main() {
    let case = rbx::core::rbc_box_case(2.0, 3, 3, false, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: 1e5,
        order: 5,
        dt: 2e-3,
        ic_noise: 0.05,
        ..Default::default()
    };
    let mut sim = Simulation::new(
        cfg.clone(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        &comm,
    );
    sim.init_rbc();
    let n = sim.n_local();

    // In-situ POD consumer on its own thread (the paper's "data processor
    // running on the mostly unused CPUs").
    let (writer, reader) = staging_channel(4);
    let pod = PodConsumer::spawn(reader, "temperature", sim.geom.mass.clone(), 10)
        .expect("spawn the in-situ POD consumer");

    // Encoding also runs off-thread: the solver only snapshots into the
    // double-buffered stage (drop-if-busy) and drains finished results.
    let mut encoder =
        AsyncFieldCompressor::new(&sim.geom, cfg.order + 1, CompressionConfig::default());
    let basis = ModalBasis::new(cfg.order + 1);
    let mut total_raw = 0usize;
    let mut total_compressed = 0usize;
    let mut worst_error = 0.0f64;
    // Originals still in flight inside the encoder, kept only until their
    // encoding lands (bounded at 2 by the double-buffering contract).
    let mut in_flight: BTreeMap<u64, Vec<f64>> = BTreeMap::new();

    let mass = sim.geom.mass.clone();
    let mut account = |done: rbx::compress::CompressedField,
                       in_flight: &mut BTreeMap<u64, Vec<f64>>| {
        let original = in_flight.remove(&done.step).expect("original retained");
        let recon = decompress_field(&done.compressed, &basis);
        let err = weighted_l2_error(&original, &recon, &mass);
        total_raw += done.compressed.original_bytes();
        total_compressed += done.compressed.data.len();
        worst_error = worst_error.max(err);
    };

    println!("running {} nodes, sampling every 20 steps", n);
    for step in 1..=400 {
        let stats = sim.step();
        assert!(stats.converged);
        if step % 20 == 0 {
            // Stream the raw snapshot to the POD consumer…
            writer.put(StepData {
                step: step as u64,
                time: sim.state.time,
                vars: vec![Variable::f64(
                    "temperature",
                    vec![n as u64],
                    sim.state.t.clone(),
                )],
            });
            // …and hand the vertical velocity to the async encoder.
            if encoder.try_submit(step as u64, sim.state.time, "uz", &sim.state.u[2]) {
                in_flight.insert(step as u64, sim.state.u[2].clone());
            }
            while let Some(done) = encoder.poll() {
                account(done, &mut in_flight);
            }
        }
    }
    writer.close();
    let (tail, enc_stats) = encoder.finish();
    for done in tail {
        account(done, &mut in_flight);
    }
    let pod = pod.join().expect("POD consumer finished cleanly");

    println!("\ncompression (paper §5.2 / Fig. 5 style, encoded off-thread):");
    println!(
        "  total reduction: {:.1} %  (raw {} KiB → {} KiB, {} snapshots, {} busy-dropped)",
        100.0 * (1.0 - total_compressed as f64 / total_raw as f64),
        total_raw / 1024,
        total_compressed / 1024,
        enc_stats.submitted,
        enc_stats.busy_dropped
    );
    println!(
        "  worst relative weighted-L2 error: {:.3} %",
        100.0 * worst_error
    );

    println!(
        "\nstreaming POD ({} snapshots ingested in-situ):",
        pod.count()
    );
    let sv = pod.singular_values();
    let total_energy: f64 = sv.iter().map(|s| s * s).sum();
    for (k, s) in sv.iter().take(5).enumerate() {
        println!(
            "  mode {k}: σ = {s:.4e}  energy fraction = {:.4}",
            s * s / total_energy
        );
    }
}
