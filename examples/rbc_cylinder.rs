//! The paper's cylindrical Rayleigh-Bénard cell (Fig. 1 geometry),
//! laptop-sized: runs the DNS and writes temperature and vertical-velocity
//! cross-sections as CSV + PPM images.
//!
//! ```sh
//! cargo run --release --example rbc_cylinder [aspect_ratio] [steps]
//! ```
//!
//! Default aspect ratio Γ = D/H = 1 (the paper's production cell uses
//! Γ = 1/10; pass `0.1` to generate that slender geometry instead).

use rbx::comm::SingleComm;
use rbx::core::slice::{sample_slice, write_slice_csv, write_slice_ppm, SliceAxis};
use rbx::core::{Observables, Simulation, SolverConfig};
use rbx::mesh::BoundaryTag;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let aspect: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let steps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);

    let case = rbx::core::rbc_cylinder_case(aspect, 1, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: 1e5,
        order: 5,
        dt: 1.5e-3,
        ic_noise: 0.05,
        ..Default::default()
    };
    println!("RBC cylinder (paper Fig. 1 geometry)");
    println!(
        "  Γ = {aspect}, {} elements, degree {}, Ra = {:.0e}",
        case.mesh.num_elements(),
        cfg.order,
        cfg.ra
    );

    let mut sim = Simulation::new(
        cfg.clone(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        &comm,
    );
    sim.init_rbc();

    for step in 1..=steps {
        let stats = sim.step();
        assert!(stats.converged, "step {step} did not converge: {stats:?}");
        if step % 50 == 0 {
            let obs = Observables::new(&sim.geom, &case.mesh, &sim.my_elems);
            let nu_v = obs.nusselt_volume(&sim.state.u[2], &sim.state.t, cfg.ra, cfg.pr, &comm);
            let nu_w = obs.nusselt_wall(&sim.state.t, BoundaryTag::HotWall, &comm);
            let cfl = obs.cfl(
                [&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]],
                cfg.dt,
                &comm,
            );
            println!(
                "  step {step:>5}  t = {:.3}  Nu_vol = {nu_v:.4}  Nu_wall = {nu_w:.4}  CFL = {cfl:.3}",
                sim.state.time
            );
        }
    }

    // Fig. 1-style outputs: a vertical mid-plane (y = 0) temperature slice
    // and a horizontal cross-section "AA" near the heated bottom wall with
    // temperature and velocity magnitude.
    let out = std::path::Path::new("target/rbc_cylinder");
    std::fs::create_dir_all(out).expect("create output dir");

    let t_vertical = sample_slice(&sim.geom, &sim.state.t, SliceAxis::Y, 0.0);
    write_slice_csv(&t_vertical, &out.join("temperature_vertical.csv")).unwrap();
    write_slice_ppm(&t_vertical, 160, 320, &out.join("temperature_vertical.ppm")).unwrap();

    let z_aa = 0.05; // cross-section AA close to the hot plate
    let t_aa = sample_slice(&sim.geom, &sim.state.t, SliceAxis::Z, z_aa);
    write_slice_csv(&t_aa, &out.join("temperature_aa.csv")).unwrap();
    write_slice_ppm(&t_aa, 256, 256, &out.join("temperature_aa.ppm")).unwrap();

    let n = sim.n_local();
    let umag: Vec<f64> = (0..n)
        .map(|i| {
            (sim.state.u[0][i].powi(2) + sim.state.u[1][i].powi(2) + sim.state.u[2][i].powi(2))
                .sqrt()
        })
        .collect();
    let u_aa = sample_slice(&sim.geom, &umag, SliceAxis::Z, z_aa);
    write_slice_csv(&u_aa, &out.join("velocity_magnitude_aa.csv")).unwrap();
    write_slice_ppm(&u_aa, 256, 256, &out.join("velocity_magnitude_aa.ppm")).unwrap();

    // Full 3-D field for ParaView/VisIt.
    rbx::io::write_vtk(
        &out.join("state.vtk"),
        [
            &sim.geom.coords[0],
            &sim.geom.coords[1],
            &sim.geom.coords[2],
        ],
        sim.geom.nx1,
        sim.geom.nelv,
        &[
            ("temperature", &sim.state.t),
            ("velocity_magnitude", &umag),
            ("pressure", &sim.state.p),
        ],
    )
    .unwrap();

    println!(
        "\n  wrote Fig. 1-style slices + state.vtk to {}",
        out.display()
    );
    let pct = sim.timers.percentages();
    println!(
        "  phase split: P {:.0} % | V {:.0} % | T {:.0} % | other {:.0} %",
        pct[0], pct[1], pct[2], pct[3]
    );
}
