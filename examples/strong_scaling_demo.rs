//! Strong scaling, two ways (paper Fig. 3 methodology):
//!
//! 1. **measured** — the real solver distributed over thread-backed ranks
//!    on this machine (one rank per thread, same code path as MPI), and
//! 2. **modelled** — the LUMI/Leonardo cost model replaying the paper's
//!    108 M-element case at the paper's rank counts.
//!
//! ```sh
//! cargo run --release --example strong_scaling_demo
//! ```

use rbx::comm::{run_on_ranks, Communicator};
use rbx::core::{Simulation, SolverConfig};
use rbx::perf::{leonardo, lumi, strong_scaling_sweep, CaseSize, CostModel, SolverMix};

fn main() {
    // ---- measured: the real solver on 1..=4 thread ranks -----------------
    let cfg = SolverConfig {
        ra: 1e5,
        order: 5,
        dt: 2e-3,
        ic_noise: 0.05,
        ..Default::default()
    };
    let warmup = 5;
    let measured_steps = 20;
    println!("measured strong scaling (thread-backed ranks, real solver)");
    println!(
        "  {} steps averaged after {} warm-up steps\n",
        measured_steps, warmup
    );
    println!("  ranks   elems/rank   time/step [ms]   speedup   efficiency");

    let max_ranks = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2)
        .min(4);
    let mut base: Option<f64> = None;
    for nranks in [1usize, 2, 4].into_iter().filter(|&r| r <= max_ranks) {
        let case = rbx::core::rbc_box_case(2.0, 4, 3, false, nranks);
        let cfg = cfg.clone();
        let times = run_on_ranks(nranks, |comm| {
            let case_local = &case;
            let mut sim = Simulation::new(
                cfg.clone(),
                &case_local.mesh,
                &case_local.part,
                case_local.elems[comm.rank()].clone(),
                comm,
            );
            sim.init_rbc();
            for _ in 0..warmup {
                sim.step();
            }
            comm.barrier();
            let t0 = comm.wtime();
            for _ in 0..measured_steps {
                sim.step();
            }
            comm.barrier();
            (comm.wtime() - t0) / measured_steps as f64
        });
        let t = times.iter().cloned().fold(0.0, f64::max);
        let t0 = *base.get_or_insert(t);
        println!(
            "  {nranks:>5}   {:>10.0}   {:>14.2}   {:>7.2}   {:>9.2}",
            case.mesh.num_elements() as f64 / nranks as f64,
            1e3 * t,
            t0 / t,
            t0 / (t * nranks as f64)
        );
    }

    // ---- modelled: paper scale on LUMI and Leonardo -----------------------
    println!("\nmodelled strong scaling at paper scale (108M elements, degree 7)");
    for (machine, ranks) in [
        (lumi(), vec![4096usize, 8192, 16384]),
        (leonardo(), vec![3456, 6912]),
    ] {
        let name = machine.name.clone();
        let model = CostModel::new(machine, CaseSize::paper_ra1e15(), SolverMix::default());
        let points = strong_scaling_sweep(&model, &ranks, 250, 42);
        println!("\n  {name} (overlapped Schwarz preconditioner):");
        println!("    ranks    elems/GPU   time/step [ms]   ±99%CI   efficiency");
        for p in &points {
            println!(
                "    {:>6}   {:>9.0}   {:>13.1}   {:>6.2}   {:>9.3}",
                p.ranks,
                p.elems_per_gpu,
                1e3 * p.t_step,
                1e3 * p.ci99,
                p.efficiency
            );
        }
    }
}
