//! Physics checks against exact states: conduction below onset and the
//! consistency of the two Nusselt estimates.

use rbx::comm::SingleComm;
use rbx::core::{Observables, Simulation, SolverConfig};
use rbx::mesh::BoundaryTag;

#[test]
fn box_conduction_stays_at_nu_one() {
    let case = rbx::core::rbc_box_case(1.0, 2, 2, false, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: 200.0, // far below any onset
        order: 4,
        dt: 2e-3,
        ic_noise: 0.0,
        ..Default::default()
    };
    let mut sim = Simulation::new(
        cfg.clone(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        &comm,
    );
    sim.init_rbc();
    for _ in 0..20 {
        let stats = sim.step();
        assert!(stats.converged, "{stats:?}");
    }
    let obs = Observables::new(&sim.geom, &case.mesh, &sim.my_elems);
    let nu_hot = obs.nusselt_wall(&sim.state.t, BoundaryTag::HotWall, &comm);
    let nu_cold = obs.nusselt_wall(&sim.state.t, BoundaryTag::ColdWall, &comm);
    let nu_vol = obs.nusselt_volume(&sim.state.u[2], &sim.state.t, cfg.ra, cfg.pr, &comm);
    assert!((nu_hot - 1.0).abs() < 1e-5, "hot-plate Nu {nu_hot}");
    assert!((nu_cold - 1.0).abs() < 1e-5, "cold-plate Nu {nu_cold}");
    assert!((nu_vol - 1.0).abs() < 1e-5, "volume Nu {nu_vol}");
    let ke = obs.kinetic_energy([&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]], &comm);
    assert!(ke < 1e-12, "spurious motion, KE = {ke:.3e}");
}

#[test]
fn cylinder_conduction_stays_at_nu_one() {
    // Same check on the curved o-grid cylinder: exercises metrics, masks
    // and wall fluxes on the paper's production geometry.
    let case = rbx::core::rbc_cylinder_case(1.0, 1, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: 200.0,
        order: 4,
        dt: 2e-3,
        ic_noise: 0.0,
        ..Default::default()
    };
    let mut sim = Simulation::new(
        cfg.clone(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        &comm,
    );
    sim.init_rbc();
    for _ in 0..15 {
        let stats = sim.step();
        assert!(stats.converged, "{stats:?}");
    }
    let obs = Observables::new(&sim.geom, &case.mesh, &sim.my_elems);
    let nu_hot = obs.nusselt_wall(&sim.state.t, BoundaryTag::HotWall, &comm);
    assert!(
        (nu_hot - 1.0).abs() < 1e-4,
        "cylinder hot-plate Nu {nu_hot}"
    );
    let ke = obs.kinetic_energy([&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]], &comm);
    assert!(ke < 1e-10, "cylinder spurious motion, KE = {ke:.3e}");
}

#[test]
fn supercritical_convection_raises_nusselt() {
    // At Ra = 10⁵ convection must develop: kinetic energy grows from the
    // perturbation and the volume Nusselt number exceeds 1.
    let case = rbx::core::rbc_box_case(2.0, 3, 3, false, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: 1e5,
        order: 4,
        dt: 2e-3,
        ic_noise: 0.05,
        ..Default::default()
    };
    let mut sim = Simulation::new(
        cfg.clone(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        &comm,
    );
    sim.init_rbc();
    let obs = Observables::new(&sim.geom, &case.mesh, &sim.my_elems);
    let ke0 = obs.kinetic_energy([&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]], &comm);
    for _ in 0..150 {
        let stats = sim.step();
        assert!(stats.converged, "{stats:?}");
    }
    let obs = Observables::new(&sim.geom, &case.mesh, &sim.my_elems);
    let ke = obs.kinetic_energy([&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]], &comm);
    let nu = obs.nusselt_volume(&sim.state.u[2], &sim.state.t, cfg.ra, cfg.pr, &comm);
    assert!(
        ke > ke0 + 1e-8,
        "no convective growth: {ke0:.3e} → {ke:.3e}"
    );
    assert!(nu > 1.005, "volume Nu {nu} did not rise above 1");
}

#[test]
fn energy_injection_matches_buoyancy_budget() {
    // Short-time check of the kinetic-energy budget: with u(0) = 0, the
    // energy after one small step is dominated by buoyancy work and must
    // be positive yet tiny.
    let case = rbx::core::rbc_box_case(1.0, 2, 2, false, 1);
    let comm = SingleComm::new();
    let cfg = SolverConfig {
        ra: 1e4,
        order: 4,
        dt: 1e-3,
        ic_noise: 1e-2,
        ..Default::default()
    };
    let mut sim = Simulation::new(cfg, &case.mesh, &case.part, case.elems[0].clone(), &comm);
    sim.init_rbc();
    sim.step();
    let obs = Observables::new(&sim.geom, &case.mesh, &sim.my_elems);
    let ke = obs.kinetic_energy([&sim.state.u[0], &sim.state.u[1], &sim.state.u[2]], &comm);
    assert!(ke > 0.0, "no buoyancy work after first step");
    assert!(ke < 1e-4, "first-step energy unphysically large: {ke:.3e}");
}
