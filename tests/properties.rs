//! Property-based tests (proptest) on cross-crate invariants.

use proptest::prelude::*;
use rbx::basis::{gauss, gll, ModalBasis, TensorScratch};
use rbx::comm::SingleComm;
use rbx::compress::{lossless_decode, lossless_encode, Codec};
use rbx::gs::{GatherScatter, GsOp};
use rbx::mesh::generators::box_mesh;
use rbx::perf::fit_scaling_exponent;

proptest! {
    /// GLL quadrature integrates random polynomials of admissible degree
    /// exactly.
    #[test]
    fn gll_exact_on_random_polynomials(
        n in 3usize..10,
        coeffs in proptest::collection::vec(-3.0f64..3.0, 1..8),
    ) {
        let q = gll(n);
        let max_deg = (2 * n - 3).min(coeffs.len() - 1);
        let poly = |x: f64| -> f64 {
            coeffs.iter().take(max_deg + 1).enumerate()
                .map(|(k, c)| c * x.powi(k as i32)).sum()
        };
        let numeric: f64 = q.points.iter().zip(&q.weights)
            .map(|(&x, &w)| w * poly(x)).sum();
        let exact: f64 = coeffs.iter().take(max_deg + 1).enumerate()
            .map(|(k, c)| if k % 2 == 0 { 2.0 * c / (k as f64 + 1.0) } else { 0.0 })
            .sum();
        prop_assert!((numeric - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }

    /// Gauss quadrature likewise (degree ≤ 2n−1).
    #[test]
    fn gauss_exact_on_random_polynomials(
        n in 2usize..9,
        coeffs in proptest::collection::vec(-2.0f64..2.0, 1..6),
    ) {
        let q = gauss(n);
        let poly = |x: f64| -> f64 {
            coeffs.iter().enumerate().map(|(k, c)| c * x.powi(k as i32)).sum()
        };
        if coeffs.len() <= 2 * n {
            let numeric: f64 = q.points.iter().zip(&q.weights)
                .map(|(&x, &w)| w * poly(x)).sum();
            let exact: f64 = coeffs.iter().enumerate()
                .map(|(k, c)| if k % 2 == 0 { 2.0 * c / (k as f64 + 1.0) } else { 0.0 })
                .sum();
            prop_assert!((numeric - exact).abs() < 1e-9 * (1.0 + exact.abs()));
        }
    }

    /// Lossless codecs round-trip arbitrary byte strings.
    #[test]
    fn codecs_roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        for codec in [Codec::Raw, Codec::Rle, Codec::Range] {
            let enc = lossless_encode(codec, &data);
            let dec = lossless_decode(codec, &enc);
            prop_assert_eq!(&dec, &data);
        }
    }

    /// Modal transform round-trips arbitrary nodal fields.
    #[test]
    fn modal_roundtrip_arbitrary_fields(
        seed in 0u64..1000,
        n in 3usize..7,
    ) {
        let basis = ModalBasis::new(n);
        let nn = n * n * n;
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(99);
        let field: Vec<f64> = (0..nn).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0 - 5.0
        }).collect();
        let mut modal = vec![0.0; nn];
        let mut back = vec![0.0; nn];
        let mut scratch = TensorScratch::new();
        basis.to_modal(&field, &mut modal, &mut scratch);
        basis.to_nodal(&modal, &mut back, &mut scratch);
        for (a, b) in field.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8, "{} vs {}", a, b);
        }
    }

    /// Gather-scatter Add is linear: gs(αu + βv) = α·gs(u) + β·gs(v).
    #[test]
    fn gather_scatter_is_linear(
        alpha in -3.0f64..3.0,
        beta in -3.0f64..3.0,
        seed in 0u64..500,
    ) {
        let p = 3;
        let mesh = box_mesh(2, 2, 1, [0., 1.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let part = vec![0; mesh.num_elements()];
        let my: Vec<usize> = (0..mesh.num_elements()).collect();
        let gs = GatherScatter::build(&mesh, p, &part, &my, &comm);
        let n = gs.n_local();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let u: Vec<f64> = (0..n).map(|_| rand()).collect();
        let v: Vec<f64> = (0..n).map(|_| rand()).collect();
        let mut combined: Vec<f64> = u.iter().zip(&v).map(|(a, b)| alpha * a + beta * b).collect();
        gs.apply(&mut combined, GsOp::Add, &comm);
        let mut gu = u.clone();
        gs.apply(&mut gu, GsOp::Add, &comm);
        let mut gv = v.clone();
        gs.apply(&mut gv, GsOp::Add, &comm);
        for i in 0..n {
            let expect = alpha * gu[i] + beta * gv[i];
            prop_assert!((combined[i] - expect).abs() < 1e-10,
                "node {}: {} vs {}", i, combined[i], expect);
        }
    }

    /// Power-law fits recover arbitrary exponents from exact data.
    #[test]
    fn regime_fit_recovers_exponent(
        gamma in 0.1f64..0.9,
        prefactor in 0.001f64..10.0,
    ) {
        let points: Vec<(f64, f64)> = (0..12)
            .map(|i| {
                let ra = 10f64.powf(8.0 + 0.5 * i as f64);
                (ra, prefactor * ra.powf(gamma))
            })
            .collect();
        let fit = fit_scaling_exponent(&points);
        prop_assert!((fit.gamma - gamma).abs() < 1e-9);
        prop_assert!((fit.prefactor - prefactor).abs() / prefactor < 1e-6);
    }

    /// Min/max gather-scatter produce values bounded by the input range.
    #[test]
    fn gather_scatter_minmax_bounded(seed in 0u64..300) {
        let p = 2;
        let mesh = box_mesh(2, 1, 1, [0., 2.], [0., 1.], [0., 1.], false, false);
        let comm = SingleComm::new();
        let part = vec![0; 2];
        let gs = GatherScatter::build(&mesh, p, &part, &[0, 1], &comm);
        let n = gs.n_local();
        let mut state = seed.wrapping_add(3).wrapping_mul(0x2545F4914F6CDD1D);
        let u: Vec<f64> = (0..n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 12) % 1000) as f64 / 100.0 - 5.0
        }).collect();
        let lo = u.iter().cloned().fold(f64::MAX, f64::min);
        let hi = u.iter().cloned().fold(f64::MIN, f64::max);
        let mut umin = u.clone();
        gs.apply(&mut umin, GsOp::Min, &comm);
        let mut umax = u.clone();
        gs.apply(&mut umax, GsOp::Max, &comm);
        for i in 0..n {
            prop_assert!(umin[i] >= lo && umin[i] <= u[i] + 1e-15);
            prop_assert!(umax[i] <= hi && umax[i] >= u[i] - 1e-15);
        }
    }
}

proptest! {
    /// The FullNeumann FDM is symmetric positive semi-definite on random
    /// inputs for random Helmholtz coefficients.
    #[test]
    fn fdm_is_spsd(h1 in 0.1f64..5.0, h2 in 0.0f64..5.0, seed in 0u64..200) {
        use rbx::la::ElementFdm;
        use rbx::mesh::GeomFactors;
        let mesh = box_mesh(2, 1, 1, [0., 2.], [0., 1.], [0., 1.], false, false);
        let geom = GeomFactors::new(&mesh, 3);
        let fdm = ElementFdm::new(&geom);
        let n = geom.total_nodes();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(17);
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let u: Vec<f64> = (0..n).map(|_| rand()).collect();
        let v: Vec<f64> = (0..n).map(|_| rand()).collect();
        let mut fu = vec![0.0; n];
        let mut fv = vec![0.0; n];
        fdm.apply_add(&u, &mut fu, h1, h2);
        fdm.apply_add(&v, &mut fv, h1, h2);
        let dot = |a: &[f64], b: &[f64]| a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>();
        // Symmetric…
        let asym = (dot(&fu, &v) - dot(&u, &fv)).abs();
        prop_assert!(asym < 1e-9 * dot(&fu, &v).abs().max(1.0), "asym {}", asym);
        // …and positive semi-definite.
        prop_assert!(dot(&fu, &u) >= -1e-10);
    }

    /// Symmetric Jacobi eigendecomposition reconstructs random symmetric
    /// matrices.
    #[test]
    fn sym_eig_reconstructs_random_matrices(
        seed in 0u64..500,
        n in 2usize..8,
    ) {
        use rbx::basis::{sym_eig, DMat};
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(5);
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        };
        let mut a = DMat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rand();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let (vals, vecs) = sym_eig(&a);
        // Eigenvalues ascending.
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
        // A = V Λ Vᵀ.
        let mut lam = DMat::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = vals[i];
        }
        let recon = vecs.matmul(&lam).matmul(&vecs.transpose());
        for i in 0..n {
            for j in 0..n {
                prop_assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-9,
                    "({},{}): {} vs {}", i, j, recon[(i, j)], a[(i, j)]);
            }
        }
    }

    /// Interpolation matrices form a partition of unity at arbitrary
    /// evaluation points.
    #[test]
    fn interp_partition_of_unity(
        n in 2usize..10,
        xs in proptest::collection::vec(-1.0f64..1.0, 1..6),
    ) {
        use rbx::basis::{gll, interp_matrix};
        let from = gll(n).points;
        let j = interp_matrix(&from, &xs);
        for i in 0..xs.len() {
            let s: f64 = j.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-10, "row {} sums to {}", i, s);
        }
    }

    /// Tightening the compression error bound never increases the measured
    /// error and never decreases the kept fraction.
    #[test]
    fn compression_monotone_in_bound(seed in 0u64..100) {
        use rbx::basis::ModalBasis;
        use rbx::compress::{compress_field, decompress_field, weighted_l2_error, CompressionConfig};
        use rbx::mesh::GeomFactors;
        let mesh = box_mesh(1, 1, 1, [0., 1.], [0., 1.], [0., 1.], false, false);
        let geom = GeomFactors::new(&mesh, 5);
        let basis = ModalBasis::new(6);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(23);
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        // Smooth-ish random field: random low modes.
        let field: Vec<f64> = (0..geom.total_nodes())
            .map(|i| {
                let x = geom.coords[0][i];
                let y = geom.coords[1][i];
                let z = geom.coords[2][i];
                let (a, b, c) = (rand(), rand(), rand());
                a * x + b * y * y + c * (2.0 * z).sin()
            })
            .collect();
        let mut prev_kept = 0.0;
        for eps in [0.1f64, 0.01, 0.001] {
            let cfg = CompressionConfig { error_bound: eps, quant_bits: None, codec: rbx::compress::Codec::Raw };
            let c = compress_field(&field, &geom, &basis, &cfg);
            // Tighter bounds keep at least as many coefficients.
            prop_assert!(c.kept_fraction >= prev_kept - 1e-12);
            prev_kept = c.kept_fraction;
            let recon = decompress_field(&c, &basis);
            let err = weighted_l2_error(&field, &recon, &geom.mass);
            prop_assert!(err <= 1.5 * eps + 1e-12, "eps {} err {}", eps, err);
        }
    }
}
