//! End-to-end observability acceptance tests: a telemetry-enabled RBC run
//! must emit a schema-valid JSONL stream whose per-step phase breakdown
//! accounts for the measured wall time, bridge recovery events into the
//! same stream, and export a Prometheus snapshot — while a disabled handle
//! stays completely silent.

use rbx::comm::SingleComm;
use rbx::core::{
    CheckpointSet, FaultPlan, RecoveryPolicy, ResilientRunner, Simulation, SolverConfig,
};
use rbx::telemetry::json::Value;
use rbx::telemetry::schema::validate_line;
use rbx::telemetry::Telemetry;
use std::path::PathBuf;

fn test_cfg() -> SolverConfig {
    SolverConfig {
        ra: 2e4,
        order: 3,
        dt: 2e-3,
        ic_noise: 1e-2,
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rbx_telemetry_e2e_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn make_sim<'a>(case: &'a rbx::core::CaseSetup, comm: &'a SingleComm) -> Simulation<'a> {
    let mut sim = Simulation::new(
        test_cfg(),
        &case.mesh,
        &case.part,
        case.elems[0].clone(),
        comm,
    );
    sim.init_rbc();
    sim
}

fn read_records(path: &PathBuf) -> Vec<Value> {
    let text = std::fs::read_to_string(path).expect("read JSONL");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            validate_line(l).unwrap_or_else(|e| panic!("invalid record: {e}\n  line: {l}"));
            Value::parse(l).unwrap()
        })
        .collect()
}

#[test]
fn enabled_run_emits_valid_stream_with_phase_accounting() {
    let case = rbx::core::rbc_box_case(1.0, 2, 2, false, 1);
    let comm = SingleComm::new();
    let mut sim = make_sim(&case, &comm);

    let dir = tmpdir("stream");
    let jsonl = dir.join("tel.jsonl");
    let tel = Telemetry::enabled();
    tel.open_jsonl(&jsonl).unwrap();
    sim.set_telemetry(&tel);

    for _ in 0..4 {
        assert!(sim.step().verdict.is_healthy());
    }
    tel.flush();

    let records = read_records(&jsonl);
    let steps: Vec<&Value> = records
        .iter()
        .filter(|r| r.get("kind").and_then(|k| k.as_str()) == Some("step"))
        .collect();
    let solves = records
        .iter()
        .filter(|r| r.get("kind").and_then(|k| k.as_str()) == Some("solve"))
        .count();
    assert_eq!(steps.len(), 4, "one step record per time step");
    // pressure + 3 velocity components + temperature per step
    assert_eq!(solves, 4 * 5, "one solve record per linear solve");

    // The phase breakdown must account for the step's wall time: phases
    // are interior measurements, so their sum is ≤ wall and within 1 %.
    for rec in &steps {
        let wall = rec.get("wall_s").and_then(|v| v.as_f64()).unwrap();
        let phases = rec.get("phases").expect("phases object");
        let sum: f64 = ["pressure", "velocity", "temperature", "other"]
            .iter()
            .map(|k| phases.get(k).and_then(|v| v.as_f64()).unwrap())
            .sum();
        assert!(
            sum >= 0.99 * wall && sum <= 1.001 * wall,
            "phase sum {sum} vs wall {wall} drifted more than 1 %"
        );
    }

    // The span tree carries the sub-phase attribution: gather-scatter and
    // Schwarz internals show up as hierarchical paths.
    let snap = tel.tracer().snapshot();
    let paths: Vec<&str> = snap.iter().map(|s| s.path.as_str()).collect();
    for want in ["gs/local", "gs/scatter", "schwarz/coarse", "schwarz/fdm"] {
        assert!(
            paths.contains(&want),
            "missing span path {want:?} in {paths:?}"
        );
    }

    // Prometheus snapshot exports both metrics and span aggregates.
    let prom = dir.join("tel.prom");
    tel.write_prometheus(&prom).unwrap();
    let text = std::fs::read_to_string(&prom).unwrap();
    // (no rbx_gs_bytes_total here: a single-rank run has no shared
    // exchange; the multi-rank traffic counters are covered in rbx-gs.)
    for needle in [
        "rbx_steps_total 4",
        "rbx_solve_iterations",
        "rbx_span_seconds_total",
        "rbx_step_wall_seconds",
    ] {
        assert!(
            text.contains(needle),
            "Prometheus snapshot missing {needle:?}"
        );
    }
}

#[test]
fn recovery_events_bridge_into_the_stream() {
    let case = rbx::core::rbc_box_case(1.0, 2, 2, false, 1);
    let comm = SingleComm::new();
    let mut sim = make_sim(&case, &comm);

    let dir = tmpdir("recovery");
    let jsonl = dir.join("tel.jsonl");
    let tel = Telemetry::enabled();
    tel.open_jsonl(&jsonl).unwrap();
    sim.set_telemetry(&tel);

    let policy = RecoveryPolicy {
        checkpoint_every: 2,
        dt_factor: 0.5,
        ..Default::default()
    };
    let faults = FaultPlan::new(42).inject_nan_at(3);
    let mut runner =
        ResilientRunner::new(CheckpointSet::new(dir.join("chk"), 3), policy).with_faults(faults);
    let report = runner
        .run_with(&mut sim, 5, |_, _| {})
        .expect("run completes");
    assert_eq!(report.rollbacks, 1);
    tel.flush();

    let records = read_records(&jsonl);
    let events: Vec<&str> = records
        .iter()
        .filter(|r| r.get("kind").and_then(|k| k.as_str()) == Some("recovery"))
        .map(|r| r.get("event").and_then(|e| e.as_str()).unwrap())
        .collect();
    assert!(events.contains(&"divergence"), "events: {events:?}");
    assert!(events.contains(&"rolled_back"), "events: {events:?}");
    assert!(events.contains(&"checkpoint_written"), "events: {events:?}");

    // The same story is visible as labelled counters.
    let m = tel.metrics();
    assert_eq!(
        m.counter("rbx_recovery_events_total{event=\"divergence\"}"),
        1
    );
    assert_eq!(
        m.counter("rbx_recovery_events_total{event=\"rolled_back\"}"),
        1
    );
}

#[test]
fn disabled_telemetry_is_silent() {
    let case = rbx::core::rbc_box_case(1.0, 2, 2, false, 1);
    let comm = SingleComm::new();
    let mut sim = make_sim(&case, &comm);
    // No set_telemetry: the default handle is disabled.
    for _ in 0..2 {
        assert!(sim.step().verdict.is_healthy());
    }
    assert!(sim.tel.tracer().snapshot().is_empty());
    assert!(sim.tel.metrics().render_prometheus().is_empty());
}
