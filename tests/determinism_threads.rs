//! Thread-count independence of the pooled runtime: a full RBC time loop
//! driven through the persistent worker pool must produce **bitwise
//! identical** fields for every pool size. This is the end-to-end version
//! of the per-kernel determinism unit tests — it exercises the pooled
//! Helmholtz applies inside PCG/FGMRES, the deterministic pooled dot
//! products, the pooled dealiased advection, the pooled element-FDM
//! Schwarz fine level (in both Serial and Overlapped composition), and
//! the pooled gather-scatter local phases, all composed over several
//! steps of the real time integrator.
//!
//! The contract (DESIGN.md §10): chunk boundaries are a function of the
//! problem size only, each element/group is reduced in index order on a
//! single worker, and partial sums are combined in chunk-index order —
//! so the schedule never leaks into the floating-point result.

use rbx::comm::SingleComm;
use rbx::core::{Simulation, SolverConfig};
use rbx::device::WorkerPool;
use rbx::la::SchwarzMode;

fn run_steps(mode: SchwarzMode, threads: usize, steps: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let case = rbx::core::rbc_box_case(2.0, 3, 2, false, 1);
    let cfg = SolverConfig {
        ra: 2e4,
        order: 4,
        dt: 2e-3,
        ic_noise: 1e-2,
        schwarz_mode: mode,
        ..Default::default()
    };
    let comm = SingleComm::new();
    let all: Vec<usize> = (0..case.mesh.num_elements()).collect();
    let mut sim = Simulation::new(cfg, &case.mesh, &case.part, all, &comm);
    let pool = WorkerPool::new(threads);
    sim.set_pool(&pool);
    sim.init_rbc();
    for s in 0..steps {
        let st = sim.step();
        assert!(st.converged, "threads={threads} step={s}: {st:?}");
    }
    (
        sim.state.u[2].clone(),
        sim.state.p.clone(),
        sim.state.t.clone(),
    )
}

fn assert_bitwise(label: &str, threads: usize, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{label}[{i}] differs at {threads} threads: {x:e} vs {y:e}"
        );
    }
}

#[test]
fn full_steps_bitwise_identical_across_pool_sizes() {
    for mode in [SchwarzMode::Serial, SchwarzMode::Overlapped] {
        let (uz1, p1, t1) = run_steps(mode, 1, 4);
        for threads in [4usize, 7] {
            let (uz, p, t) = run_steps(mode, threads, 4);
            assert_bitwise("uz", threads, &uz1, &uz);
            assert_bitwise("p", threads, &p1, &p);
            assert_bitwise("t", threads, &t1, &t);
        }
    }
}
