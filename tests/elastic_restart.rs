//! Elastic restart: checkpoints are topology-independent, so a run
//! checkpointed at N ranks restores and continues on M ranks — and the
//! physics after the restart is byte-identical to an uninterrupted run at
//! the target rank count. The foundation is the canonical-reduction
//! contract: on the serial (unpooled) path every global reduction and
//! every gather-scatter combine folds in global-element-id order, so the
//! bits never depend on how elements are distributed.

use rbx::comm::{run_on_ranks, Communicator, SingleComm};
use rbx::core::{read_checkpoint, write_checkpoint, Simulation, SolverConfig};
use rbx::la::SchwarzMode;
use std::path::PathBuf;

fn test_cfg() -> SolverConfig {
    SolverConfig {
        ra: 2e4,
        order: 3,
        dt: 2e-3,
        ic_noise: 1e-2,
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rbx_elastic_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run `steps` steps on `nranks` ranks and return the state fields
/// assembled into global-element order: (t, u0, u1, u2, p).
fn global_run(
    case: &rbx::core::CaseSetup,
    cfg: &SolverConfig,
    nranks: usize,
    steps: usize,
) -> [Vec<f64>; 5] {
    let n_per = (cfg.order + 1).pow(3);
    let nelem = case.mesh.num_elements();
    let mut global: [Vec<f64>; 5] = std::array::from_fn(|_| vec![0.0; nelem * n_per]);
    if nranks == 1 {
        let comm = SingleComm::new();
        let part = vec![0usize; nelem];
        let all: Vec<usize> = (0..nelem).collect();
        let mut sim = Simulation::new(cfg.clone(), &case.mesh, &part, all, &comm);
        sim.init_rbc();
        for _ in 0..steps {
            assert!(sim.step().converged);
        }
        for (f, dst) in [
            &sim.state.t,
            &sim.state.u[0],
            &sim.state.u[1],
            &sim.state.u[2],
            &sim.state.p,
        ]
        .into_iter()
        .zip(global.iter_mut())
        {
            dst.copy_from_slice(f);
        }
        return global;
    }
    let results = run_on_ranks(nranks, move |comm| {
        let mut sim = Simulation::new(
            cfg.clone(),
            &case.mesh,
            &case.part,
            case.elems[comm.rank()].clone(),
            comm,
        );
        sim.init_rbc();
        for _ in 0..steps {
            assert!(sim.step().converged, "rank {}", comm.rank());
        }
        (
            sim.my_elems.clone(),
            [
                sim.state.t.clone(),
                sim.state.u[0].clone(),
                sim.state.u[1].clone(),
                sim.state.u[2].clone(),
                sim.state.p.clone(),
            ],
        )
    });
    for (my, fields) in results {
        for (le, &ge) in my.iter().enumerate() {
            for (f, dst) in fields.iter().zip(global.iter_mut()) {
                dst[ge * n_per..(ge + 1) * n_per].copy_from_slice(&f[le * n_per..(le + 1) * n_per]);
            }
        }
    }
    global
}

fn assert_bitwise(a: &[Vec<f64>; 5], b: &[Vec<f64>; 5], what: &str) {
    let names = ["t", "u0", "u1", "u2", "p"];
    for ((fa, fb), name) in a.iter().zip(b.iter()).zip(names) {
        assert_eq!(fa.len(), fb.len());
        for (i, (x, y)) in fa.iter().zip(fb.iter()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: field {name} differs at {i}: {x:?} vs {y:?}"
            );
        }
    }
}

/// The canonical-reduction contract itself: the same case run on 1, 2 and
/// 4 ranks produces byte-identical fields. Everything else in this file
/// builds on this.
#[test]
fn rank_count_is_bitwise_invisible() {
    let case = rbx::core::rbc_box_case(2.0, 4, 2, false, 4);
    let cfg = test_cfg();
    let steps = 4;
    let r1 = global_run(&case, &cfg, 1, steps);
    let case2 = rbx::core::rbc_box_case(2.0, 4, 2, false, 2);
    let r2 = global_run(&case2, &cfg, 2, steps);
    let r4 = global_run(&case, &cfg, 4, steps);
    assert_bitwise(&r1, &r2, "1 vs 2 ranks");
    assert_bitwise(&r1, &r4, "1 vs 4 ranks");
}

/// Run `k1` steps on `n_src` ranks, checkpoint (topology-free, shared
/// file), restore on `n_dst` ranks, run `k2` more steps there, and return
/// the final fields in global element order.
fn restart_run(
    cfg: &SolverConfig,
    n_src: usize,
    n_dst: usize,
    k1: usize,
    k2: usize,
    chk: &std::path::Path,
) -> [Vec<f64>; 5] {
    let n_per = (cfg.order + 1).pow(3);
    let case_src = rbx::core::rbc_box_case(2.0, 4, 2, false, n_src);
    let cfg_ref = cfg;
    let case_ref = &case_src;
    run_on_ranks(n_src, move |comm| {
        let mut sim = Simulation::new(
            cfg_ref.clone(),
            &case_ref.mesh,
            &case_ref.part,
            case_ref.elems[comm.rank()].clone(),
            comm,
        );
        sim.init_rbc();
        for _ in 0..k1 {
            assert!(sim.step().converged);
        }
        write_checkpoint(&sim, chk).unwrap();
    });

    let case_dst = rbx::core::rbc_box_case(2.0, 4, 2, false, n_dst);
    let nelem = case_dst.mesh.num_elements();
    let mut global: [Vec<f64>; 5] = std::array::from_fn(|_| vec![0.0; nelem * n_per]);
    let case_ref = &case_dst;
    let results = run_on_ranks(n_dst, move |comm| {
        let mut sim = Simulation::new(
            cfg_ref.clone(),
            &case_ref.mesh,
            &case_ref.part,
            case_ref.elems[comm.rank()].clone(),
            comm,
        );
        read_checkpoint(&mut sim, chk).unwrap();
        assert_eq!(sim.state.istep, k1);
        for _ in 0..k2 {
            assert!(sim.step().converged, "rank {}", comm.rank());
        }
        (
            sim.my_elems.clone(),
            [
                sim.state.t.clone(),
                sim.state.u[0].clone(),
                sim.state.u[1].clone(),
                sim.state.u[2].clone(),
                sim.state.p.clone(),
            ],
        )
    });
    for (my, fields) in results {
        for (le, &ge) in my.iter().enumerate() {
            for (f, dst) in fields.iter().zip(global.iter_mut()) {
                dst[ge * n_per..(ge + 1) * n_per].copy_from_slice(&f[le * n_per..(le + 1) * n_per]);
            }
        }
    }
    global
}

/// Shrink restart: checkpoint at 4 ranks, restore and continue on 2. The
/// continued physics must be byte-identical to an uninterrupted 2-rank
/// run — in both Schwarz preconditioner modes.
#[test]
fn four_to_two_restart_is_bitwise() {
    for (mode, tag) in [
        (SchwarzMode::Serial, "serial"),
        (SchwarzMode::Overlapped, "overlapped"),
    ] {
        let cfg = SolverConfig {
            schwarz_mode: mode,
            ..test_cfg()
        };
        let chk = tmpdir(&format!("4to2_{tag}")).join("chk.bpl");
        let restarted = restart_run(&cfg, 4, 2, 3, 3, &chk);
        let case = rbx::core::rbc_box_case(2.0, 4, 2, false, 2);
        let uninterrupted = global_run(&case, &cfg, 2, 6);
        assert_bitwise(&restarted, &uninterrupted, &format!("4→2 restart ({tag})"));
    }
}

/// Grow restart: checkpoint at 2 ranks, restore and continue on 4.
#[test]
fn two_to_four_restart_is_bitwise() {
    for (mode, tag) in [
        (SchwarzMode::Serial, "serial"),
        (SchwarzMode::Overlapped, "overlapped"),
    ] {
        let cfg = SolverConfig {
            schwarz_mode: mode,
            ..test_cfg()
        };
        let chk = tmpdir(&format!("2to4_{tag}")).join("chk.bpl");
        let restarted = restart_run(&cfg, 2, 4, 3, 3, &chk);
        let case = rbx::core::rbc_box_case(2.0, 4, 2, false, 4);
        let uninterrupted = global_run(&case, &cfg, 4, 6);
        assert_bitwise(&restarted, &uninterrupted, &format!("2→4 restart ({tag})"));
    }
}

/// Odd target: restore a 4-rank checkpoint on 7 ranks (non-divisor,
/// non-power-of-two — exercises the repartitioner's general path).
#[test]
fn four_to_seven_restart_is_bitwise() {
    let cfg = test_cfg();
    let chk = tmpdir("4to7").join("chk.bpl");
    let restarted = restart_run(&cfg, 4, 7, 3, 3, &chk);
    let case = rbx::core::rbc_box_case(2.0, 4, 2, false, 7);
    let uninterrupted = global_run(&case, &cfg, 7, 6);
    assert_bitwise(&restarted, &uninterrupted, "4→7 restart");
}
