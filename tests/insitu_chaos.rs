//! Chaos acceptance tests for the in-situ analysis plane.
//!
//! The contract under test (DESIGN.md §16): the analysis plane is
//! *load-bearing for nothing*. Solver ranks ship compressed slabs to
//! dedicated analysis ranks over a bounded best-effort channel, and any
//! misbehavior on the analysis side — a crashed rank, a wedged rank, a
//! consumer that never drains — degrades to drop-with-counter on the
//! solver side. Specifically:
//!
//! * the solver trajectory is **byte-identical** to an analysis-free
//!   baseline (final checkpoints compared bit for bit), fault or no
//!   fault;
//! * no analysis fault provokes a rollback, a panic, or a deadlock;
//! * shed slabs are counted (`rbx_insitu_dropped_total`) and the
//!   per-step `rbx.insitu.v1` sender records carry a monotone dropped
//!   counter;
//! * a dead analysis rank raises the `insitu_dead` critical health
//!   event on rank 0;
//! * the step loop never blocks on a slow consumer (bounded wall time
//!   for a burst of offers at a comatose peer).

use rbx::comm::{
    run_on_ranks, run_on_ranks_tuned, ChaosComm, CommFaultPlan, CommTuning, Communicator,
    HardenedComm, SlabOffer, SlabSender, SubsetComm,
};
use rbx::compress::{AsyncFieldCompressor, CompressionConfig};
use rbx::core::{CheckpointSet, RecoveryPolicy, ResilientRunner, Simulation, SolverConfig};
use rbx::insitu::{run_analysis_rank, AnalysisConfig, AnalysisOutcome};
use rbx::io::encode_slab_body;
use rbx::obs::{HealthConfig, HealthMonitor};
use rbx::telemetry::json::Value;
use rbx::telemetry::schema::{insitu_sender_record, validate_line};
use rbx::telemetry::Telemetry;
use std::path::{Path, PathBuf};
use std::time::Duration;

const STEPS: usize = 8;
const SOLVER: usize = 2;

fn test_cfg() -> SolverConfig {
    SolverConfig {
        ra: 2e4,
        order: 3,
        dt: 2e-3,
        ic_noise: 1e-2,
        ..Default::default()
    }
}

fn chaos_tuning() -> CommTuning {
    CommTuning {
        recv_timeout: Duration::from_millis(120),
        retries: 1,
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rbx_insitu_chaos_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One rank's view of a chaos run.
enum Out {
    Solver {
        rollbacks: usize,
        checkpoint: Vec<u8>,
        sent: u64,
        dropped: u64,
        stalled: bool,
        jsonl: PathBuf,
        health: Vec<String>,
    },
    Analysis {
        outcome: AnalysisOutcome,
        jsonl: PathBuf,
    },
}

/// Run `STEPS` resilient solver steps on `SOLVER` ranks plus
/// `analysis_k` dedicated analysis ranks, all over the chaos-hardened
/// stack. `plan: None` leaves chaos disarmed; `analysis_k == 0` is the
/// analysis-free baseline (same solver stack, no subset wrap, no slab
/// traffic — the byte-identity reference).
fn run_case(analysis_k: usize, dir: &Path, plan: Option<CommFaultPlan>) -> Vec<Out> {
    let case = rbx::core::rbc_box_case(1.0, 2, 2, false, SOLVER);
    let cfg = test_cfg();
    let chk = dir.join("chk");
    std::fs::create_dir_all(&chk).unwrap();
    let (case_ref, cfg_ref, plan_ref, chk_ref) = (&case, &cfg, &plan, &chk);
    run_on_ranks_tuned(SOLVER + analysis_k, chaos_tuning(), move |tc| {
        let rank = tc.rank();
        let armed = plan_ref.is_some();
        let chaos = ChaosComm::new(
            tc,
            plan_ref.clone().unwrap_or_else(|| CommFaultPlan::new(0)),
        );
        // Setup traffic (partition handshakes) is not the target.
        chaos.set_armed(false);
        let comm = HardenedComm::new(chaos);
        let tel = Telemetry::enabled();
        let jsonl = dir.join(format!("rank{rank}.jsonl"));
        tel.open_jsonl(&jsonl).unwrap();

        if rank >= SOLVER {
            // Analysis rank: drains its solver peers until their CLOSE
            // frames arrive (or the idle deadline covers a dead world).
            let me = rank - SOLVER;
            let acfg = AnalysisConfig {
                senders: (0..SOLVER).filter(|s| s % analysis_k == me).collect(),
                k_max: 4,
                poll: Duration::from_millis(1),
                idle_timeout: Duration::from_secs(5),
            };
            comm.inner().set_armed(armed);
            let outcome = run_analysis_rank(&comm, &acfg, &tel)
                .unwrap_or_else(|e| panic!("analysis rank {rank} errored: {e}"));
            tel.flush();
            return Out::Analysis { outcome, jsonl };
        }

        // Solver rank: with an analysis plane attached, collectives run
        // on the solver-only subset — the trajectory must not see K.
        let subset;
        let solver_comm: &dyn Communicator = if analysis_k > 0 {
            subset = SubsetComm::new(&comm, (0..SOLVER).collect())
                .expect("solver rank is in the solver subset");
            &subset
        } else {
            &comm
        };
        let mut sim = Simulation::new(
            cfg_ref.clone(),
            &case_ref.mesh,
            &case_ref.part,
            case_ref.elems[rank].clone(),
            solver_comm,
        );
        sim.init_rbc();
        sim.set_telemetry(&tel);
        let mut health_mon = None;
        if rank == 0 {
            let mon = HealthMonitor::new(HealthConfig::default(), &tel);
            mon.install(&tel);
            health_mon = Some(mon);
        }
        let dest = SOLVER + rank % analysis_k.max(1);
        let mut slab_tx = (analysis_k > 0).then(|| {
            let mut tx = SlabSender::new(&comm, dest, 2);
            tx.set_telemetry(&tel);
            tx
        });
        let mut encoder = (analysis_k > 0).then(|| {
            AsyncFieldCompressor::new(&sim.geom, cfg_ref.order + 1, CompressionConfig::default())
        });

        let policy = RecoveryPolicy {
            checkpoint_every: 2,
            max_rollbacks: 4,
            ..Default::default()
        };
        let mut runner = ResilientRunner::new(CheckpointSet::new(chk_ref, 8), policy);
        comm.inner().set_armed(armed);
        let report = runner
            .run_with(&mut sim, STEPS, |sim, _st| {
                // Ship every step: snapshot into the encoder, forward
                // finished encodings, publish sender vitals. Nothing here
                // may block or fail the step.
                let step = sim.state.istep;
                if let (Some(enc), Some(tx)) = (encoder.as_mut(), slab_tx.as_mut()) {
                    let _ = enc.try_submit(step as u64, sim.state.time, "uz", &sim.state.u[2]);
                    while let Some(done) = enc.poll() {
                        let body = encode_slab_body(
                            done.step,
                            done.time,
                            &done.var,
                            &done.compressed.to_bytes(),
                        );
                        let _ = tx.offer(&body);
                    }
                    let s = tx.stats();
                    tel.emit(&insitu_sender_record(
                        step as u64,
                        rank as u64,
                        dest as u64,
                        s.sent,
                        s.dropped,
                        s.acked,
                        s.inflight_highwater,
                        tx.is_stalled(),
                    ));
                }
            })
            .unwrap_or_else(|e| panic!("rank {rank}: solver failed under analysis faults: {e}"));
        comm.inner().set_armed(false);
        assert_eq!(sim.state.istep, STEPS, "rank {rank}: run fell short");
        assert_eq!(sim.find_non_finite(), None, "rank {rank}");

        let (sent, dropped, stalled) = match (encoder.take(), slab_tx.take()) {
            (Some(enc), Some(mut tx)) => {
                let (tail, _) = enc.finish();
                for done in tail {
                    let body = encode_slab_body(
                        done.step,
                        done.time,
                        &done.var,
                        &done.compressed.to_bytes(),
                    );
                    let _ = tx.offer(&body);
                }
                tx.close();
                let s = tx.stats();
                (s.sent, s.dropped, tx.is_stalled())
            }
            _ => (0, 0, false),
        };
        tel.flush();
        let health = health_mon
            .map(|m| m.events().iter().map(|v| v.to_string()).collect())
            .unwrap_or_default();
        let final_path = runner.checkpoints.path_for_step(STEPS);
        Out::Solver {
            rollbacks: report.rollbacks,
            checkpoint: std::fs::read(&final_path)
                .unwrap_or_else(|e| panic!("rank {rank}: final checkpoint: {e}")),
            sent,
            dropped,
            stalled,
            jsonl,
            health,
        }
    })
}

fn solver_outs(outs: &[Out]) -> Vec<&Out> {
    outs.iter()
        .filter(|o| matches!(o, Out::Solver { .. }))
        .collect()
}

/// Every line of every stream must be schema-valid, and within each
/// solver stream the sender records' dropped counter must be monotone.
fn check_streams(outs: &[Out], tag: &str) {
    for out in outs {
        let jsonl = match out {
            Out::Solver { jsonl, .. } | Out::Analysis { jsonl, .. } => jsonl,
        };
        let text = std::fs::read_to_string(jsonl).unwrap();
        let mut last_dropped = 0u64;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            validate_line(line)
                .unwrap_or_else(|e| panic!("{tag}: invalid record: {e}\n  line: {line}"));
            let v = Value::parse(line).unwrap();
            if v.get("kind").and_then(Value::as_str) == Some("sender") {
                let d = v.get("dropped").and_then(Value::as_u64).unwrap();
                assert!(
                    d >= last_dropped,
                    "{tag}: dropped counter went backwards in {}",
                    jsonl.display()
                );
                last_dropped = d;
            }
        }
    }
}

/// The core matrix: a healthy analysis plane, a crashed analysis rank
/// (its acks vanish mid-run), and a stalled one (wedged for most of the
/// run) — in every case the solver's final checkpoint is byte-identical
/// to the analysis-free baseline, with zero rollbacks.
#[test]
fn analysis_faults_leave_solver_byte_identical() {
    let base = run_case(0, &tmpdir("base"), None);
    let baseline: Vec<&Vec<u8>> = base
        .iter()
        .map(|o| match o {
            Out::Solver { checkpoint, .. } => checkpoint,
            Out::Analysis { .. } => unreachable!("baseline has no analysis ranks"),
        })
        .collect();

    // (tag, fault plan targeting only analysis ranks, expect shed slabs)
    let matrix: Vec<(&str, Option<CommFaultPlan>, bool)> = vec![
        ("clean", None, false),
        (
            // The analysis rank's sends (its acks) vanish from op 0: a
            // dead peer. The window fills, then every offer drops.
            "crash",
            Some(CommFaultPlan::new(21).crash_sends_from(SOLVER, 0)),
            true,
        ),
        (
            // The analysis rank wedges for most of the run on its first
            // acks: a live-but-stuck peer.
            "stall",
            Some(
                CommFaultPlan::new(22)
                    .stall_at(SOLVER, 0, Duration::from_millis(400))
                    .stall_at(SOLVER, 1, Duration::from_millis(400)),
            ),
            false,
        ),
    ];
    for (tag, plan, want_drops) in matrix {
        let outs = run_case(1, &tmpdir(tag), plan);
        let solvers = solver_outs(&outs);
        assert_eq!(solvers.len(), SOLVER);
        let mut total_sent = 0;
        let mut total_dropped = 0;
        let mut any_stalled = false;
        for (r, out) in solvers.iter().enumerate() {
            let Out::Solver {
                rollbacks,
                checkpoint,
                sent,
                dropped,
                stalled,
                ..
            } = out
            else {
                unreachable!()
            };
            assert_eq!(
                *rollbacks, 0,
                "{tag} rank {r}: analysis fault must not trip a rollback"
            );
            assert!(
                checkpoint == baseline[r],
                "{tag} rank {r}: solver checkpoint differs from analysis-free baseline"
            );
            total_sent += sent;
            total_dropped += dropped;
            any_stalled |= stalled;
        }
        assert!(total_sent >= 1, "{tag}: no slab ever left a solver rank");
        if want_drops {
            assert!(
                total_dropped >= 1,
                "{tag}: a dead analysis rank must shed slabs (counted), got 0 drops"
            );
            assert!(any_stalled, "{tag}: the dead peer must be reported stalled");
            let dead_event = solvers.iter().any(|o| match o {
                Out::Solver { health, .. } => health.iter().any(|e| e.contains("insitu_dead")),
                Out::Analysis { .. } => false,
            });
            assert!(
                dead_event,
                "{tag}: rank 0 must raise the insitu_dead critical health event"
            );
        }
        if tag == "clean" {
            // Healthy plane: slabs arrive, the POD accumulates, and the
            // loop exits on CLOSE frames, not the idle deadline.
            for out in &outs {
                if let Out::Analysis { outcome, .. } = out {
                    assert!(outcome.received >= 1, "clean: analysis rank saw no slabs");
                    assert!(!outcome.idle_exit, "clean: exit must come from CLOSE");
                    assert!(!outcome.pods.is_empty(), "clean: no POD was built");
                }
            }
        }
        check_streams(&outs, tag);
    }
}

/// Killing *every* analysis rank of a K=2 plane mid-run: both channels
/// degrade to drop-with-counter, nobody deadlocks, and the solver
/// trajectory still matches the analysis-free baseline bit for bit.
#[test]
fn killing_every_analysis_rank_degrades_to_drops() {
    let base = run_case(0, &tmpdir("base_k2"), None);
    let plan = CommFaultPlan::new(33)
        .crash_sends_from(SOLVER, 0)
        .crash_sends_from(SOLVER + 1, 0);
    let outs = run_case(2, &tmpdir("crash_k2"), Some(plan));
    let solvers = solver_outs(&outs);
    let mut total_dropped = 0;
    for (r, out) in solvers.iter().enumerate() {
        let Out::Solver {
            rollbacks,
            checkpoint,
            dropped,
            ..
        } = out
        else {
            unreachable!()
        };
        assert_eq!(*rollbacks, 0, "rank {r}: rollback under analysis crash");
        let Out::Solver {
            checkpoint: base_chk,
            ..
        } = &base[r]
        else {
            unreachable!()
        };
        assert!(
            checkpoint == base_chk,
            "rank {r}: trajectory perturbed by crashed analysis plane"
        );
        total_dropped += dropped;
    }
    assert!(
        total_dropped >= 1,
        "with every analysis rank dead, slabs must be shed and counted"
    );
    check_streams(&outs, "crash_k2");
}

/// Backpressure, not blocking: a burst of offers at a comatose consumer
/// (never polls, never acks) completes in bounded wall time — each
/// window-full offer costs at most one bounded ack probe — and everything
/// past the window is dropped and counted.
#[test]
fn slow_consumer_never_blocks_the_sender() {
    const OFFERS: usize = 200;
    const WINDOW: usize = 2;
    run_on_ranks(2, |tc| {
        if tc.rank() == 0 {
            let mut tx = SlabSender::new(tc, 1, WINDOW);
            let body = vec![7u8; 64 * 1024];
            let t0 = std::time::Instant::now();
            let mut dropped = 0;
            for _ in 0..OFFERS {
                if matches!(tx.offer(&body), SlabOffer::DroppedFull) {
                    dropped += 1;
                }
            }
            let elapsed = t0.elapsed();
            tx.close();
            assert!(
                dropped >= (OFFERS - WINDOW) as u64,
                "expected ≥ {} drops at a dead consumer, got {dropped}",
                OFFERS - WINDOW
            );
            assert!(tx.is_stalled(), "a never-acking peer must read as stalled");
            // Generous bound: the worst case is one 500 µs ack probe per
            // offer (~100 ms total); anything near seconds means the
            // sender blocked on the consumer.
            assert!(
                elapsed < Duration::from_secs(2),
                "{OFFERS} offers took {elapsed:?} — the sender blocked"
            );
        } else {
            // The consumer: alive but comatose. It never polls.
            std::thread::sleep(Duration::from_millis(200));
        }
    });
}
