//! End-to-end acceptance for the observability plane.
//!
//! A 4-rank elastic run with full observability on — per-rank JSONL
//! streams, flight rings, health detectors on rank 0 — hits a permanent
//! sender crash. The acceptance bar:
//!
//! * every surviving rank leaves a schema-valid `rbx.flight.v1`
//!   post-mortem dump (the flight recorder fired at the shrink),
//! * rank 0's health stream carries a critical `shrink` event,
//! * merging the per-rank streams yields a schema-valid `rbx.timeline.v1`
//!   timeline with per-step imbalance and straggler attribution.
//!
//! This is the workflow an operator would actually run after a node
//! loss: read the flight dumps, merge the streams, look at the timeline.

use rbx::comm::{
    run_on_ranks_tuned, ChaosComm, CommFaultPlan, CommTuning, Communicator, HardenedComm,
};
use rbx::core::{ElasticOutcome, ElasticRunner, RecoveryPolicy, SolverConfig};
use rbx::obs::{merge_files, HealthConfig, HealthMonitor};
use rbx::telemetry::json::Value;
use rbx::telemetry::schema::{
    validate_flight_header, validate_health, validate_line, validate_timeline_record,
};
use rbx::telemetry::Telemetry;
use std::path::{Path, PathBuf};
use std::time::Duration;

const STEPS: usize = 5;
const NRANKS: usize = 4;

fn test_cfg() -> SolverConfig {
    SolverConfig {
        ra: 2e4,
        order: 3,
        dt: 2e-3,
        ic_noise: 1e-2,
        ..Default::default()
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rbx_obs_e2e_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Validate one flight dump: header line, then telemetry records, with
/// the header's record count honest.
fn check_flight_dump(path: &Path) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read flight dump {}: {e}", path.display()));
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().unwrap_or_else(|| {
        panic!("flight dump {} is empty", path.display());
    });
    let hv = Value::parse(header).expect("flight header must parse");
    validate_flight_header(&hv)
        .unwrap_or_else(|e| panic!("{}: invalid header: {e}", path.display()));
    // A crash can surface as a divergence (NaN through the dead rank's
    // exchanges) before the shrink protocol runs; any of the known
    // post-mortem reasons is a valid trigger.
    let reason = hv.get("reason").and_then(Value::as_str).unwrap_or("");
    assert!(
        ["shrink", "divergence", "recovery_exhausted"].contains(&reason),
        "unknown dump reason {reason:?} in {}",
        path.display()
    );
    let mut records = 0usize;
    for line in lines {
        validate_line(line)
            .unwrap_or_else(|e| panic!("{}: invalid record: {e}\n  line: {line}", path.display()));
        records += 1;
    }
    assert!(records > 0, "{}: no records in dump", path.display());
    assert_eq!(
        hv.get("records").and_then(Value::as_u64),
        Some(records as u64),
        "{}: header record count is dishonest",
        path.display()
    );
}

#[test]
fn crash_leaves_flight_dumps_health_events_and_a_mergeable_timeline() {
    let case = rbx::core::rbc_box_case(2.0, 4, 2, false, NRANKS);
    let cfg = test_cfg();
    let dir = tmpdir("crash");
    let chk = dir.join("chk");
    let flight = dir.join("flight");
    let calib_chk = dir.join("calib_chk");
    std::fs::create_dir_all(&chk).unwrap();
    std::fs::create_dir_all(&calib_chk).unwrap();
    // Short deadlines: every retry against the crashed rank re-fails, so
    // wall time stays bounded by budget x deadline.
    let tuning = CommTuning {
        recv_timeout: Duration::from_millis(60),
        retries: 0,
        ..Default::default()
    };
    let (case_ref, cfg_ref, dir_ref, chk_ref, flight_ref, calib_ref) =
        (&case, &cfg, &dir, &chk, &flight, &calib_chk);
    let outcomes = run_on_ranks_tuned(NRANKS, tuning, move |tc| {
        let policy = RecoveryPolicy {
            checkpoint_every: 2,
            max_rollbacks: 1,
            ..Default::default()
        };
        // Calibration pass: count armed send ops through setup + a clean
        // run, so the crash threshold lands just past setup — the job
        // starts healthy and the last rank goes permanently silent early
        // in the stepped run.
        let setup_ops = {
            let chaos = ChaosComm::new(&tc, CommFaultPlan::new(7));
            let comm = HardenedComm::new(chaos);
            comm.inner().set_armed(true);
            ElasticRunner::new(calib_ref, 4, policy)
                .run(cfg_ref, &case_ref.mesh, &comm, None, 0)
                .unwrap_or_else(|e| panic!("rank {}: calibration errored: {e}", tc.rank()));
            comm.inner().send_ops()
        };
        let plan = CommFaultPlan::new(7).crash_sends_from(NRANKS - 1, setup_ops + 50);
        let chaos = ChaosComm::new(&tc, plan);
        let comm = HardenedComm::new(chaos);

        // Full observability on every rank: JSONL stream + flight ring;
        // the health detectors run on rank 0 only.
        let tel = Telemetry::enabled();
        let jsonl = dir_ref.join(format!("tel.rank{}.jsonl", tc.rank()));
        tel.open_jsonl(&jsonl).unwrap();
        tel.attach_flight(128);
        comm.set_telemetry(&tel);
        let health = (tc.rank() == 0).then(|| {
            let mon = HealthMonitor::new(HealthConfig::default(), &tel)
                .with_jsonl(&dir_ref.join("health.jsonl"))
                .unwrap();
            mon.install(&tel);
            mon
        });

        let runner = ElasticRunner::new(chk_ref, 4, policy).with_flight_dir(flight_ref);
        comm.inner().set_armed(true);
        let out = runner
            .run(cfg_ref, &case_ref.mesh, &comm, Some(&tel), STEPS)
            .unwrap_or_else(|e| panic!("rank {}: elastic run errored: {e}", tc.rank()));
        tel.flush();
        if let Some(mon) = &health {
            mon.flush();
        }
        let shrink_health_events = health.map(|m| {
            m.events()
                .iter()
                .filter(|e| e.get("detector").and_then(Value::as_str) == Some("shrink"))
                .count()
        });
        (out, jsonl, shrink_health_events)
    });

    // The crashed sender learns of its own eviction; everyone else
    // completes through the shrink.
    match &outcomes[NRANKS - 1].0 {
        ElasticOutcome::Evicted { survivors, .. } => assert_eq!(*survivors, NRANKS - 1),
        other => panic!("rank {} should be evicted, got {other:?}", NRANKS - 1),
    }
    for (rank, (out, _, _)) in outcomes.iter().enumerate().take(NRANKS - 1) {
        let report = match out {
            ElasticOutcome::Completed(r) => r,
            other => panic!("rank {rank} should complete via shrink, got {other:?}"),
        };
        assert_eq!(report.steps_completed, STEPS, "rank {rank}");
        assert!(report.shrinks >= 1, "rank {rank}: no shrink recorded");
        // The flight recorder fired on every survivor: at least one
        // schema-valid post-mortem dump, honest about its contents.
        assert!(
            !report.flight_dumps.is_empty(),
            "rank {rank}: no flight dump at the shrink"
        );
        for dump in &report.flight_dumps {
            check_flight_dump(dump);
        }
    }

    // Rank 0's health detectors saw the shrink, in-memory and on disk.
    let shrink_events = outcomes[0].2.expect("rank 0 ran the health monitor");
    assert!(shrink_events >= 1, "no shrink health event on rank 0");
    let health_text = std::fs::read_to_string(dir.join("health.jsonl")).unwrap();
    let mut saw_shrink = false;
    for line in health_text.lines().filter(|l| !l.trim().is_empty()) {
        let v = Value::parse(line).expect("health line must parse");
        validate_health(&v).unwrap_or_else(|e| panic!("invalid health event: {e}\n  line: {line}"));
        if v.get("detector").and_then(Value::as_str) == Some("shrink") {
            saw_shrink = true;
            assert_eq!(v.get("severity").and_then(Value::as_str), Some("critical"));
        }
    }
    assert!(saw_shrink, "health stream must record the shrink");

    // The operator workflow: merge the per-rank streams into one
    // schema-valid timeline with imbalance + straggler per step.
    let streams: Vec<PathBuf> = outcomes.iter().map(|(_, j, _)| j.clone()).collect();
    let tl = merge_files(&streams, None).expect("merge must read all streams");
    assert_eq!(tl.streams, NRANKS);
    assert!(tl.ranks >= NRANKS - 1, "timeline saw {} rank(s)", tl.ranks);
    assert!(!tl.steps.is_empty(), "timeline has no steps");
    for step in &tl.steps {
        assert!(
            step.imbalance >= 1.0 - 1e-9,
            "step {}: imbalance",
            step.step
        );
        assert!(
            step.straggler < NRANKS,
            "step {}: straggler {} out of range",
            step.step,
            step.straggler
        );
    }
    let out_path = dir.join("timeline.jsonl");
    let file = std::fs::File::create(&out_path).unwrap();
    tl.write_jsonl(std::io::BufWriter::new(file)).unwrap();
    let text = std::fs::read_to_string(&out_path).unwrap();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = Value::parse(line).expect("timeline line must parse");
        validate_timeline_record(&v)
            .unwrap_or_else(|e| panic!("invalid timeline record: {e}\n  line: {line}"));
    }
}
