//! End-to-end compression on real solver fields (the paper's §6.2
//! methodology: ratio measured against an instantaneous flow sample, error
//! in the weighted-L2/RMS norm).

use rbx::basis::ModalBasis;
use rbx::comm::SingleComm;
use rbx::compress::{
    compress_field, decompress_field, weighted_l2_error, Codec, CompressionConfig,
};
use rbx::core::{Simulation, SolverConfig};

/// A developed-ish RBC temperature field from a short run.
fn developed_fields() -> (Simulation<'static>, ModalBasis) {
    // Leak the case so the Simulation's borrows live for 'static — fine in
    // a test binary.
    let case = Box::leak(Box::new(rbx::core::rbc_box_case(2.0, 3, 3, false, 1)));
    let comm = Box::leak(Box::new(SingleComm::new()));
    let cfg = SolverConfig {
        ra: 1e5,
        order: 6,
        dt: 2e-3,
        ic_noise: 0.05,
        ..Default::default()
    };
    let order = cfg.order;
    let mut sim = Simulation::new(cfg, &case.mesh, &case.part, case.elems[0].clone(), comm);
    sim.init_rbc();
    for _ in 0..60 {
        assert!(sim.step().converged);
    }
    (sim, ModalBasis::new(order + 1))
}

#[test]
fn error_bounds_hold_on_solver_fields() {
    let (sim, basis) = developed_fields();
    let comm = SingleComm::new();
    let _ = &comm;
    for eps in [0.001, 0.01, 0.05] {
        let cfg = CompressionConfig {
            error_bound: eps,
            quant_bits: None,
            codec: Codec::Range,
        };
        let c = compress_field(&sim.state.t, &sim.geom, &basis, &cfg);
        let recon = decompress_field(&c, &basis);
        let err = weighted_l2_error(&sim.state.t, &recon, &sim.geom.mass);
        assert!(
            err <= 1.5 * eps + 1e-12,
            "ε = {eps}: measured error {err:.4e}"
        );
        // Tighter bounds keep more data.
        assert!(c.kept_fraction > 0.0 && c.kept_fraction <= 1.0);
    }
}

#[test]
fn paper_operating_point_reduction() {
    // The paper's Fig. 5 point: strong reduction at 2.5 % error. Our
    // laptop-Ra fields are smoother than Ra = 10¹¹ turbulence, so the
    // achievable reduction is at least as large.
    let (sim, basis) = developed_fields();
    let cfg = CompressionConfig {
        error_bound: 0.025,
        quant_bits: Some(16),
        codec: Codec::Range,
    };
    let c = compress_field(&sim.state.u[2], &sim.geom, &basis, &cfg);
    let recon = decompress_field(&c, &basis);
    let err = weighted_l2_error(&sim.state.u[2], &recon, &sim.geom.mass);
    assert!(
        c.reduction_percent() > 90.0,
        "reduction only {:.1} %",
        c.reduction_percent()
    );
    assert!(err < 0.04, "error {err:.4}");
}

#[test]
fn codecs_agree_on_reconstruction() {
    // The lossless stage must not change the reconstruction at all.
    let (sim, basis) = developed_fields();
    let mut reference: Option<Vec<f64>> = None;
    for codec in [Codec::Raw, Codec::Rle, Codec::Range] {
        let cfg = CompressionConfig {
            error_bound: 0.01,
            quant_bits: Some(16),
            codec,
        };
        let c = compress_field(&sim.state.t, &sim.geom, &basis, &cfg);
        let recon = decompress_field(&c, &basis);
        match &reference {
            None => reference = Some(recon),
            Some(r) => {
                for (a, b) in r.iter().zip(&recon) {
                    assert_eq!(a.to_bits(), b.to_bits(), "codec {codec:?} changed data");
                }
            }
        }
    }
}

#[test]
fn entropy_codecs_beat_raw() {
    let (sim, basis) = developed_fields();
    let mut sizes = std::collections::HashMap::new();
    for codec in [Codec::Raw, Codec::Rle, Codec::Range] {
        let cfg = CompressionConfig {
            error_bound: 0.01,
            quant_bits: Some(16),
            codec,
        };
        let c = compress_field(&sim.state.t, &sim.geom, &basis, &cfg);
        sizes.insert(format!("{codec:?}"), c.data.len());
    }
    let raw = sizes["Raw"];
    assert!(sizes["Rle"] < raw, "RLE {} !< raw {raw}", sizes["Rle"]);
    assert!(
        sizes["Range"] < raw,
        "Range {} !< raw {raw}",
        sizes["Range"]
    );
}

#[test]
fn compressed_payload_survives_io_roundtrip() {
    // Compression output stored through the BPL container and recovered.
    use rbx::io::{read_bpl, write_bpl, StepData, Variable};
    let (sim, basis) = developed_fields();
    let cfg = CompressionConfig::default();
    let c = compress_field(&sim.state.t, &sim.geom, &basis, &cfg);
    let dir = std::env::temp_dir().join("rbx_compress_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("field.bpl");
    write_bpl(
        &path,
        &[StepData {
            step: 1,
            time: sim.state.time,
            vars: vec![Variable::bytes(
                "t_compressed",
                vec![c.data.len() as u64],
                c.data.clone(),
            )],
        }],
    )
    .unwrap();
    let steps = read_bpl(&path).unwrap();
    let payload = match &steps[0].var("t_compressed").unwrap().data {
        rbx::io::VarData::Bytes(b) => b.clone(),
        _ => panic!("wrong type"),
    };
    let c2 = rbx::compress::Compressed {
        data: payload,
        n: c.n,
        nelv: c.nelv,
        codec: c.codec,
        kept_fraction: c.kept_fraction,
    };
    let a = decompress_field(&c, &basis);
    let b = decompress_field(&c2, &basis);
    assert_eq!(a, b);
}
