//! Bitwise-identity matrix for the SIMD / fused kernel layer.
//!
//! The lane contract (DESIGN.md §15) promises that every SIMD and fused
//! kernel is bitwise reproducible: identical bits across pool thread
//! counts, across repeated applies within a process (the elastic-restart
//! replay property at kernel scope), and between the runtime-dispatched
//! path and the portable scalar twin — to an exact 0-ulp bound, because
//! both lowerings of `mul_add` are the same correctly-rounded IEEE-754
//! fused operation. This file asserts the full matrix for the production
//! node counts N = 6, 8, 10, 12 (degrees 5, 7, 9, 11) plus an
//! off-specialization degree that exercises the runtime-`n` fallback.

use rbx::basis::fused::{
    helmholtz_element, helmholtz_element_scalar, tensor3, tensor3_scalar, FusedScratch,
    Tensor3Scratch,
};
use rbx::basis::{deriv_matrix, gll, DMat};
use rbx::comm::SingleComm;
use rbx::device::WorkerPool;
use rbx::gs::GatherScatter;
use rbx::la::helmholtz::{HelmholtzOp, HelmholtzScratch};
use rbx::la::ElementFdm;
use rbx::mesh::generators::box_mesh;
use rbx::mesh::GeomFactors;

/// Production 1-D node counts (paper degrees) plus dynamic-path sizes.
const PRODUCTION_N: [usize; 4] = [6, 8, 10, 12];

fn rand_vec(len: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

fn assert_bits(label: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: bit divergence at index {i}: {x:e} vs {y:e}"
        );
    }
}

struct Setup {
    geom: GeomFactors,
    gs: GatherScatter,
    comm: SingleComm,
    u: Vec<f64>,
}

fn setup(p: usize) -> Setup {
    let mesh = box_mesh(3, 2, 2, [0., 1.], [0., 1.], [0., 1.], false, false);
    let comm = SingleComm::new();
    let part = vec![0usize; mesh.num_elements()];
    let my: Vec<usize> = (0..mesh.num_elements()).collect();
    let geom = GeomFactors::new(&mesh, p);
    let gs = GatherScatter::build(&mesh, p, &part, &my, &comm);
    let u = rand_vec(geom.total_nodes(), 1 + p as u64);
    Setup { geom, gs, comm, u }
}

/// Helmholtz apply: same bits at 1, 4 and 7 pool threads as serial, for
/// every production node count.
#[test]
fn helmholtz_bits_stable_across_thread_counts() {
    for n in PRODUCTION_N {
        let p = n - 1;
        let s = setup(p);
        let mask = vec![1.0; s.u.len()];
        let op = HelmholtzOp {
            geom: &s.geom,
            gs: &s.gs,
            mask: &mask,
            h1: 1.3,
            h2: 0.7,
        };
        let mut y_serial = vec![0.0; s.u.len()];
        let mut scratch = HelmholtzScratch::default();
        op.apply_local(&s.u, &mut y_serial, &mut scratch);
        for threads in [1usize, 4, 7] {
            let pool = WorkerPool::new(threads);
            let mut y = vec![0.0; s.u.len()];
            op.apply_local_with(&s.u, &mut y, &pool);
            assert_bits(&format!("helmholtz n={n} threads={threads}"), &y_serial, &y);
        }
    }
}

/// FDM Schwarz sweep: same matrix as above, plus double-apply replay —
/// applying twice from the same inputs yields the same bits, which is the
/// kernel-scope restart-replay property.
#[test]
fn fdm_bits_stable_across_thread_counts_and_replay() {
    for n in PRODUCTION_N {
        let p = n - 1;
        let s = setup(p);
        let fdm = ElementFdm::new(&s.geom);
        let mut z_serial = vec![0.25; s.u.len()];
        fdm.apply_add(&s.u, &mut z_serial, 1.1, 0.3);
        // Replay identity: a second run from identical inputs is identical.
        let mut z_replay = vec![0.25; s.u.len()];
        fdm.apply_add(&s.u, &mut z_replay, 1.1, 0.3);
        assert_bits(&format!("fdm n={n} replay"), &z_serial, &z_replay);
        for threads in [1usize, 4, 7] {
            let pool = WorkerPool::new(threads);
            let mut z = vec![0.25; s.u.len()];
            fdm.apply_add_with(&s.u, &mut z, 1.1, 0.3, &pool);
            assert_bits(&format!("fdm n={n} threads={threads}"), &z_serial, &z);
        }
    }
}

/// The deterministic pooled dot product: schedule-independent bits across
/// thread counts (chunk boundaries are a function of length only, partials
/// combined in chunk-index order). Note `dot` and `dot_with` each pin a
/// *different* summation order — a solve must pick one variant throughout —
/// so the contract here is thread-count invariance, not serial equality.
#[test]
fn dot_bits_stable_across_thread_counts() {
    use rbx::la::ops::DotProduct;
    for n in PRODUCTION_N {
        let p = n - 1;
        let s = setup(p);
        let mult = s.gs.multiplicity(&s.comm);
        let dp = DotProduct::new(&mult);
        let b = rand_vec(s.u.len(), 77);
        let pool1 = WorkerPool::new(1);
        let reference = dp.dot_with(&s.u, &b, &pool1, &s.comm);
        let serial = dp.dot(&s.u, &b, &s.comm);
        assert!(
            (reference - serial).abs() <= 1e-12 * serial.abs().max(1.0),
            "dot n={n}: pooled {reference:e} far from serial {serial:e}"
        );
        for threads in [4usize, 7] {
            let pool = WorkerPool::new(threads);
            let pooled = dp.dot_with(&s.u, &b, &pool, &s.comm);
            assert_eq!(
                reference.to_bits(),
                pooled.to_bits(),
                "dot n={n} threads={threads}: {reference:e} vs {pooled:e}"
            );
        }
    }
}

/// Dispatched (runtime feature-selected) vs portable scalar twin: exact
/// 0-ulp agreement, element-kernel level, production degrees plus the
/// dynamic fallback (n = 7).
#[test]
fn dispatched_matches_scalar_to_zero_ulp() {
    for n in [6usize, 8, 10, 12, 7] {
        let d = deriv_matrix(&gll(n).points);
        let nn = n * n * n;
        let g: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                let base = if i == 0 || i == 3 || i == 5 { 2.0 } else { 0.1 };
                rand_vec(nn, 10 + i as u64)
                    .iter()
                    .map(|v| base + 0.1 * v)
                    .collect()
            })
            .collect();
        let gr: [&[f64]; 6] = [&g[0], &g[1], &g[2], &g[3], &g[4], &g[5]];
        let mass: Vec<f64> = rand_vec(nn, 20).iter().map(|v| 1.0 + 0.2 * v).collect();
        let u = rand_vec(nn, 30);
        let mut s = FusedScratch::new();
        let mut y_dispatched = vec![0.0; nn];
        let mut y_scalar = vec![0.0; nn];
        helmholtz_element(&d, &gr, &mass, 1.9, 0.2, &u, &mut y_dispatched, &mut s);
        helmholtz_element_scalar(&d, &gr, &mass, 1.9, 0.2, &u, &mut y_scalar, &mut s);
        assert_bits(
            &format!("helmholtz_element n={n}"),
            &y_dispatched,
            &y_scalar,
        );

        let a1 = DMat::from_fn(n, n, |i, j| ((i * 3 + j) as f64).cos());
        let a2 = DMat::from_fn(n, n, |i, j| (i as f64 - j as f64) * 0.25 + 1.0);
        let a3 = DMat::from_fn(n, n, |i, j| if i == j { 1.5 } else { 0.2 });
        let mut ts = Tensor3Scratch::new();
        let mut t_dispatched = vec![0.0; nn];
        let mut t_scalar = vec![0.0; nn];
        tensor3(&a1, &a2, &a3, &u, &mut t_dispatched, &mut ts);
        tensor3_scalar(&a1, &a2, &a3, &u, &mut t_scalar, &mut ts);
        assert_bits(&format!("tensor3 n={n}"), &t_dispatched, &t_scalar);
    }
}

/// SIMD pointwise kernels vs their scalar twins on awkward (non-multiple
/// of the lane width) lengths.
#[test]
fn pointwise_kernels_match_scalar_twins() {
    use rbx::basis::simd;
    for len in [1usize, 3, 4, 7, 65, 1023] {
        let a = rand_vec(len, 5);
        let b = rand_vec(len, 6);
        let w = rand_vec(len, 8);

        let mut y1 = rand_vec(len, 9);
        let mut y2 = y1.clone();
        simd::axpy(1.7, &a, &mut y1);
        simd::axpy_scalar(1.7, &a, &mut y2);
        assert_bits(&format!("axpy len={len}"), &y1, &y2);

        let mut x1 = a.clone();
        let mut x2 = a.clone();
        simd::xpby(&b, 0.4, &mut x1);
        simd::xpby_scalar(&b, 0.4, &mut x2);
        assert_bits(&format!("xpby len={len}"), &x1, &x2);

        let d1 = simd::dot(&a, &b);
        let d2 = simd::dot_scalar(&a, &b);
        assert_eq!(d1.to_bits(), d2.to_bits(), "dot len={len}");

        let w1 = simd::dot3(&a, &b, &w);
        let w2 = simd::dot3_scalar(&a, &b, &w);
        assert_eq!(w1.to_bits(), w2.to_bits(), "dot3 len={len}");
    }
}

/// End-to-end replay: two identical short RBC runs (SIMD active, pooled)
/// must agree bitwise — the process-level statement of the pinned lane
/// order plus fixed kernel selection.
#[test]
fn short_run_replays_bitwise_with_simd_active() {
    use rbx::core::{Simulation, SolverConfig};
    let run = || -> Vec<f64> {
        let case = rbx::core::rbc_box_case(2.0, 2, 2, false, 1);
        let cfg = SolverConfig {
            ra: 1e4,
            order: 5, // n = 6, a SIMD-specialized production degree
            dt: 2e-3,
            ic_noise: 1e-2,
            ..Default::default()
        };
        let comm = SingleComm::new();
        let all: Vec<usize> = (0..case.mesh.num_elements()).collect();
        let mut sim = Simulation::new(cfg, &case.mesh, &case.part, all, &comm);
        let pool = WorkerPool::new(4);
        sim.set_pool(&pool);
        sim.init_rbc();
        for s in 0..3 {
            let st = sim.step();
            assert!(st.converged, "step {s}: {st:?}");
        }
        sim.state.t.clone()
    };
    let first = run();
    let second = run();
    assert_bits("replayed run", &first, &second);
}
